//! Differential property fuzzing: the same randomized workload runs under
//! every registered scheduling class (CFS, ULE, EEVDF, the reference
//! round-robin, and both scx example policies) with SchedSan strict
//! checking on. Whatever the scheduler, (a) no invariant is ever violated,
//! (b) the workload terminates, and (c) the total CPU work performed is
//! identical — schedulers decide *when and where* work runs, never *how
//! much* of it there is.

use kernel::{from_fn, Action, AppSpec, CheckMode, FaultPlan, Kernel, SimConfig, ThreadSpec};
use proptest::prelude::*;
use scenario::Sched;
use simcore::{Dur, Time};
use topology::Topology;

/// Alternating run/sleep threads from a spec vector (same shape as the
/// kernel-level property tests).
fn random_app(spec: &[(u16, u16, u8)]) -> AppSpec {
    AppSpec::new(
        "random",
        spec.iter()
            .enumerate()
            .map(|(i, &(run_us, sleep_us, reps))| {
                let mut left = reps as u32 + 1;
                let mut phase = false;
                ThreadSpec::new(
                    format!("r{i}"),
                    from_fn(move |_ctx| {
                        phase = !phase;
                        if phase {
                            Action::Run(Dur::micros(run_us as u64 + 1))
                        } else {
                            if left == 0 {
                                return Action::Exit;
                            }
                            left -= 1;
                            Action::Sleep(Dur::micros(sleep_us as u64 + 1))
                        }
                    }),
                )
            })
            .collect(),
    )
}

/// Total work each thread demands, in nanoseconds (`reps + 2` run
/// segments; see `random_app`).
fn demanded(spec: &[(u16, u16, u8)]) -> u64 {
    spec.iter()
        .map(|&(r, _s, reps)| (r as u64 + 1) * 1000 * (reps as u64 + 2))
        .sum()
}

fn run_under(
    sched: Sched,
    spec: &[(u16, u16, u8)],
    seed: u64,
    faults: bool,
) -> Result<u64, String> {
    let topo = Topology::flat(2);
    let mut cfg = SimConfig::frictionless(seed);
    cfg.check = CheckMode::Strict;
    if faults {
        cfg.faults = FaultPlan {
            spurious_wake_period: Some(Dur::micros(400)),
            tick_jitter: Dur::micros(150),
            missed_tick_pct: 10,
            hotplug_period: Some(Dur::millis(7)),
            hotplug_down: Dur::millis(2),
        };
    }
    let mut k = Kernel::new(topo.clone(), cfg, scenario::make_class(&topo, sched, seed));
    let app = k.queue_app(Time::ZERO, random_app(spec));
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(120))
        .map_err(|e| format!("invariant violated: {e}\n{}", k.crash_report(&e)))?;
    if !done {
        return Err(format!("workload hung under {}", k.sched_name()));
    }
    Ok(k.app_tasks(app)
        .iter()
        .map(|&t| k.task_runtime(t).as_nanos())
        .sum())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean machine: every registered scheduler performs exactly the
    /// demanded work, under strict invariant checking (which routes into
    /// each class's own `audit` — e.g. EEVDF's lag-conservation check).
    #[test]
    fn schedulers_agree_on_total_work(
        spec in prop::collection::vec((1u16..1500, 1u16..1500, 1u8..12), 1..10),
        seed: u64,
    ) {
        let want = demanded(&spec);
        for sched in Sched::ALL {
            let name = sched.flag_name();
            let got = run_under(sched, &spec, seed, false)
                .map_err(|e| format!("[{name}] {e}"))?;
            prop_assert_eq!(got, want, "{} performed wrong amount of work", name);
        }
    }

    /// Faulty machine: spurious wakeups, tick jitter, and hotplug may
    /// reorder and delay work but never create, destroy, or corrupt it.
    #[test]
    fn fault_injection_preserves_work(
        spec in prop::collection::vec((1u16..1000, 1u16..1000, 1u8..8), 1..6),
        seed: u64,
    ) {
        let want = demanded(&spec);
        for sched in Sched::ALL {
            let name = sched.flag_name();
            let got = run_under(sched, &spec, seed, true)
                .map_err(|e| format!("[{name}] {e}"))?;
            prop_assert_eq!(got, want, "{} lost or invented work under faults", name);
        }
    }
}
