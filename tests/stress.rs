//! Randomized stress test: a chaotic application mixing every synchron-
//! isation primitive, run to completion under CFS, ULE and the reference
//! scheduler. Catches lost wakeups, accounting drift and scheduler-state
//! corruption under interleavings no hand-written test would produce.

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use kernel::{from_fn, Action, AppSpec, Kernel, ThreadSpec};
use simcore::Dur;

/// A thread that performs `steps` random actions drawn from the full
/// action vocabulary (never holding more than one lock, so no deadlock is
/// possible by construction).
fn chaotic_thread(
    name: String,
    steps: u32,
    mutexes: Vec<kernel::MutexId>,
    sems: Vec<kernel::SemId>,
    queues: Vec<kernel::QueueId>,
    barrier: kernel::BarrierId,
    barrier_waits: u32,
) -> ThreadSpec {
    let mut left = steps;
    let mut barriers_left = barrier_waits;
    let mut held: Option<kernel::MutexId> = None;
    let mut waiting_get = false;
    let mut exit_posts = sems.len();
    ThreadSpec::new(
        name,
        from_fn(move |ctx| {
            // Finish a pending queue-get handshake.
            if waiting_get {
                waiting_get = false;
            }
            if left == 0 {
                // Drain duties before exiting: release any lock, top up the
                // semaphores (so no peer stays blocked), and attend the
                // remaining barrier rounds so peers aren't stranded.
                if let Some(m) = held.take() {
                    return Action::MutexUnlock(m);
                }
                if exit_posts > 0 {
                    exit_posts -= 1;
                    return Action::SemPost(sems[exit_posts]);
                }
                if barriers_left > 0 {
                    barriers_left -= 1;
                    return Action::BarrierWait(barrier);
                }
                return Action::Exit;
            }
            left -= 1;
            // If a lock is held, release it next (keeps critical sections
            // short and avoids deadlock).
            if let Some(m) = held.take() {
                return Action::MutexUnlock(m);
            }
            match ctx.rng.gen_below(10) {
                0 => Action::Run(Dur::micros(ctx.rng.gen_range(10, 2000))),
                1 => Action::Sleep(Dur::micros(ctx.rng.gen_range(10, 3000))),
                2 => {
                    let m = mutexes[ctx.rng.gen_below(mutexes.len() as u64) as usize];
                    held = Some(m);
                    Action::MutexLock(m)
                }
                3 => {
                    let s = sems[ctx.rng.gen_below(sems.len() as u64) as usize];
                    Action::SemPost(s)
                }
                4 => {
                    // Sem wait only on a semaphore we just posted overall —
                    // keep net-positive by posting twice as often; to avoid
                    // stranding, wait with 1/2 the probability of posting.
                    let s = sems[ctx.rng.gen_below(sems.len() as u64) as usize];
                    if ctx.rng.gen_bool(0.5) {
                        Action::SemWait(s)
                    } else {
                        Action::SemPost(s)
                    }
                }
                5 => {
                    let q = queues[ctx.rng.gen_below(queues.len() as u64) as usize];
                    Action::QueuePut(q, ctx.rng.gen_below(1000))
                }
                6 => {
                    // Only get from a queue that is provably non-empty to
                    // avoid stranding; otherwise put.
                    let q = queues[ctx.rng.gen_below(queues.len() as u64) as usize];
                    waiting_get = true;
                    Action::QueuePut(q, 1)
                }
                7 if barriers_left > 0 => {
                    barriers_left -= 1;
                    Action::BarrierWait(barrier)
                }
                8 => Action::Yield,
                _ => Action::CountOps(1),
            }
        }),
    )
}

fn build_chaos(k: &mut Kernel, threads: usize, steps: u32, barrier_waits: u32) -> AppSpec {
    let mutexes: Vec<_> = (0..3).map(|_| k.new_mutex()).collect();
    let sems: Vec<_> = (0..3).map(|_| k.new_sem(100)).collect(); // generous initial counts
    let queues: Vec<_> = (0..3).map(|_| k.new_queue(10_000)).collect();
    let barrier = k.new_barrier(threads);
    AppSpec::new(
        "chaos",
        (0..threads)
            .map(|i| {
                chaotic_thread(
                    format!("chaos{i}"),
                    steps,
                    mutexes.clone(),
                    sems.clone(),
                    queues.clone(),
                    barrier,
                    barrier_waits,
                )
            })
            .collect(),
    )
}

fn run_chaos(kind: SchedulerKind, seed: u64) {
    let mut sim = Simulation::new(Machine::Flat(4), kind, seed);
    let spec = build_chaos(sim.kernel_mut(), 12, 150, 4);
    let app = sim.spawn_app(spec);
    let done = sim.run_to_completion(Dur::secs(300));
    assert!(done, "{kind:?} seed {seed}: chaos app hung");
    assert_eq!(
        sim.kernel().app(app).live,
        0,
        "{kind:?} seed {seed}: threads left behind"
    );
    // Work conservation sanity: total runtime ≤ 4 cores × elapsed.
    let total: f64 = sim.app_cpu_time(app).as_secs_f64();
    let cap = 4.0 * sim.kernel().now().as_secs_f64();
    assert!(total <= cap + 1e-9, "{kind:?}: {total} > {cap}");
}

#[test]
fn chaos_under_cfs() {
    for seed in [1, 7, 1234] {
        run_chaos(SchedulerKind::Cfs, seed);
    }
}

#[test]
fn chaos_under_ule() {
    for seed in [1, 7, 1234] {
        run_chaos(SchedulerKind::Ule, seed);
    }
}

#[test]
fn chaos_is_deterministic_per_scheduler() {
    let digest = |kind, seed| {
        let mut sim = Simulation::new(Machine::Flat(4), kind, seed);
        let spec = build_chaos(sim.kernel_mut(), 8, 80, 2);
        sim.spawn_app(spec);
        sim.run_to_completion(Dur::secs(120));
        sim.kernel().decision_digest()
    };
    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        assert_eq!(digest(kind, 99), digest(kind, 99));
    }
}
