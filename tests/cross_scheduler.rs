//! Workspace-level integration tests: the paper's headline qualitative
//! results, exercised through the public `battle_core` API with scaled-down
//! workloads (the full-size regenerations live in the `battle` binary).

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use kernel::{cpu_hog, AppSpec, ThreadSpec};
use simcore::Dur;
use topology::CpuId;
use workloads::sysbench::{sysbench, SysbenchCfg};

/// §5.1: ULE starves a CPU hog under a mostly-sleeping database; CFS
/// shares the core between the two applications.
#[test]
fn starvation_contrast_between_schedulers() {
    let run = |kind| {
        let mut sim = Simulation::new(Machine::SingleCore, kind, 42);
        let fibo = sim.spawn_app(workloads::synthetic::fibo(Dur::secs(20)));
        let spec = sysbench(
            sim.kernel_mut(),
            SysbenchCfg {
                threads: 80,
                total_tx: 40_000,
                ..Default::default()
            },
        );
        let _db = sim.spawn_app_at(Dur::millis(200), spec);
        // Sample fibo's progress over the window where the db runs.
        sim.run_for(Dur::secs(4));
        let fibo_tid = sim.kernel().app_tasks(fibo)[0];
        let at4 = sim.kernel().task_runtime(fibo_tid);
        sim.run_for(Dur::secs(6));
        let at10 = sim.kernel().task_runtime(fibo_tid);
        (at10 - at4).as_secs_f64()
    };
    let cfs_gain = run(SchedulerKind::Cfs);
    let ule_gain = run(SchedulerKind::Ule);
    assert!(
        cfs_gain > 1.5,
        "CFS must keep fibo running (~50% share), got {cfs_gain:.2}s of 6s"
    );
    assert!(
        ule_gain < 1.2,
        "ULE must starve fibo under interactive load, got {ule_gain:.2}s of 6s"
    );
}

/// §5.3 (apache): CFS's wakeup preemption fires constantly on the
/// server/injector pattern; ULE never preempts.
#[test]
fn apache_preemption_contrast() {
    let run = |kind| {
        let mut sim = Simulation::new(Machine::SingleCore, kind, 42);
        let p = workloads::P::scaled(1, 0.05);
        let spec = workloads::apache::apache(sim.kernel_mut(), &p);
        let app = sim.spawn_app(spec);
        assert!(
            sim.run_to_completion(Dur::secs(120)),
            "{kind:?} apache hung"
        );
        (
            sim.kernel().counters().preemptions,
            sim.app_ops_per_sec(app),
        )
    };
    let (cfs_preempt, cfs_rps) = run(SchedulerKind::Cfs);
    let (ule_preempt, ule_rps) = run(SchedulerKind::Ule);
    assert!(
        cfs_preempt > 100 * (ule_preempt + 1),
        "CFS preempts ab constantly ({cfs_preempt}), ULE never ({ule_preempt})"
    );
    assert!(
        ule_rps > cfs_rps * 1.1,
        "apache should be faster on ULE: {ule_rps:.0} vs {cfs_rps:.0} req/s"
    );
}

/// §6.1: after unpinning a thread pile, CFS converges within ~a second
/// while ULE takes its one-migration-per-period pace.
#[test]
fn rebalancing_speed_contrast() {
    let counts = |sim: &Simulation| -> Vec<usize> {
        (0..8).map(|c| sim.kernel().nr_queued(CpuId(c))).collect()
    };
    let spread_after = |kind, wait: Dur| {
        let mut sim = Simulation::new(Machine::Flat(8), kind, 42);
        let app = sim.spawn_app(workloads::synthetic::pinned_spinners(40));
        sim.run_for(Dur::millis(200));
        let now = sim.kernel().now();
        sim.kernel_mut().queue_unpin(now, app);
        sim.run_for(wait);
        let c = counts(&sim);
        *c.iter().max().unwrap() - *c.iter().min().unwrap()
    };
    // One second after the unpin CFS is roughly even; ULE still has almost
    // everything on core 0 (idle steals took one each).
    assert!(spread_after(SchedulerKind::Cfs, Dur::secs(1)) <= 4);
    assert!(spread_after(SchedulerKind::Ule, Dur::secs(1)) >= 20);
}

/// §6.3 (HPC): ULE places one thread per core and never migrates them.
#[test]
fn ule_stable_hpc_placement() {
    let mut sim = Simulation::new(Machine::Flat(8), SchedulerKind::Ule, 42);
    let _app = sim.spawn_app(AppSpec::new(
        "hpc",
        (0..8)
            .map(|i| ThreadSpec::new(format!("t{i}"), cpu_hog(Dur::secs(1), Dur::millis(10))))
            .collect(),
    ));
    sim.run_for(Dur::millis(500));
    for c in 0..8 {
        assert_eq!(sim.kernel().nr_queued(CpuId(c)), 1);
    }
    assert_eq!(sim.kernel().counters().migrations, 0);
}

/// Determinism across the full stack: identical seeds give identical
/// decision digests for both schedulers.
#[test]
fn determinism_end_to_end() {
    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        let digest = |seed| {
            let mut sim = Simulation::new(Machine::Flat(4), kind, seed);
            let p = workloads::P::scaled(4, 0.05);
            let spec = workloads::sysbench::sysbench_default(sim.kernel_mut(), &p);
            sim.spawn_app(spec);
            // Long enough that the seed-jittered transaction phase runs.
            sim.run_for(Dur::secs(6));
            sim.kernel().decision_digest()
        };
        assert_eq!(digest(7), digest(7), "{kind:?} must be deterministic");
        assert_ne!(digest(7), digest(8), "{kind:?} seeds must matter");
    }
}

/// Cgroup fairness is CFS-only: one single-threaded app against a
/// four-threaded app gets ~50% under CFS; ULE has no cgroups, so the lone
/// batch thread gets ~1/5.
#[test]
fn cgroup_fairness_is_cfs_specific() {
    let share = |kind| {
        let mut sim = Simulation::new(Machine::SingleCore, kind, 42);
        let solo = sim.spawn_app(AppSpec::new(
            "solo",
            vec![ThreadSpec::new("s", cpu_hog(Dur::secs(5), Dur::millis(20)))],
        ));
        let _many = sim.spawn_app(AppSpec::new(
            "many",
            (0..4)
                .map(|i| ThreadSpec::new(format!("m{i}"), cpu_hog(Dur::secs(5), Dur::millis(20))))
                .collect(),
        ));
        sim.run_for(Dur::secs(2));
        sim.app_cpu_time(solo).as_secs_f64() / 2.0
    };
    let cfs = share(SchedulerKind::Cfs);
    let ule = share(SchedulerKind::Ule);
    assert!(
        (0.4..=0.6).contains(&cfs),
        "CFS app share ≈ 50%, got {cfs:.2}"
    );
    assert!(
        (0.1..=0.3).contains(&ule),
        "ULE thread share ≈ 20%, got {ule:.2}"
    );
}
