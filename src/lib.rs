//! # The Battle of the Schedulers — FreeBSD ULE vs. Linux CFS, in Rust
//!
//! A reproduction of Bouron et al., *"The Battle of the Schedulers: FreeBSD
//! ULE vs. Linux CFS"* (USENIX ATC 2018), built as a deterministic
//! discrete-event multicore simulator with faithful implementations of both
//! schedulers behind the same scheduling-class interface (the paper's
//! Table 1).
//!
//! This crate is the umbrella: it re-exports every workspace crate.
//! Start with [`battle_core`] for the high-level API, [`experiments`] for
//! the figure/table drivers, and the `battle` binary to regenerate the
//! paper's results:
//!
//! ```text
//! cargo run --release -p experiments --bin battle -- all --scale 0.3
//! ```

pub use battle_core;
pub use cfs;
pub use experiments;
pub use kernel;
pub use metrics;
pub use sched_api;
pub use simcore;
pub use topology;
pub use ule;
pub use workloads;

pub use battle_core::{Machine, SchedulerKind, Simulation};
