//! The paper's §6.1 load-balancing race (Figure 6), miniature edition:
//! spinners pinned to core 0 are unpinned, and the two balancers react very
//! differently — CFS bulk-migrates within milliseconds but tolerates
//! imbalance; ULE's idle steal takes one thread per core and its periodic
//! balancer then moves *one thread per 0.5–1.5s*, eventually reaching an
//! exactly even spread.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use simcore::Dur;
use topology::CpuId;
use workloads::synthetic::pinned_spinners;

const NCORES: u32 = 8;
const NTHREADS: usize = 64;

fn counts(sim: &Simulation) -> Vec<usize> {
    (0..NCORES)
        .map(|c| sim.kernel().nr_queued(CpuId(c)))
        .collect()
}

fn main() {
    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        let mut sim = Simulation::new(Machine::Flat(NCORES), kind, 42);
        let app = sim.spawn_app(pinned_spinners(NTHREADS));
        sim.run_for(Dur::secs(1));
        println!("{kind:?}: pinned  {:?}", counts(&sim));

        let now = sim.kernel().now();
        sim.kernel_mut().queue_unpin(now, app);
        for (label, dur) in [
            ("+200ms", Dur::millis(200)),
            ("+1s   ", Dur::millis(800)),
            ("+5s   ", Dur::secs(4)),
            ("+20s  ", Dur::secs(15)),
        ] {
            sim.run_for(dur);
            println!("{kind:?}: {label} {:?}", counts(&sim));
        }
        println!();
    }
    println!("(8 cores / 64 spinners; 8 per core is the even spread)");
}
