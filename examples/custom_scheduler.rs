//! Implementing your own scheduling class against the Table 1 interface.
//!
//! The simulated kernel is generic over `sched_api::Scheduler`, exactly as
//! Linux's core scheduler is generic over its scheduling classes. This
//! example races a deliberately naive random-placement scheduler against
//! CFS and ULE on a bursty workload.
//!
//! ```text
//! cargo run --release --example custom_scheduler
//! ```

use std::collections::VecDeque;

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use kernel::{cpu_hog, AppSpec, ThreadSpec};
use sched_api::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot,
    TaskTable, Tid, WakeKind,
};
use simcore::{Dur, SimRng, Time};
use topology::{CpuId, Topology};

/// A scheduler that places every waking thread on a *random* CPU and runs
/// 20 ms round-robin slices. No balancing, no heuristics.
struct RandomPlacement {
    rqs: Vec<VecDeque<Tid>>,
    curr: Vec<Option<Tid>>,
    slice_start: Vec<Time>,
    rng: SimRng,
}

impl RandomPlacement {
    fn new(topo: &Topology, seed: u64) -> Self {
        RandomPlacement {
            rqs: (0..topo.nr_cpus()).map(|_| VecDeque::new()).collect(),
            curr: vec![None; topo.nr_cpus()],
            slice_start: vec![Time::ZERO; topo.nr_cpus()],
            rng: SimRng::new(seed),
        }
    }
}

impl Scheduler for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        _now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        stats.cpus_scanned += 1;
        let task = tasks.get(tid);
        loop {
            let c = CpuId(self.rng.gen_below(self.rqs.len() as u64) as u32);
            if task.allowed_on(c) {
                return c;
            }
        }
    }

    fn enqueue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: EnqueueKind,
        _now: Time,
    ) -> Preempt {
        self.rqs[cpu.index()].push_back(tid);
        Preempt::No
    }

    fn dequeue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        _now: Time,
    ) {
        if self.curr[cpu.index()] == Some(tid) {
            self.curr[cpu.index()] = None;
        } else if let Some(i) = self.rqs[cpu.index()].iter().position(|&t| t == tid) {
            self.rqs[cpu.index()].remove(i);
        }
    }

    fn yield_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, _now: Time) {
        if let Some(t) = self.curr[cpu.index()].take() {
            self.rqs[cpu.index()].push_back(t);
        }
    }

    fn pick_next_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        let t = self.rqs[cpu.index()].pop_front()?;
        self.curr[cpu.index()] = Some(t);
        self.slice_start[cpu.index()] = now;
        Some(t)
    }

    fn put_prev_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, tid: Tid, _now: Time) {
        self.curr[cpu.index()] = None;
        self.rqs[cpu.index()].push_back(tid);
    }

    fn task_tick(&mut self, _tasks: &mut TaskTable, cpu: CpuId, _curr: Tid, now: Time) -> Preempt {
        if !self.rqs[cpu.index()].is_empty()
            && now.saturating_since(self.slice_start[cpu.index()]) >= Dur::millis(20)
        {
            Preempt::Yes(PreemptCause::SliceExpired)
        } else {
            Preempt::No
        }
    }

    fn task_fork(&mut self, _t: &TaskTable, _c: Tid, _p: Option<Tid>, _n: Time) {}
    fn task_dead(&mut self, _t: &TaskTable, _tid: Tid, _n: Time) {}

    fn balance_tick(
        &mut self,
        _t: &mut TaskTable,
        _cpu: CpuId,
        _n: Time,
        _targets: &mut Vec<CpuId>,
    ) {
        // no balancing at all
    }

    fn idle_balance(
        &mut self,
        _t: &mut TaskTable,
        _cpu: CpuId,
        _n: Time,
        _s: &mut SelectStats,
    ) -> bool {
        false
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.index()].len() + usize::from(self.curr[cpu.index()].is_some())
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        out.extend(self.rqs[cpu.index()].iter().copied());
    }

    fn snapshot(&self, _tasks: &TaskTable, _tid: Tid) -> TaskSnapshot {
        TaskSnapshot::default()
    }
}

fn workload() -> AppSpec {
    AppSpec::new(
        "burst",
        (0..16)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::millis(400), Dur::millis(8))))
            .collect(),
    )
}

fn main() {
    let machine = Machine::Flat(8);
    println!("16 × 400ms of work on 8 cores (perfect schedule: 0.8s)\n");

    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        let mut sim = Simulation::new(machine.clone(), kind, 42);
        let app = sim.spawn_app(workload());
        sim.run_to_completion(Dur::secs(30));
        println!(
            "{:<8} finished in {:.2}s",
            format!("{kind:?}"),
            sim.app_elapsed(app).unwrap().as_secs_f64()
        );
    }

    let topo = machine.topology();
    let mut sim =
        Simulation::with_scheduler(machine, Box::new(RandomPlacement::new(&topo, 42)), 42);
    let app = sim.spawn_app(workload());
    sim.run_to_completion(Dur::secs(30));
    println!(
        "{:<8} finished in {:.2}s (random placement, no balancing)",
        "Random",
        sim.app_elapsed(app).unwrap().as_secs_f64()
    );
}
