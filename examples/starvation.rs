//! The paper's §5.1 starvation demo: a CPU hog (fibo) shares one core with
//! a mostly-sleeping database (sysbench). Under CFS both make progress;
//! under ULE the hog is starved while the database runs — and the database
//! is ~2× faster for it.
//!
//! ```text
//! cargo run --release --example starvation
//! ```

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use simcore::Dur;
use workloads::sysbench::{sysbench, SysbenchCfg};

fn main() {
    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        let mut sim = Simulation::new(Machine::SingleCore, kind, 42);

        let fibo = sim.spawn_app(workloads::synthetic::fibo(Dur::secs(8)));
        let spec = sysbench(
            sim.kernel_mut(),
            SysbenchCfg {
                threads: 80,
                total_tx: 12_000,
                ..Default::default()
            },
        );
        let db = sim.spawn_app_at(Dur::millis(500), spec);

        println!("{kind:?}: sampling fibo's cumulative runtime every second");
        let fibo_tid = {
            sim.run_for(Dur::millis(1));
            sim.kernel().app_tasks(fibo)[0]
        };
        for s in 1..=10 {
            sim.run_for(Dur::secs(1));
            let rt = sim.kernel().task_runtime(fibo_tid);
            let pen = sim.kernel().snapshot(fibo_tid).ule_penalty;
            let db_ops = sim.kernel().app(db).ops;
            println!(
                "  t={s:>2}s fibo runtime {:>5.2}s{}  sysbench tx {}",
                rt.as_secs_f64(),
                pen.map(|p| format!(" (penalty {p})")).unwrap_or_default(),
                db_ops
            );
        }
        sim.run_to_completion(Dur::secs(600));
        println!(
            "  sysbench: {:.0} tx/s, avg latency {:?}",
            sim.app_ops_per_sec(db),
            sim.kernel().app(db).avg_latency()
        );
        println!(
            "  fibo finished at t={:.1}s\n",
            sim.kernel().app(fibo).finished.unwrap().as_secs_f64()
        );
    }
}
