//! Quickstart: run the same workload under CFS and ULE and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use battle_of_schedulers::{Machine, SchedulerKind, Simulation};
use kernel::{cpu_hog, AppSpec, ThreadSpec};
use simcore::Dur;

fn main() {
    println!("A 4-core machine runs a 4-thread compute job plus one extra hog.\n");

    for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
        let mut sim = Simulation::new(Machine::Flat(4), kind, 42);

        // A parallel compute app: 4 threads × 2s of work.
        let compute = sim.spawn_app(AppSpec::new(
            "compute",
            (0..4)
                .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(2), Dur::millis(10))))
                .collect(),
        ));
        // A competing single-threaded hog in its own application (cgroup).
        let hog = sim.spawn_app(AppSpec::new(
            "hog",
            vec![ThreadSpec::new(
                "hog",
                cpu_hog(Dur::secs(2), Dur::millis(10)),
            )],
        ));

        sim.run_to_completion(Dur::secs(60));
        println!("{kind:?}:");
        println!(
            "  compute finished in {:.2}s (CPU {:.2}s)",
            sim.app_elapsed(compute).unwrap().as_secs_f64(),
            sim.app_cpu_time(compute).as_secs_f64()
        );
        println!(
            "  hog     finished in {:.2}s (CPU {:.2}s)",
            sim.app_elapsed(hog).unwrap().as_secs_f64(),
            sim.app_cpu_time(hog).as_secs_f64()
        );
        let k = sim.kernel();
        println!(
            "  context switches: {}, migrations: {}, preemptions: {}\n",
            k.counters().ctx_switches,
            k.counters().migrations,
            k.counters().preemptions
        );
    }
    println!("Try `cargo run --release -p experiments --bin battle -- fig1` next.");
}
