//! EEVDF scheduling class — the algorithm that replaced CFS's pick logic in
//! Linux 6.6 (Stoica & Abdel-Wahab's Earliest Eligible Virtual Deadline
//! First, as reworked by Peter Zijlstra).
//!
//! The model, in the simulator's integer arithmetic:
//!
//! * Every runnable entity has a **vruntime** `v_i` advancing at
//!   `delta × NICE_0_LOAD / weight` while it runs (the same weighting rule
//!   as CFS, via [`sched_api::weights::calc_delta_fair`]).
//! * The runqueue's **virtual time** `V` is the weight-averaged vruntime
//!   of all queued + running entities: `V = Σ v_i·w_i / Σ w_i`. The rq
//!   tracks `Σ v_i·w_i` (`vw_sum`, i128) and `Σ w_i` (`weight_sum`)
//!   incrementally, so `V` never needs recomputing from scratch.
//! * An entity's **lag** is `(V − v_i)·w_i`: how much service it is owed
//!   (positive) or has overdrawn (negative). Summed over the whole rq the
//!   lag telescopes to `V·W − Σ v_i·w_i ≈ 0` — the conservation law
//!   [`Eevdf::audit`] pins in strict mode.
//! * An entity is **eligible** iff `v_i ≤ V`, tested without division as
//!   `v_i·W ≤ Σ v_j·w_j` in i128 (exact, deterministic).
//! * Each entity carries a **virtual deadline** `d_i = v_i + vslice_i`
//!   where `vslice = calc_delta_fair(slice, w)`; pick = the *eligible*
//!   entity with the earliest virtual deadline (ties broken by vruntime,
//!   then tid, so runs are reproducible).
//! * On dequeue (sleep/migration) the entity's lag is preserved — clamped
//!   to ±2 vslices like Linux's `ENQUEUE_PLACE_DEADLINE` path — and on
//!   re-enqueue it is placed at `V − lag`, so sleepers return neither
//!   punished nor privileged beyond their owed service.
//!
//! Placement and balancing are deliberately simple (least-loaded placement,
//! single-task idle stealing, the [`SimpleRR`]-style retry-on-tick), so the
//! scheduling *policy* differences against CFS/ULE in the tournament come
//! from the pick rule, not from a second balancer design.
//!
//! [`SimpleRR`]: https://docs.rs/kernel (the reference round-robin class)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeSet;

use sched_api::weights::{calc_delta_fair, nice_to_prio, nice_to_weight};
use sched_api::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot,
    TaskTable, Tid, WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

/// Tunables of the EEVDF class.
#[derive(Debug, Clone)]
pub struct EevdfParams {
    /// Base request size (wall-clock): the slice an entity asks for per
    /// deadline period. Linux's `sysctl_sched_base_slice` analogue.
    pub slice: Dur,
    /// Lag preserved across sleep is clamped to ± this many vslices.
    pub lag_clamp_slices: u32,
}

impl Default for EevdfParams {
    fn default() -> Self {
        EevdfParams {
            slice: Dur::millis(3),
            lag_clamp_slices: 2,
        }
    }
}

/// Both EEVDF tunables are searchable (`battle tune`): the base request
/// size and the sleeper lag clamp.
impl sched_api::params::ParamSpace for EevdfParams {
    fn dims() -> Vec<sched_api::params::Dim> {
        use sched_api::params::Dim;
        vec![
            Dim::duration("slice", Dur::micros(500), Dur::millis(24), Dur::millis(3)),
            Dim::integer("lag_clamp_slices", 0, 8, 2),
        ]
    }

    fn to_vector(&self) -> sched_api::params::ParamVector {
        sched_api::params::ParamVector(vec![
            self.slice.as_nanos() as f64,
            self.lag_clamp_slices as f64,
        ])
    }

    fn from_vector(v: &sched_api::params::ParamVector) -> EevdfParams {
        let d = Self::dims();
        EevdfParams {
            slice: v.dur(0, &d),
            lag_clamp_slices: v.int(1, &d) as u32,
        }
    }
}

/// Per-entity scheduler state (side table indexed by tid, like CFS's
/// `sched_entity` embedded in `task_struct`).
#[derive(Debug, Clone)]
struct Ent {
    /// Load weight, from nice at (re-)enqueue.
    weight: u64,
    /// Virtual runtime, ns-scaled. Signed: placement at `V − lag` may land
    /// below zero early in a run (Linux's vruntime is `u64` with wrap
    /// semantics; signed arithmetic is the simulator-friendly equivalent).
    vruntime: i64,
    /// Virtual deadline: `vruntime + vslice` at the last renewal.
    deadline: i64,
    /// Lag preserved across dequeue, clamped; `(V − v)` in virtual ns.
    vlag: i64,
}

impl Ent {
    fn new(weight: u64) -> Ent {
        Ent {
            weight,
            vruntime: 0,
            deadline: 0,
            vlag: 0,
        }
    }
}

/// One per-CPU EEVDF runqueue.
#[derive(Debug, Default)]
struct Rq {
    /// Queued entities ordered by (deadline, vruntime, tid). The running
    /// entity is *not* in the tree but stays in the sums (rq-resident
    /// convention, §3 of the paper).
    tree: BTreeSet<(i64, i64, Tid)>,
    /// Currently running entity.
    curr: Option<Tid>,
    /// When `curr` last had its vruntime brought up to date.
    exec_start: Time,
    /// `Σ w_i` over queued + running.
    weight_sum: u64,
    /// `Σ v_i·w_i` over queued + running (exact, incremental).
    vw_sum: i128,
    /// Entities accounted here, including the running one.
    nr: usize,
    /// Virtual time the rq last reached; continues placement after the rq
    /// drains (so a fresh wakeup on an idle CPU doesn't restart at 0).
    vbase: i64,
    /// `false` while hotplugged out.
    online: bool,
}

impl Rq {
    fn new() -> Rq {
        Rq {
            online: true,
            ..Rq::default()
        }
    }

    /// Current virtual time `V = Σ v·w / Σ w`, or the remembered base when
    /// the rq is empty.
    fn vtime(&self) -> i64 {
        if self.weight_sum == 0 {
            self.vbase
        } else {
            (self.vw_sum / self.weight_sum as i128) as i64
        }
    }

    /// `true` if `v` is eligible (`v ≤ V`), tested without division.
    fn eligible(&self, v: i64) -> bool {
        if self.weight_sum == 0 {
            return true;
        }
        v as i128 * self.weight_sum as i128 <= self.vw_sum
    }

    fn account_add(&mut self, v: i64, w: u64) {
        self.vw_sum += v as i128 * w as i128;
        self.weight_sum += w;
        self.nr += 1;
        self.vbase = self.vtime();
    }

    fn account_remove(&mut self, v: i64, w: u64) {
        self.vbase = self.vtime();
        self.vw_sum -= v as i128 * w as i128;
        self.weight_sum -= w;
        self.nr -= 1;
    }
}

/// The EEVDF scheduling class; see the module docs for the model.
pub struct Eevdf {
    rqs: Vec<Rq>,
    /// Per-task entity state, indexed by tid slot.
    ents: Vec<Option<Ent>>,
    params: EevdfParams,
}

impl Eevdf {
    /// One runqueue per CPU of `topo`, default parameters.
    pub fn new(topo: &Topology) -> Eevdf {
        Eevdf::with_params(topo, EevdfParams::default())
    }

    /// One runqueue per CPU of `topo` with explicit tunables.
    pub fn with_params(topo: &Topology, params: EevdfParams) -> Eevdf {
        Eevdf {
            rqs: (0..topo.nr_cpus()).map(|_| Rq::new()).collect(),
            ents: Vec::new(),
            params,
        }
    }

    fn ent(&self, tid: Tid) -> &Ent {
        self.ents[tid.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("no eevdf entity for {tid}"))
    }

    fn ent_mut(&mut self, tid: Tid) -> &mut Ent {
        self.ents[tid.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("no eevdf entity for {tid}"))
    }

    /// Virtual slice for `weight`: the wall-clock slice weighted like
    /// vruntime progression.
    fn vslice(&self, weight: u64) -> i64 {
        calc_delta_fair(self.params.slice.as_nanos(), weight) as i64
    }

    /// Bring `curr`'s vruntime (and the rq sums) up to `now`.
    fn update_curr(&mut self, cpu: CpuId, now: Time) {
        let rq = &mut self.rqs[cpu.index()];
        let Some(curr) = rq.curr else { return };
        let delta = now.saturating_since(rq.exec_start);
        rq.exec_start = now;
        if delta.is_zero() {
            return;
        }
        let ent = self.ents[curr.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("running {curr} has no entity"));
        let w = ent.weight;
        let dv = calc_delta_fair(delta.as_nanos(), w) as i64;
        ent.vruntime += dv;
        self.rqs[cpu.index()].vw_sum += dv as i128 * w as i128;
    }

    /// Place an entity on `cpu` at `V − lag` and give it a fresh deadline.
    fn place(&mut self, cpu: CpuId, tid: Tid, preserve_lag: bool) {
        let vtime = self.rqs[cpu.index()].vtime();
        let clamp_slices = self.params.lag_clamp_slices as i64;
        let ent = self.ent(tid);
        let vslice = self.vslice(ent.weight);
        let lag = if preserve_lag {
            ent.vlag
                .clamp(-clamp_slices * vslice, clamp_slices * vslice)
        } else {
            0
        };
        let ent = self.ent_mut(tid);
        ent.vruntime = vtime - lag;
        ent.deadline = ent.vruntime + vslice;
    }

    /// Remove a queued-or-running entity from `cpu`'s rq, preserving its
    /// clamped lag for the next placement. The running entity's vruntime
    /// is brought up to date first so the recorded lag reflects the
    /// service actually delivered up to `now`.
    fn remove_from_rq(&mut self, cpu: CpuId, tid: Tid, now: Time) {
        self.update_curr(cpu, now);
        let is_curr = self.rqs[cpu.index()].curr == Some(tid);
        let vtime = self.rqs[cpu.index()].vtime();
        let (v, d, w) = {
            let ent = self.ent_mut(tid);
            ent.vlag = vtime - ent.vruntime;
            (ent.vruntime, ent.deadline, ent.weight)
        };
        let rq = &mut self.rqs[cpu.index()];
        if is_curr {
            rq.curr = None;
        } else {
            let had = rq.tree.remove(&(d, v, tid));
            debug_assert!(had, "{tid} not queued on {cpu:?}");
        }
        rq.account_remove(v, w);
    }
}

impl Scheduler for Eevdf {
    fn name(&self) -> &'static str {
        "eevdf"
    }

    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        _now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        let task = tasks.get(tid);
        let mut best: Option<(CpuId, usize)> = None;
        for (i, rq) in self.rqs.iter().enumerate() {
            let cpu = CpuId(i as u32);
            if !rq.online || !task.allowed_on(cpu) {
                continue;
            }
            stats.cpus_scanned += 1;
            match best {
                None => best = Some((cpu, rq.nr)),
                Some((_, b)) if rq.nr < b => best = Some((cpu, rq.nr)),
                _ => {}
            }
        }
        best.expect("task has no online CPU in its affinity mask").0
    }

    fn enqueue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: EnqueueKind,
        now: Time,
    ) -> Preempt {
        let task = tasks.get(tid);
        let weight = nice_to_weight(task.nice);
        let kernel_thread = task.kernel_thread;
        if self.ents.len() < tasks.slab_len() {
            self.ents.resize(tasks.slab_len(), None);
        }
        let slot = &mut self.ents[tid.index()];
        match slot {
            Some(ent) => ent.weight = weight,
            None => *slot = Some(Ent::new(weight)),
        }
        // New tasks start with zero lag; sleepers and migrated tasks keep
        // the (clamped) lag recorded at dequeue.
        self.place(cpu, tid, kind != EnqueueKind::New);
        let (v, d) = {
            let ent = self.ent(tid);
            (ent.vruntime, ent.deadline)
        };
        let rq = &mut self.rqs[cpu.index()];
        let fresh = rq.tree.insert((d, v, tid));
        debug_assert!(fresh, "{tid} already queued on {cpu:?}");
        rq.account_add(v, weight);

        // Wakeup preemption: the waking entity must be eligible *and* beat
        // the running one's virtual deadline. Balancer moves never preempt.
        if kind == EnqueueKind::Migrate {
            return Preempt::No;
        }
        let Some(curr) = self.rqs[cpu.index()].curr else {
            return Preempt::No;
        };
        self.update_curr(cpu, now);
        let rq = &self.rqs[cpu.index()];
        if rq.eligible(v) && d < self.ent(curr).deadline {
            if kernel_thread {
                return Preempt::Yes(PreemptCause::KernelThread);
            }
            return Preempt::Yes(PreemptCause::Wakeup);
        }
        Preempt::No
    }

    fn dequeue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        now: Time,
    ) {
        self.remove_from_rq(cpu, tid, now);
    }

    fn yield_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, now: Time) {
        let Some(curr) = self.rqs[cpu.index()].curr else {
            return;
        };
        self.update_curr(cpu, now);
        // A yield forfeits the rest of the request: push the deadline one
        // full vslice past the current vruntime so waiters go first.
        let (v, d) = {
            let vslice = self.vslice(self.ent(curr).weight);
            let ent = self.ent_mut(curr);
            ent.deadline = ent.vruntime + vslice;
            (ent.vruntime, ent.deadline)
        };
        let rq = &mut self.rqs[cpu.index()];
        rq.curr = None;
        let fresh = rq.tree.insert((d, v, curr));
        debug_assert!(fresh);
    }

    fn pick_next_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        debug_assert!(self.rqs[cpu.index()].curr.is_none(), "pick with curr");
        // Earliest eligible virtual deadline first. The tree is deadline-
        // ordered, so the first entity passing the eligibility test wins;
        // the minimum-vruntime entity is always eligible, so a non-empty
        // tree always yields a pick.
        let rq = &self.rqs[cpu.index()];
        let picked = rq.tree.iter().find(|&&(_, v, _)| rq.eligible(v)).copied()?;
        let rq = &mut self.rqs[cpu.index()];
        rq.tree.remove(&picked);
        rq.curr = Some(picked.2);
        rq.exec_start = now;
        Some(picked.2)
    }

    fn put_prev_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, tid: Tid, now: Time) {
        debug_assert_eq!(self.rqs[cpu.index()].curr, Some(tid));
        self.update_curr(cpu, now);
        let (v, d) = {
            let vslice = self.vslice(self.ent(tid).weight);
            let ent = self.ent_mut(tid);
            if ent.vruntime >= ent.deadline {
                // Request exhausted: renew the deadline for the next slice.
                ent.deadline = ent.vruntime + vslice;
            }
            (ent.vruntime, ent.deadline)
        };
        let rq = &mut self.rqs[cpu.index()];
        rq.curr = None;
        let fresh = rq.tree.insert((d, v, tid));
        debug_assert!(fresh);
    }

    fn task_tick(&mut self, _tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt {
        debug_assert_eq!(self.rqs[cpu.index()].curr, Some(curr));
        self.update_curr(cpu, now);
        let ent = self.ent(curr);
        if ent.vruntime >= ent.deadline {
            if !self.rqs[cpu.index()].tree.is_empty() {
                return Preempt::Yes(PreemptCause::SliceExpired);
            }
            // Alone on the CPU: renew in place so the deadline keeps
            // tracking the request instead of firing every tick.
            let vslice = self.vslice(ent.weight);
            let ent = self.ent_mut(curr);
            ent.deadline = ent.vruntime + vslice;
        }
        Preempt::No
    }

    fn task_fork(&mut self, _tasks: &TaskTable, _child: Tid, _parent: Option<Tid>, _now: Time) {
        // A child starts with zero lag at its first enqueue; nothing to
        // inherit (EEVDF has no ULE-style sleep/run history).
    }

    fn task_dead(&mut self, _tasks: &TaskTable, tid: Tid, _now: Time) {
        if let Some(slot) = self.ents.get_mut(tid.index()) {
            *slot = None;
        }
    }

    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    ) {
        // Like the reference class: an idle CPU retries a steal each tick,
        // so work unpinned after it went idle is still picked up.
        if self.nr_queued(cpu) == 0 {
            let mut stats = SelectStats::default();
            if self.idle_balance(tasks, cpu, now, &mut stats) {
                targets.push(cpu);
            }
        }
    }

    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        if !self.rqs[cpu.index()].online {
            return false;
        }
        // Steal one waiting task from the most loaded online CPU.
        let mut busiest: Option<(usize, usize)> = None;
        for (i, rq) in self.rqs.iter().enumerate() {
            stats.cpus_scanned += 1;
            if i == cpu.index() || !rq.online || rq.tree.is_empty() {
                continue;
            }
            match busiest {
                None => busiest = Some((i, rq.tree.len())),
                Some((_, b)) if rq.tree.len() > b => busiest = Some((i, rq.tree.len())),
                _ => {}
            }
        }
        let Some((victim, _)) = busiest else {
            return false;
        };
        let victim_cpu = CpuId(victim as u32);
        // First queued (earliest-deadline) task allowed on the thief; the
        // running task is never migrated.
        let stolen = self.rqs[victim]
            .tree
            .iter()
            .find(|&&(_, _, t)| tasks.get(t).allowed_on(cpu))
            .map(|&(_, _, t)| t);
        let Some(tid) = stolen else { return false };
        self.remove_from_rq(victim_cpu, tid, now);
        tasks.get_mut(tid).cpu = cpu;
        self.place(cpu, tid, true);
        let (v, d, w) = {
            let ent = self.ent(tid);
            (ent.vruntime, ent.deadline, ent.weight)
        };
        let rq = &mut self.rqs[cpu.index()];
        let fresh = rq.tree.insert((d, v, tid));
        debug_assert!(fresh);
        rq.account_add(v, w);
        true
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.index()].nr
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        out.extend(self.rqs[cpu.index()].tree.iter().map(|&(_, _, t)| t));
    }

    fn snapshot(&self, tasks: &TaskTable, tid: Tid) -> TaskSnapshot {
        let Some(Some(ent)) = self.ents.get(tid.index()) else {
            return TaskSnapshot::default();
        };
        TaskSnapshot {
            vruntime_ns: Some(ent.vruntime.max(0) as u64),
            prio: Some(nice_to_prio(tasks.get(tid).nice)),
            timeslice_ns: Some(self.params.slice.as_nanos()),
            ..TaskSnapshot::default()
        }
    }

    /// EEVDF's SchedSan self-audit:
    ///
    /// 1. **Accounting consistency** — the incremental `Σ w` / `Σ v·w` /
    ///    `nr` exactly match a recomputation from the tree + curr.
    /// 2. **Deadline ordering** — every queued entity's deadline lies at
    ///    or beyond its vruntime, and its tree key mirrors its entity
    ///    state (a divergence would silently corrupt pick order).
    /// 3. **Lag conservation** — `Σ lag = V·W − Σ v·w` stays within one
    ///    rounding unit of zero (`|Σ lag| < W`), the invariant that makes
    ///    "eligible iff v ≤ V" a fair admission test.
    fn audit(&mut self, tasks: &TaskTable, cpu: CpuId, _now: Time) -> Result<(), String> {
        let rq = &self.rqs[cpu.index()];
        let mut nr = 0usize;
        let mut wsum = 0u64;
        let mut vwsum = 0i128;
        for &(d, v, tid) in rq.tree.iter() {
            if !tasks.contains(tid) {
                return Err(format!("queued {tid} does not exist"));
            }
            if rq.curr == Some(tid) {
                return Err(format!("{tid} is both current and queued"));
            }
            let Some(Some(ent)) = self.ents.get(tid.index()) else {
                return Err(format!("queued {tid} has no entity state"));
            };
            if ent.vruntime != v || ent.deadline != d {
                return Err(format!(
                    "{tid} tree key ({d},{v}) diverged from entity (d={}, v={})",
                    ent.deadline, ent.vruntime
                ));
            }
            if d < v {
                return Err(format!(
                    "{tid} virtual deadline {d} precedes its vruntime {v}"
                ));
            }
            nr += 1;
            wsum += ent.weight;
            vwsum += v as i128 * ent.weight as i128;
        }
        if let Some(curr) = rq.curr {
            let Some(Some(ent)) = self.ents.get(curr.index()) else {
                return Err(format!("running {curr} has no entity state"));
            };
            nr += 1;
            wsum += ent.weight;
            vwsum += ent.vruntime as i128 * ent.weight as i128;
        }
        if nr != rq.nr {
            return Err(format!("nr {} != recomputed {}", rq.nr, nr));
        }
        if wsum != rq.weight_sum {
            return Err(format!(
                "weight_sum {} != recomputed {}",
                rq.weight_sum, wsum
            ));
        }
        if vwsum != rq.vw_sum {
            return Err(format!("vw_sum {} != recomputed {}", rq.vw_sum, vwsum));
        }
        // Lag conservation: V is the floored average, so the total lag
        // V·W − Σ v·w is the division remainder — in [−(W−1), 0] exactly.
        if rq.weight_sum > 0 {
            let v = rq.vw_sum / rq.weight_sum as i128;
            let total_lag = v * rq.weight_sum as i128 - rq.vw_sum;
            if total_lag.unsigned_abs() >= rq.weight_sum as u128 {
                return Err(format!(
                    "lag conservation violated: Σ lag = {total_lag}, |Σ lag| must be < W = {}",
                    rq.weight_sum
                ));
            }
        }
        Ok(())
    }

    fn cpu_offline(&mut self, cpu: CpuId) {
        self.rqs[cpu.index()].online = false;
    }

    fn cpu_online(&mut self, cpu: CpuId) {
        self.rqs[cpu.index()].online = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sched_api::{GroupId, Task, TaskState};

    fn table_with(n: usize, nice: &[i32]) -> (TaskTable, Vec<Tid>) {
        let mut t = TaskTable::new();
        let tids = (0..n)
            .map(|i| {
                let tid = t.insert_with(|tid| Task::new(tid, format!("t{i}"), GroupId::ROOT));
                t.get_mut(tid).nice = nice.get(i).copied().unwrap_or(0);
                t.get_mut(tid).state = TaskState::Runnable;
                tid
            })
            .collect();
        (t, tids)
    }

    fn enq(s: &mut Eevdf, t: &mut TaskTable, tid: Tid, at: Time) {
        s.enqueue_task(t, CpuId(0), tid, EnqueueKind::New, at);
    }

    #[test]
    fn params_vector_roundtrip() {
        use sched_api::params::ParamSpace;
        let v = EevdfParams::default().to_vector();
        assert_eq!(v.quantized(&EevdfParams::dims()), v);
        let p = EevdfParams::from_vector(&v);
        assert_eq!(p.slice, Dur::millis(3));
        assert_eq!(p.lag_clamp_slices, 2);
        assert_eq!(p.to_vector(), v);
    }

    #[test]
    fn pick_is_earliest_eligible_deadline() {
        let topo = Topology::single_core();
        let mut s = Eevdf::new(&topo);
        let (mut t, tids) = table_with(3, &[0, 0, 0]);
        for &tid in &tids {
            enq(&mut s, &mut t, tid, Time::ZERO);
        }
        // Equal weights, zero lag: all placed at V with identical
        // deadlines — tid breaks the tie deterministically.
        let first = s.pick_next_task(&mut t, CpuId(0), Time::ZERO).unwrap();
        assert_eq!(first, tids[0]);
        assert_eq!(s.nr_queued(CpuId(0)), 3, "running task stays counted");
        s.audit(&t, CpuId(0), Time::ZERO).unwrap();
    }

    #[test]
    fn expired_current_gives_way_on_tick() {
        let topo = Topology::single_core();
        let mut s = Eevdf::new(&topo);
        let (mut t, tids) = table_with(2, &[0, 0]);
        enq(&mut s, &mut t, tids[0], Time::ZERO);
        enq(&mut s, &mut t, tids[1], Time::ZERO);
        let curr = s.pick_next_task(&mut t, CpuId(0), Time::ZERO).unwrap();
        // Run one full slice: the deadline expires and, with a waiter
        // queued, the tick demands a reschedule.
        let after = Time::ZERO + EevdfParams::default().slice;
        assert_eq!(
            s.task_tick(&mut t, CpuId(0), curr, after),
            Preempt::Yes(PreemptCause::SliceExpired)
        );
        s.put_prev_task(&mut t, CpuId(0), curr, after);
        let next = s.pick_next_task(&mut t, CpuId(0), after).unwrap();
        assert_ne!(next, curr, "the waiter must run after a full slice");
        s.audit(&t, CpuId(0), after).unwrap();
    }

    #[test]
    fn heavier_entity_runs_more() {
        let topo = Topology::single_core();
        let mut s = Eevdf::new(&topo);
        // nice −5 (weight 3121) vs nice 0 (weight 1024).
        let (mut t, tids) = table_with(2, &[-5, 0]);
        enq(&mut s, &mut t, tids[0], Time::ZERO);
        enq(&mut s, &mut t, tids[1], Time::ZERO);
        let mut service = [Dur::ZERO, Dur::ZERO];
        let mut now = Time::ZERO;
        let step = Dur::millis(1);
        let mut curr = s.pick_next_task(&mut t, CpuId(0), now).unwrap();
        for _ in 0..200 {
            now += step;
            service[if curr == tids[0] { 0 } else { 1 }] += step;
            if let Preempt::Yes(_) = s.task_tick(&mut t, CpuId(0), curr, now) {
                s.put_prev_task(&mut t, CpuId(0), curr, now);
                curr = s.pick_next_task(&mut t, CpuId(0), now).unwrap();
            }
            s.audit(&t, CpuId(0), now).unwrap();
        }
        let ratio = service[0].as_nanos() as f64 / service[1].as_nanos() as f64;
        // Ideal 3121/1024 ≈ 3.05; slice granularity leaves tolerance.
        assert!(
            (2.0..4.5).contains(&ratio),
            "service ratio {ratio} not near the 3.05 weight ratio \
             ({:?} vs {:?})",
            service[0],
            service[1]
        );
    }

    #[test]
    fn sleeper_lag_is_preserved_and_clamped() {
        let topo = Topology::single_core();
        let mut s = Eevdf::new(&topo);
        let (mut t, tids) = table_with(2, &[0, 0]);
        enq(&mut s, &mut t, tids[0], Time::ZERO);
        enq(&mut s, &mut t, tids[1], Time::ZERO);
        let curr = s.pick_next_task(&mut t, CpuId(0), Time::ZERO).unwrap();
        // The non-running task sleeps: it leaves with non-negative lag.
        let sleeper = if curr == tids[0] { tids[1] } else { tids[0] };
        let now = Time::ZERO + Dur::millis(2);
        s.dequeue_task(&mut t, CpuId(0), sleeper, DequeueKind::Sleep, now);
        let lag = s.ent(sleeper).vlag;
        assert!(lag >= 0, "a waiter that never ran cannot owe service");
        // On wakeup it is placed at V − lag, i.e. not behind where pure
        // re-initialisation would put it.
        s.enqueue_task(&mut t, CpuId(0), sleeper, EnqueueKind::Wakeup, now);
        let vslice = s.vslice(1024);
        let v = s.ent(sleeper).vruntime;
        let vt = s.rqs[0].vtime();
        assert!(v <= vt, "positive lag places the sleeper at or before V");
        assert!(vt - v <= 2 * vslice, "placement respects the lag clamp");
        s.audit(&t, CpuId(0), now).unwrap();
    }

    #[test]
    fn offline_cpu_receives_no_placements() {
        let topo = Topology::flat(2);
        let mut s = Eevdf::new(&topo);
        let (mut t, tids) = table_with(1, &[0]);
        s.cpu_offline(CpuId(1));
        let mut stats = SelectStats::default();
        let cpu = s.select_task_rq(&t, tids[0], WakeKind::New, CpuId(0), Time::ZERO, &mut stats);
        assert_eq!(cpu, CpuId(0));
        assert_eq!(stats.cpus_scanned, 1, "offline CPU is not even scanned");
        s.cpu_online(CpuId(1));
        let cpu = s.select_task_rq(&t, tids[0], WakeKind::New, CpuId(0), Time::ZERO, &mut stats);
        let _ = cpu;
        assert_eq!(stats.cpus_scanned, 1 + 2);
        let _ = &mut t;
    }

    #[test]
    fn idle_balance_steals_earliest_deadline_waiter() {
        let topo = Topology::flat(2);
        let mut s = Eevdf::new(&topo);
        let (mut t, tids) = table_with(3, &[0, 0, 0]);
        for &tid in &tids {
            s.enqueue_task(&mut t, CpuId(0), tid, EnqueueKind::New, Time::ZERO);
            t.get_mut(tid).cpu = CpuId(0);
        }
        let mut stats = SelectStats::default();
        assert!(s.idle_balance(&mut t, CpuId(1), Time::ZERO, &mut stats));
        assert_eq!(s.nr_queued(CpuId(0)), 2);
        assert_eq!(s.nr_queued(CpuId(1)), 1);
        s.audit(&t, CpuId(0), Time::ZERO).unwrap();
        s.audit(&t, CpuId(1), Time::ZERO).unwrap();
        let moved: Vec<Tid> = s.queued_tids(CpuId(1));
        assert_eq!(t.get(moved[0]).cpu, CpuId(1), "migration updates Task::cpu");
    }
}
