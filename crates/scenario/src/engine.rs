//! Execute a parsed [`Scenario`] on one scheduler.
//!
//! The engine reproduces the hardcoded figure drivers' structure exactly:
//! build the kernel, queue every phase in file order (build order assigns
//! task and sync-object ids, which feed the decision digest), then drive
//! `try_run_until` in sampling steps, recording the per-core load matrix
//! and honouring the declarative stop rules. An invariant violation
//! (SchedSan strict mode) comes back as an [`EngineCrash`] carrying the
//! kernel's crash report instead of aborting the process.

use kernel::{CancelToken, CheckMode, Kernel, RunBudget, SimError};
use metrics::{LatencySummary, PerCoreSeries};
use serde::Serialize;
use simcore::Time;
use topology::CpuId;

use crate::spec::{RelationBound, Scenario, SchedSel};
use crate::{make_kernel_tuned, Sched};

/// Engine knobs shared by every run of a scenario batch.
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Work-volume scale (1.0 = paper-sized).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// SchedSan mode for the run.
    pub check: CheckMode,
    /// Flight-recorder ring capacity; 0 keeps the kernel default.
    pub trace_capacity: usize,
    /// SchedGuard budget imposed by the driver, combined (tighter limit
    /// wins) with the scenario's own `[budget]` table.
    pub budget: RunBudget,
    /// Cooperative cancellation (wall-clock timeouts). A cancelled run
    /// salvages a partial result like a budget-killed one, but its abort
    /// point is not deterministic.
    pub cancel: Option<CancelToken>,
    /// Scheduler parameter-vector override (`battle tune` candidates);
    /// `None` runs the stock defaults.
    pub params: Option<sched_api::params::ParamVector>,
}

impl Default for EngineOpts {
    fn default() -> Self {
        EngineOpts {
            scale: 1.0,
            seed: 42,
            check: CheckMode::Off,
            trace_capacity: 0,
            budget: RunBudget::default(),
            cancel: None,
            params: None,
        }
    }
}

/// A run died on a simulator error (invariant violation in strict mode).
#[derive(Debug, Clone)]
pub struct EngineCrash {
    /// Scheduler that was driving.
    pub sched: Sched,
    /// The simulator error.
    pub error: String,
    /// Full SchedSan crash report (state dump + trace tail).
    pub report: String,
}

/// Why a scenario run did not produce a result.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// The spec referenced something that only resolves at build time
    /// (e.g. an unknown suite entry).
    Spec(crate::spec::SpecError),
    /// The simulation crashed.
    Crash(EngineCrash),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Spec(e) => write!(f, "{e}"),
            EngineError::Crash(c) => {
                write!(f, "[{}] simulation crashed: {}", c.sched.name(), c.error)
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Which SchedGuard mechanism aborted a partial run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum AbortKind {
    /// A [`RunBudget`] ceiling tripped (deterministic abort point).
    Budget,
    /// The no-progress watchdog tripped (deterministic abort point).
    Livelock,
    /// A [`CancelToken`] fired (wall-clock; nondeterministic abort point).
    Cancelled,
}

/// Per-app outcome in a [`ScenarioRun`].
#[derive(Debug, Clone, Serialize)]
pub struct AppResult {
    /// App name (the phase name for scenario-defined workloads).
    pub name: String,
    /// Phase that queued the app.
    pub phase: String,
    /// Did the app finish?
    pub done: bool,
    /// Start→finish wall time, seconds (`None` while unfinished).
    pub elapsed_s: Option<f64>,
    /// Application-level operations completed.
    pub ops: u64,
    /// Operations per second over the app's lifetime.
    pub ops_per_sec: f64,
    /// Mean application-recorded latency, milliseconds.
    pub avg_latency_ms: Option<f64>,
}

/// Everything observable about one finished scenario run.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioRun {
    /// Scenario name.
    pub scenario: String,
    /// Scheduler that drove the run.
    pub sched: Sched,
    /// Scale the expressions were evaluated at.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Decision digest (the regression fingerprint).
    pub digest: u64,
    /// The digest as 16 hex digits (what golden files pin).
    pub digest_hex: String,
    /// Simulated end time, seconds.
    pub end_s: f64,
    /// Did every non-daemon app finish?
    pub all_apps_done: bool,
    /// Kernel activity counters.
    pub counters: kernel::Counters,
    /// Runnable→running dispatch delay.
    pub run_delay: LatencySummary,
    /// Wakeup→dispatch latency.
    pub wakeup_latency: LatencySummary,
    /// Per-app outcomes, in phase order.
    pub apps: Vec<AppResult>,
    /// Final max−min runnable spread across cores.
    pub final_spread: u32,
    /// When the spread first dropped within 1, seconds.
    pub convergence_s: Option<f64>,
    /// `true` if SchedGuard aborted the run early: every field above is a
    /// salvaged snapshot at the abort point, and `digest` is the
    /// digest-so-far, not a completed-run fingerprint.
    pub partial: bool,
    /// Which supervision mechanism aborted the run (`None` if complete).
    pub abort_kind: Option<AbortKind>,
    /// The rendered abort error (`None` if complete).
    pub abort: Option<String>,
}

/// A finished run plus the kernel it ran on (for trace export and crash
/// inspection; drop it if you only need the report).
pub struct RunOutput {
    /// The serializable report.
    pub run: ScenarioRun,
    /// The kernel, in its end-of-run state.
    pub kernel: Kernel,
}

/// Run `sc` under `sched`.
pub fn run_sched(sc: &Scenario, sched: Sched, opts: &EngineOpts) -> Result<RunOutput, EngineError> {
    let topo = sc.topology.build();
    let ncpu = topo.nr_cpus();
    let mut k = make_kernel_tuned(
        &topo,
        sched,
        opts.seed,
        opts.check,
        sc.faults.to_plan(),
        opts.params.as_ref(),
    );
    if opts.trace_capacity > 0 {
        k.set_trace_capacity(opts.trace_capacity);
    }

    // SchedGuard: the scenario's own [budget] combined with the driver's,
    // tighter limit winning; watchdog overrides; cancellation token.
    let budget = sc.budget.to_run_budget().tighten(&opts.budget);
    if budget.active() {
        k.set_budget(budget);
    }
    if sc.budget.stall_events.is_some() || sc.budget.pingpong.is_some() {
        let defaults = kernel::SimConfig::default();
        k.set_watchdog(
            sc.budget
                .stall_events
                .map(|n| n as u32)
                .unwrap_or(defaults.watchdog_stall_events),
            sc.budget
                .pingpong
                .map(|n| n as u32)
                .unwrap_or(defaults.watchdog_pingpong),
        );
    }
    if let Some(token) = &opts.cancel {
        k.set_cancel_token(token.clone());
    }

    // Queue phases in file order; build immediately before queueing so
    // sync-object ids interleave exactly as the figure drivers do.
    let mut apps = Vec::with_capacity(sc.phases.len());
    for phase in &sc.phases {
        let at = Time::ZERO + phase.at.eval(opts.scale);
        let spec = crate::workload::build(&mut k, &phase.workload, &phase.name, opts.scale, ncpu)
            .map_err(EngineError::Spec)?;
        apps.push((phase.name.clone(), k.queue_app(at, spec)));
    }
    for ev in &sc.events {
        let app = apps
            .iter()
            .find(|(name, _)| *name == ev.phase)
            .map(|&(_, id)| id)
            .expect("event phases validated at parse time");
        k.queue_unpin(Time::ZERO + ev.at.eval(opts.scale), app);
    }

    let horizon = match sched {
        Sched::Cfs => sc.run.horizon_cfs.as_ref(),
        Sched::Ule => sc.run.horizon_ule.as_ref(),
        // Schedulers beyond the paper's pair share the generic horizon.
        _ => None,
    }
    .unwrap_or(&sc.run.horizon);
    let limit = Time::ZERO + horizon.eval(opts.scale);
    let mut step = sc.run.step.eval(opts.scale);
    if step.is_zero() {
        step = simcore::Dur::millis(100);
    }
    let stop_after = sc
        .run
        .stop_spread_after
        .as_ref()
        .map(|t| Time::ZERO + t.eval(opts.scale))
        .unwrap_or(Time::ZERO);

    let mut matrix = PerCoreSeries::new();
    let crash = |k: &Kernel, e: SimError| {
        EngineError::Crash(EngineCrash {
            sched,
            error: e.to_string(),
            report: k.crash_report(&e),
        })
    };
    let mut abort: Option<(AbortKind, String)> = None;
    while k.now() < limit && !(sc.run.until_apps_done && k.all_apps_done()) {
        let next = k.now() + step;
        if let Err(e) = k.try_run_until(next) {
            // Supervision aborts leave a *consistent* kernel: salvage the
            // partial result. Anything else is a real crash.
            let kind = match &e {
                SimError::BudgetExceeded { .. } => AbortKind::Budget,
                SimError::Livelock { .. } => AbortKind::Livelock,
                SimError::Cancelled { .. } => AbortKind::Cancelled,
                _ => return Err(crash(&k, e)),
            };
            abort = Some((kind, e.to_string()));
            break;
        }
        matrix.push(
            k.now(),
            (0..ncpu)
                .map(|c| k.nr_queued(CpuId(c as u32)) as u32)
                .collect(),
        );
        if let Some(th) = sc.run.stop_spread_le {
            if matrix.final_spread() <= th && k.now() > stop_after {
                break;
            }
        }
    }

    let digest = k.decision_digest();
    let app_results = apps
        .iter()
        .map(|&(ref phase, id)| {
            let a = k.app(id);
            AppResult {
                name: a.name.clone(),
                phase: phase.clone(),
                done: a.finished.is_some(),
                elapsed_s: a.finished.and(a.elapsed()).map(|d| d.as_secs_f64()),
                ops: a.ops,
                ops_per_sec: a.ops_per_sec(k.now()),
                avg_latency_ms: a.avg_latency().map(|d| d.as_secs_f64() * 1e3),
            }
        })
        .collect();
    let run = ScenarioRun {
        scenario: sc.name.clone(),
        sched,
        scale: opts.scale,
        seed: opts.seed,
        digest,
        digest_hex: format!("{digest:016x}"),
        end_s: k.now().as_secs_f64(),
        all_apps_done: k.all_apps_done(),
        counters: k.counters().clone(),
        run_delay: k.run_delay().summary(),
        wakeup_latency: k.wakeup_latency().summary(),
        apps: app_results,
        final_spread: matrix.final_spread(),
        convergence_s: matrix.convergence_time(1),
        partial: abort.is_some(),
        abort_kind: abort.as_ref().map(|(k, _)| *k),
        abort: abort.map(|(_, msg)| msg),
    };
    Ok(RunOutput { run, kernel: k })
}

fn counter_value(c: &kernel::Counters, name: &str) -> u64 {
    match name {
        "ctx_switches" => c.ctx_switches,
        "preemptions" => c.preemptions,
        "wakeup_preemptions" => c.wakeup_preemptions,
        "tick_preemptions" => c.tick_preemptions,
        "wakeups" => c.wakeups,
        "migrations" => c.migrations,
        "placement_scans" => c.placement_scans,
        "spawns" => c.spawns,
        "events" => c.events,
        "spurious_wakes" => c.spurious_wakes,
        "hotplug_events" => c.hotplug_events,
        _ => unreachable!("counter names validated at parse time"),
    }
}

fn metric_value(run: &ScenarioRun, name: &str) -> f64 {
    match name {
        "run_delay_mean_ms" => run.run_delay.mean_ms,
        "run_delay_p50_ms" => run.run_delay.p50_ms,
        "run_delay_p99_ms" => run.run_delay.p99_ms,
        "run_delay_max_ms" => run.run_delay.max_ms,
        "wakeup_mean_ms" => run.wakeup_latency.mean_ms,
        "wakeup_p50_ms" => run.wakeup_latency.p50_ms,
        "wakeup_p99_ms" => run.wakeup_latency.p99_ms,
        "wakeup_max_ms" => run.wakeup_latency.max_ms,
        "max_runnable_wait_ms" => run.counters.max_runnable_wait.as_secs_f64() * 1e3,
        _ => unreachable!("metric names validated at parse time"),
    }
}

fn relation_holds(rel: &RelationBound, left: f64, right: f64) -> bool {
    let rhs = rel.factor * right;
    match rel.cmp.as_str() {
        "le" => left <= rhs,
        "lt" => left < rhs,
        "ge" => left >= rhs,
        "gt" => left > rhs,
        _ => unreachable!("comparisons validated at parse time"),
    }
}

/// Evaluate every assertion of `sc` against its finished runs. Returns
/// one human-readable line per violated assertion; empty means pass.
/// Relations are skipped when one side's scheduler was not run.
///
/// Partial (SchedGuard-aborted) runs are excluded: their counters,
/// metrics and digest describe an interrupted run, so judging end-of-run
/// assertions against them would produce spurious failures. Drivers
/// report partial runs separately.
pub fn failures(sc: &Scenario, runs: &[ScenarioRun]) -> Vec<String> {
    let complete: Vec<&ScenarioRun> = runs.iter().filter(|r| !r.partial).collect();
    let mut out = Vec::new();
    let by_sched = |s: Sched| complete.iter().find(|r| r.sched == s).copied();
    let covered = |sel: SchedSel| {
        complete
            .iter()
            .filter(move |r| sel.covers(r.sched))
            .copied()
    };

    if let Some(expected) = sc.asserts.all_apps_done {
        for r in &complete {
            if r.all_apps_done != expected {
                out.push(format!(
                    "[{}] all_apps_done = {} at t={:.3}s, expected {}",
                    r.sched.name(),
                    r.all_apps_done,
                    r.end_s,
                    expected
                ));
            }
        }
    }
    for b in &sc.asserts.counter {
        for r in covered(b.sched) {
            let v = counter_value(&r.counters, &b.counter);
            if let Some(min) = b.min {
                if v < min {
                    out.push(format!(
                        "[{}] counter {} = {} < min {}",
                        r.sched.name(),
                        b.counter,
                        v,
                        min
                    ));
                }
            }
            if let Some(max) = b.max {
                if v > max {
                    out.push(format!(
                        "[{}] counter {} = {} > max {}",
                        r.sched.name(),
                        b.counter,
                        v,
                        max
                    ));
                }
            }
        }
    }
    for b in &sc.asserts.latency {
        for r in covered(b.sched) {
            let v = metric_value(r, &b.metric);
            if let Some(min) = b.min_ms {
                if v < min {
                    out.push(format!(
                        "[{}] {} = {:.3}ms < min {:.3}ms",
                        r.sched.name(),
                        b.metric,
                        v,
                        min
                    ));
                }
            }
            if let Some(max) = b.max_ms {
                if v > max {
                    out.push(format!(
                        "[{}] {} = {:.3}ms > max {:.3}ms",
                        r.sched.name(),
                        b.metric,
                        v,
                        max
                    ));
                }
            }
        }
    }
    for rel in &sc.asserts.relation {
        let (Some(l), Some(r)) = (by_sched(rel.left), by_sched(rel.right)) else {
            continue;
        };
        let lv = metric_value(l, &rel.metric);
        let rv = metric_value(r, &rel.metric);
        if !relation_holds(rel, lv, rv) {
            out.push(format!(
                "relation {}: {}({}) = {:.3} not {} {:.3} = {} × {}({})",
                rel.metric,
                rel.left.name(),
                rel.metric,
                lv,
                rel.cmp,
                rel.factor * rv,
                rel.factor,
                rel.right.name(),
                rel.metric
            ));
        }
    }
    for pin in &sc.asserts.digest {
        if let Some(r) = by_sched(pin.sched) {
            if r.digest != pin.value {
                out.push(format!(
                    "[{}] digest {:016x} != pinned {:016x}",
                    r.sched.name(),
                    r.digest,
                    pin.value
                ));
            }
        }
    }
    out
}
