//! Declarative scheduling scenarios.
//!
//! The paper's figures hard-code each workload in Rust; this crate turns a
//! workload × topology × fault-plan × assertion combination into *data*: a
//! TOML (or JSON) file parsed into a [`spec::Scenario`] and executed by
//! [`engine::run_sched`] on either scheduler. The `battle run` subcommand
//! is the CLI front-end; `scenarios/` in the repo root is the library of
//! ported figures and new stress scenarios the golden-digest CI gate pins.
//!
//! Layering:
//!
//! | Module       | Role |
//! |--------------|------|
//! | [`toml`]     | minimal TOML → [`serde::Value`] parser (the vendored serde has no deserializer) |
//! | [`expr`]     | scale-aware time/count expressions (`{ base_s = 420, plus_s = 30 }`) |
//! | [`spec`]     | the typed scenario schema, with unknown-key rejection and field-path errors |
//! | [`workload`] | phase specs → kernel [`AppSpec`]s (digest-compatible with the hardcoded figures) |
//! | [`engine`]   | build kernel, queue phases, drive the loop, evaluate assertions |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod expr;
pub mod spec;
pub mod toml;
pub mod workload;

use cfs::Cfs;
use eevdf::Eevdf;
use kernel::{CheckMode, FaultPlan, Kernel, SimConfig, SimpleRR};
use sched_api::scx::{FifoPolicy, ScxSched, VtimePolicy};
use topology::Topology;
use ule::Ule;

pub use engine::{
    failures, run_sched, AbortKind, EngineCrash, EngineError, EngineOpts, RunOutput, ScenarioRun,
};
pub use spec::{BudgetSpec, Scenario, SpecError};

/// Which scheduler drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Deserialize)]
pub enum Sched {
    /// Linux CFS.
    Cfs,
    /// FreeBSD ULE (the paper's Linux port).
    Ule,
    /// EEVDF (Linux 6.6's CFS successor).
    Eevdf,
    /// The kernel crate's round-robin reference class.
    SimpleRr,
    /// sched_ext-style example policy: global-arrival FIFO.
    ScxFifo,
    /// sched_ext-style example policy: weight-scaled virtual time.
    ScxVtime,
}

impl Sched {
    /// The paper's two schedulers, CFS first. Figure reproductions and the
    /// default scenario sweep compare exactly these.
    pub const BOTH: [Sched; 2] = [Sched::Cfs, Sched::Ule];

    /// Every registered scheduler, in stable report order. Tournaments,
    /// differential fuzzing and the proptest suite iterate this.
    pub const ALL: [Sched; 6] = [
        Sched::Cfs,
        Sched::Ule,
        Sched::Eevdf,
        Sched::SimpleRr,
        Sched::ScxFifo,
        Sched::ScxVtime,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sched::Cfs => "CFS",
            Sched::Ule => "ULE",
            Sched::Eevdf => "EEVDF",
            Sched::SimpleRr => "SimpleRR",
            Sched::ScxFifo => "scx_fifo",
            Sched::ScxVtime => "scx_vtime",
        }
    }

    /// Stable lowercase name used by CLI flags, TOML specs, JSON reports
    /// and golden-digest labels.
    pub fn flag_name(self) -> &'static str {
        match self {
            Sched::Cfs => "cfs",
            Sched::Ule => "ule",
            Sched::Eevdf => "eevdf",
            Sched::SimpleRr => "simple-rr",
            Sched::ScxFifo => "scx-fifo",
            Sched::ScxVtime => "scx-vtime",
        }
    }

    /// Inverse of [`Sched::flag_name`].
    pub fn parse_flag(s: &str) -> Option<Sched> {
        Sched::ALL.into_iter().find(|x| x.flag_name() == s)
    }
}

/// JSON reports carry the display name ("CFS", "scx_fifo", …), matching
/// the bench/latency artifacts that predate this enum growing variants.
impl serde::Serialize for Sched {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(String::from(self.name()))
    }
}

/// Build the scheduling class `sched` for `topo` (the single registry every
/// front-end — scenarios, fuzzing, tournaments — constructs schedulers
/// through). `seed` only matters to classes with internal randomness (ULE's
/// balancer interval jitter).
pub fn make_class(topo: &Topology, sched: Sched, seed: u64) -> Box<dyn sched_api::Scheduler> {
    match sched {
        Sched::Cfs => Box::new(Cfs::new(topo)),
        Sched::Ule => Box::new(Ule::with_params(
            topo,
            ule::params::UleParams::default(),
            seed,
        )),
        Sched::Eevdf => Box::new(Eevdf::new(topo)),
        Sched::SimpleRr => Box::new(SimpleRR::new(topo)),
        Sched::ScxFifo => Box::new(ScxSched::new(FifoPolicy, topo.nr_cpus())),
        Sched::ScxVtime => Box::new(ScxSched::new(VtimePolicy::default(), topo.nr_cpus())),
    }
}

/// Build a kernel for `topo` driven by `sched`, with an explicit check
/// mode and fault plan.
///
/// The fault plan must be in the [`SimConfig`] before construction: the
/// kernel forks its fault RNG from the seed at `Kernel::new` time.
pub fn make_kernel(
    topo: &Topology,
    sched: Sched,
    seed: u64,
    check: CheckMode,
    faults: FaultPlan,
) -> Kernel {
    let mut cfg = SimConfig::with_seed(seed);
    cfg.check = check;
    cfg.faults = faults;
    if cfg.check == CheckMode::Strict {
        // Keep a flight-recorder tail so a crash bundle has context.
        cfg.trace_capacity = cfg.trace_capacity.max(256);
    }
    Kernel::new(topo.clone(), cfg, make_class(topo, sched, seed))
}
