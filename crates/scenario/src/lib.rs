//! Declarative scheduling scenarios.
//!
//! The paper's figures hard-code each workload in Rust; this crate turns a
//! workload × topology × fault-plan × assertion combination into *data*: a
//! TOML (or JSON) file parsed into a [`spec::Scenario`] and executed by
//! [`engine::run_sched`] on either scheduler. The `battle run` subcommand
//! is the CLI front-end; `scenarios/` in the repo root is the library of
//! ported figures and new stress scenarios the golden-digest CI gate pins.
//!
//! Layering:
//!
//! | Module       | Role |
//! |--------------|------|
//! | [`toml`]     | minimal TOML → [`serde::Value`] parser (the vendored serde has no deserializer) |
//! | [`expr`]     | scale-aware time/count expressions (`{ base_s = 420, plus_s = 30 }`) |
//! | [`spec`]     | the typed scenario schema, with unknown-key rejection and field-path errors |
//! | [`workload`] | phase specs → kernel [`AppSpec`]s (digest-compatible with the hardcoded figures) |
//! | [`engine`]   | build kernel, queue phases, drive the loop, evaluate assertions |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod expr;
pub mod spec;
pub mod toml;
pub mod workload;

use cfs::Cfs;
use kernel::{CheckMode, FaultPlan, Kernel, SimConfig};
use topology::Topology;
use ule::Ule;

pub use engine::{
    failures, run_sched, AbortKind, EngineCrash, EngineError, EngineOpts, RunOutput, ScenarioRun,
};
pub use spec::{BudgetSpec, Scenario, SpecError};

/// Which scheduler drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Sched {
    /// Linux CFS.
    Cfs,
    /// FreeBSD ULE (the paper's Linux port).
    Ule,
}

impl Sched {
    /// Both schedulers, CFS first.
    pub const BOTH: [Sched; 2] = [Sched::Cfs, Sched::Ule];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sched::Cfs => "CFS",
            Sched::Ule => "ULE",
        }
    }
}

/// Build a kernel for `topo` driven by `sched`, with an explicit check
/// mode and fault plan.
///
/// The fault plan must be in the [`SimConfig`] before construction: the
/// kernel forks its fault RNG from the seed at `Kernel::new` time.
pub fn make_kernel(
    topo: &Topology,
    sched: Sched,
    seed: u64,
    check: CheckMode,
    faults: FaultPlan,
) -> Kernel {
    let mut cfg = SimConfig::with_seed(seed);
    cfg.check = check;
    cfg.faults = faults;
    if cfg.check == CheckMode::Strict {
        // Keep a flight-recorder tail so a crash bundle has context.
        cfg.trace_capacity = cfg.trace_capacity.max(256);
    }
    let class: Box<dyn sched_api::Scheduler> = match sched {
        Sched::Cfs => Box::new(Cfs::new(topo)),
        Sched::Ule => Box::new(Ule::with_params(
            topo,
            ule::params::UleParams::default(),
            seed,
        )),
    };
    Kernel::new(topo.clone(), cfg, class)
}
