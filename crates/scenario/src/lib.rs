//! Declarative scheduling scenarios.
//!
//! The paper's figures hard-code each workload in Rust; this crate turns a
//! workload × topology × fault-plan × assertion combination into *data*: a
//! TOML (or JSON) file parsed into a [`spec::Scenario`] and executed by
//! [`engine::run_sched`] on either scheduler. The `battle run` subcommand
//! is the CLI front-end; `scenarios/` in the repo root is the library of
//! ported figures and new stress scenarios the golden-digest CI gate pins.
//!
//! Layering:
//!
//! | Module       | Role |
//! |--------------|------|
//! | [`toml`]     | minimal TOML → [`serde::Value`] parser (the vendored serde has no deserializer) |
//! | [`expr`]     | scale-aware time/count expressions (`{ base_s = 420, plus_s = 30 }`) |
//! | [`spec`]     | the typed scenario schema, with unknown-key rejection and field-path errors |
//! | [`workload`] | phase specs → kernel [`AppSpec`]s (digest-compatible with the hardcoded figures) |
//! | [`engine`]   | build kernel, queue phases, drive the loop, evaluate assertions |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod expr;
pub mod spec;
pub mod toml;
pub mod workload;

use cfs::params::CfsParams;
use cfs::Cfs;
use eevdf::{Eevdf, EevdfParams};
use kernel::{CheckMode, FaultPlan, Kernel, SimConfig, SimpleRR};
use sched_api::params::{Dim, ParamSpace, ParamVector};
use sched_api::scx::{FifoPolicy, ScxSched, VtimeParams, VtimePolicy};
use topology::Topology;
use ule::params::UleParams;
use ule::Ule;

pub use engine::{
    failures, run_sched, AbortKind, EngineCrash, EngineError, EngineOpts, RunOutput, ScenarioRun,
};
pub use spec::{BudgetSpec, Scenario, SpecError};

/// Which scheduler drives a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Deserialize)]
pub enum Sched {
    /// Linux CFS.
    Cfs,
    /// FreeBSD ULE (the paper's Linux port).
    Ule,
    /// EEVDF (Linux 6.6's CFS successor).
    Eevdf,
    /// The kernel crate's round-robin reference class.
    SimpleRr,
    /// sched_ext-style example policy: global-arrival FIFO.
    ScxFifo,
    /// sched_ext-style example policy: weight-scaled virtual time.
    ScxVtime,
}

impl Sched {
    /// The paper's two schedulers, CFS first. Figure reproductions and the
    /// default scenario sweep compare exactly these.
    pub const BOTH: [Sched; 2] = [Sched::Cfs, Sched::Ule];

    /// Every registered scheduler, in stable report order. Tournaments,
    /// differential fuzzing and the proptest suite iterate this.
    pub const ALL: [Sched; 6] = [
        Sched::Cfs,
        Sched::Ule,
        Sched::Eevdf,
        Sched::SimpleRr,
        Sched::ScxFifo,
        Sched::ScxVtime,
    ];

    /// The schedulers with a declared, non-empty [`param_dims`] space —
    /// what `battle tune` searches by default. SimpleRR and scx-fifo have
    /// no tunables (their whole point is having no policy state).
    pub const TUNABLE: [Sched; 4] = [Sched::Cfs, Sched::Ule, Sched::Eevdf, Sched::ScxVtime];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Sched::Cfs => "CFS",
            Sched::Ule => "ULE",
            Sched::Eevdf => "EEVDF",
            Sched::SimpleRr => "SimpleRR",
            Sched::ScxFifo => "scx_fifo",
            Sched::ScxVtime => "scx_vtime",
        }
    }

    /// Stable lowercase name used by CLI flags, TOML specs, JSON reports
    /// and golden-digest labels.
    pub fn flag_name(self) -> &'static str {
        match self {
            Sched::Cfs => "cfs",
            Sched::Ule => "ule",
            Sched::Eevdf => "eevdf",
            Sched::SimpleRr => "simple-rr",
            Sched::ScxFifo => "scx-fifo",
            Sched::ScxVtime => "scx-vtime",
        }
    }

    /// Inverse of [`Sched::flag_name`].
    pub fn parse_flag(s: &str) -> Option<Sched> {
        Sched::ALL.into_iter().find(|x| x.flag_name() == s)
    }
}

/// JSON reports carry the display name ("CFS", "scx_fifo", …), matching
/// the bench/latency artifacts that predate this enum growing variants.
impl serde::Serialize for Sched {
    fn serialize_value(&self) -> serde::Value {
        serde::Value::Str(String::from(self.name()))
    }
}

/// Build the scheduling class `sched` for `topo` (the single registry every
/// front-end — scenarios, fuzzing, tournaments — constructs schedulers
/// through). `seed` only matters to classes with internal randomness (ULE's
/// balancer interval jitter).
pub fn make_class(topo: &Topology, sched: Sched, seed: u64) -> Box<dyn sched_api::Scheduler> {
    make_class_tuned(topo, sched, seed, None)
}

/// The tunable dimensions of `sched`'s parameter space (`battle tune`);
/// empty for schedulers without tunables.
pub fn param_dims(sched: Sched) -> Vec<Dim> {
    match sched {
        Sched::Cfs => CfsParams::dims(),
        Sched::Ule => UleParams::dims(),
        Sched::Eevdf => EevdfParams::dims(),
        Sched::ScxVtime => VtimeParams::dims(),
        Sched::SimpleRr | Sched::ScxFifo => Vec::new(),
    }
}

/// [`make_class`] with an optional parameter-vector override: `None` (or a
/// scheduler without tunables) builds the stock defaults, `Some(v)` decodes
/// `v` through the scheduler's [`ParamSpace`] (clamped to the declared
/// bounds). The single construction path for every tuned run.
pub fn make_class_tuned(
    topo: &Topology,
    sched: Sched,
    seed: u64,
    params: Option<&ParamVector>,
) -> Box<dyn sched_api::Scheduler> {
    match sched {
        Sched::Cfs => Box::new(Cfs::with_params(
            topo,
            params.map(CfsParams::from_vector).unwrap_or_default(),
        )),
        Sched::Ule => Box::new(Ule::with_params(
            topo,
            params.map(UleParams::from_vector).unwrap_or_default(),
            seed,
        )),
        Sched::Eevdf => Box::new(Eevdf::with_params(
            topo,
            params.map(EevdfParams::from_vector).unwrap_or_default(),
        )),
        Sched::SimpleRr => Box::new(SimpleRR::new(topo)),
        Sched::ScxFifo => Box::new(ScxSched::new(FifoPolicy, topo.nr_cpus())),
        Sched::ScxVtime => Box::new(ScxSched::new(
            VtimePolicy::with_params(params.map(VtimeParams::from_vector).unwrap_or_default()),
            topo.nr_cpus(),
        )),
    }
}

/// Build a kernel for `topo` driven by `sched`, with an explicit check
/// mode and fault plan.
///
/// The fault plan must be in the [`SimConfig`] before construction: the
/// kernel forks its fault RNG from the seed at `Kernel::new` time.
pub fn make_kernel(
    topo: &Topology,
    sched: Sched,
    seed: u64,
    check: CheckMode,
    faults: FaultPlan,
) -> Kernel {
    make_kernel_tuned(topo, sched, seed, check, faults, None)
}

/// [`make_kernel`] with an optional scheduler parameter-vector override
/// (see [`make_class_tuned`]).
pub fn make_kernel_tuned(
    topo: &Topology,
    sched: Sched,
    seed: u64,
    check: CheckMode,
    faults: FaultPlan,
    params: Option<&ParamVector>,
) -> Kernel {
    let mut cfg = SimConfig::with_seed(seed);
    cfg.check = check;
    cfg.faults = faults;
    if cfg.check == CheckMode::Strict {
        // Keep a flight-recorder tail so a crash bundle has context.
        cfg.trace_capacity = cfg.trace_capacity.max(256);
    }
    Kernel::new(
        topo.clone(),
        cfg,
        make_class_tuned(topo, sched, seed, params),
    )
}
