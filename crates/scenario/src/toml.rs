//! A minimal TOML parser producing [`serde::Value`] trees.
//!
//! The workspace's vendored `serde` serializes but does not deserialize, so
//! the scenario format parses its own input: this module covers the TOML
//! subset the scenario files use — `[table]` headers, `[[array-of-tables]]`
//! headers, dotted and bare keys, basic and literal strings, integers,
//! floats, booleans, arrays (including multi-line) and inline tables —
//! and reports every error with the line it occurred on. The same
//! [`Value`] tree also comes out of `serde_json::from_str`, so a scenario
//! may equally be written as JSON (see [`crate::spec::Scenario::from_value`]).

use serde::Value;

/// A parse failure, pinned to a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TomlError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, TomlError> {
    Err(TomlError {
        line,
        msg: msg.into(),
    })
}

/// Parse a TOML document into a [`Value::Object`] tree.
pub fn parse(src: &str) -> Result<Value, TomlError> {
    let mut root = Value::Object(Vec::new());
    // Paths of explicitly-defined `[table]` headers (joined with '\x1f'),
    // to reject a table defined twice.
    let mut defined: Vec<String> = Vec::new();
    // The header path all `key = value` lines currently land under.
    let mut cur: Vec<String> = Vec::new();

    let lines: Vec<&str> = src.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let lineno = i + 1;
        let line = strip_comment(lines[i]);
        let t = line.trim();
        i += 1;
        if t.is_empty() {
            continue;
        }
        if let Some(rest) = t.strip_prefix("[[") {
            let Some(inner) = rest.strip_suffix("]]") else {
                return err(lineno, "unterminated [[table]] header");
            };
            let path = parse_key_path(inner, lineno)?;
            push_array_table(&mut root, &path, lineno)?;
            cur = path;
        } else if let Some(rest) = t.strip_prefix('[') {
            let Some(inner) = rest.strip_suffix(']') else {
                return err(lineno, "unterminated [table] header");
            };
            let path = parse_key_path(inner, lineno)?;
            let joined = path.join("\x1f");
            if defined.contains(&joined) {
                return err(lineno, format!("table [{}] defined twice", path.join(".")));
            }
            defined.push(joined);
            navigate(&mut root, &path, lineno)?;
            cur = path;
        } else {
            // `key = value`, possibly spanning multiple lines (unbalanced
            // brackets/braces continue onto the next line).
            let Some(eq) = find_unquoted(t, '=') else {
                return err(lineno, format!("expected `key = value`, got `{t}`"));
            };
            let key_part = &t[..eq];
            let mut val_part = t[eq + 1..].trim().to_string();
            while !brackets_balanced(&val_part) {
                if i >= lines.len() {
                    return err(lineno, "unterminated array or inline table");
                }
                val_part.push(' ');
                val_part.push_str(strip_comment(lines[i]).trim());
                i += 1;
            }
            let keys = parse_key_path(key_part, lineno)?;
            let (last, parents) = keys.split_last().expect("non-empty key path");
            let mut full = cur.clone();
            full.extend(parents.iter().cloned());
            let table = navigate(&mut root, &full, lineno)?;
            let (value, rest) = parse_value(val_part.trim(), lineno)?;
            if !rest.trim().is_empty() {
                return err(
                    lineno,
                    format!("trailing input after value: `{}`", rest.trim()),
                );
            }
            insert(table, last.clone(), value, lineno)?;
        }
    }
    Ok(root)
}

/// Drop a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for (idx, c) in line.char_indices() {
        match c {
            '\\' if in_basic && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !in_literal && !escaped => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '#' if !in_basic && !in_literal => return &line[..idx],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Find a character outside quotes; returns its byte index.
fn find_unquoted(s: &str, needle: char) -> Option<usize> {
    let mut in_basic = false;
    let mut in_literal = false;
    for (idx, c) in s.char_indices() {
        match c {
            '"' if !in_literal => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            c if c == needle && !in_basic && !in_literal => return Some(idx),
            _ => {}
        }
    }
    None
}

/// `true` once every `[`/`{` outside strings has a matching closer.
fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i64;
    let mut in_basic = false;
    let mut in_literal = false;
    let mut escaped = false;
    for c in s.chars() {
        match c {
            '\\' if in_basic && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !in_literal && !escaped => in_basic = !in_basic,
            '\'' if !in_basic => in_literal = !in_literal,
            '[' | '{' if !in_basic && !in_literal => depth += 1,
            ']' | '}' if !in_basic && !in_literal => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

/// Split a dotted key path into bare-key segments.
fn parse_key_path(s: &str, line: usize) -> Result<Vec<String>, TomlError> {
    let mut out = Vec::new();
    for seg in s.split('.') {
        let seg = seg.trim();
        if seg.is_empty() {
            return err(line, format!("empty key segment in `{s}`"));
        }
        if !seg
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return err(
                line,
                format!("key `{seg}` must be a bare key (letters, digits, `_`, `-`)"),
            );
        }
        out.push(seg.to_string());
    }
    Ok(out)
}

/// Walk (creating as needed) to the table at `path`. An array-of-tables on
/// the way descends into its *last* element, as TOML specifies.
fn navigate<'a>(
    root: &'a mut Value,
    path: &[String],
    line: usize,
) -> Result<&'a mut Value, TomlError> {
    let mut cur = root;
    for seg in path {
        let Value::Object(fields) = cur else {
            return err(line, format!("`{seg}` is not a table"));
        };
        if !fields.iter().any(|(k, _)| k == seg) {
            fields.push((seg.clone(), Value::Object(Vec::new())));
        }
        let slot = &mut fields
            .iter_mut()
            .find(|(k, _)| k == seg)
            .expect("just ensured")
            .1;
        cur = match slot {
            Value::Array(items) => match items.last_mut() {
                Some(last) => last,
                None => return err(line, format!("array `{seg}` has no elements")),
            },
            other => other,
        };
        if !matches!(cur, Value::Object(_)) {
            return err(line, format!("key `{seg}` is not a table"));
        }
    }
    Ok(cur)
}

/// Append a fresh table to the array-of-tables at `path`, creating it.
fn push_array_table(root: &mut Value, path: &[String], line: usize) -> Result<(), TomlError> {
    let (last, parents) = path.split_last().expect("non-empty header");
    let parent = navigate(root, parents, line)?;
    let Value::Object(fields) = parent else {
        return err(line, "parent of [[table]] is not a table");
    };
    if !fields.iter().any(|(k, _)| k == last) {
        fields.push((last.clone(), Value::Array(Vec::new())));
    }
    let slot = &mut fields
        .iter_mut()
        .find(|(k, _)| k == last)
        .expect("just ensured")
        .1;
    match slot {
        Value::Array(items) => {
            items.push(Value::Object(Vec::new()));
            Ok(())
        }
        _ => err(
            line,
            format!("`{last}` already defined as a non-array value"),
        ),
    }
}

/// Insert a key into a table, rejecting duplicates.
fn insert(table: &mut Value, key: String, v: Value, line: usize) -> Result<(), TomlError> {
    let Value::Object(fields) = table else {
        return err(line, "cannot insert into a non-table");
    };
    if fields.iter().any(|(k, _)| *k == key) {
        return err(line, format!("duplicate key `{key}`"));
    }
    fields.push((key, v));
    Ok(())
}

/// Parse one TOML value from the front of `s`; returns the rest.
fn parse_value(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let s = s.trim_start();
    let Some(first) = s.chars().next() else {
        return err(line, "missing value");
    };
    match first {
        '"' => parse_basic_string(s, line),
        '\'' => parse_literal_string(s, line),
        '[' => parse_array(s, line),
        '{' => parse_inline_table(s, line),
        't' | 'f' => {
            if let Some(rest) = s.strip_prefix("true") {
                Ok((Value::Bool(true), rest))
            } else if let Some(rest) = s.strip_prefix("false") {
                Ok((Value::Bool(false), rest))
            } else {
                err(line, format!("bad value `{}`", head(s)))
            }
        }
        c if c == '-' || c == '+' || c.is_ascii_digit() => parse_number(s, line),
        _ => err(line, format!("bad value `{}`", head(s))),
    }
}

fn head(s: &str) -> &str {
    let end = s
        .char_indices()
        .find(|&(_, c)| c == ',' || c == ']' || c == '}' || c.is_whitespace())
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    &s[..end.max(1).min(s.len())]
}

fn parse_basic_string(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let mut out = String::new();
    let mut chars = s.char_indices().skip(1);
    while let Some((idx, c)) = chars.next() {
        match c {
            '"' => return Ok((Value::Str(out), &s[idx + 1..])),
            '\\' => match chars.next() {
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, other)) => {
                    return err(line, format!("unsupported escape `\\{other}` in string"))
                }
                None => return err(line, "unterminated string escape"),
            },
            other => out.push(other),
        }
    }
    err(line, "unterminated string")
}

fn parse_literal_string(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let body = &s[1..];
    match body.find('\'') {
        Some(end) => Ok((Value::Str(body[..end].to_string()), &body[end + 1..])),
        None => err(line, "unterminated literal string"),
    }
}

fn parse_number(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let end = s
        .char_indices()
        .find(|&(i, c)| {
            !(c.is_ascii_digit()
                || c == '.'
                || c == '_'
                || c == 'e'
                || c == 'E'
                || ((c == '-' || c == '+') && i == 0)
                || ((c == '-' || c == '+') && s[..i].ends_with(['e', 'E'])))
        })
        .map(|(i, _)| i)
        .unwrap_or(s.len());
    let (tok, rest) = s.split_at(end);
    let clean: String = tok.chars().filter(|&c| c != '_').collect();
    if clean.contains('.') || clean.contains('e') || clean.contains('E') {
        match clean.parse::<f64>() {
            Ok(f) => Ok((Value::Float(f), rest)),
            Err(_) => err(line, format!("bad float `{tok}`")),
        }
    } else if let Some(stripped) = clean.strip_prefix('-') {
        match stripped.parse::<u64>() {
            Ok(_) => match clean.parse::<i64>() {
                Ok(n) => Ok((Value::Int(n), rest)),
                Err(_) => err(line, format!("integer `{tok}` out of range")),
            },
            Err(_) => err(line, format!("bad integer `{tok}`")),
        }
    } else {
        let clean = clean.strip_prefix('+').unwrap_or(&clean);
        match clean.parse::<u64>() {
            Ok(n) => Ok((Value::UInt(n), rest)),
            Err(_) => err(line, format!("bad integer `{tok}`")),
        }
    }
}

fn parse_array(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let mut rest = &s[1..];
    let mut items = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix(']') {
            return Ok((Value::Array(items), r));
        }
        let (v, r) = parse_value(rest, line)?;
        items.push(v);
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with(']') {
            return err(line, "expected `,` or `]` in array");
        }
    }
}

fn parse_inline_table(s: &str, line: usize) -> Result<(Value, &str), TomlError> {
    let mut rest = &s[1..];
    let mut table = Value::Object(Vec::new());
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((table, r));
        }
        let Some(eq) = find_unquoted(rest, '=') else {
            return err(line, "expected `key = value` in inline table");
        };
        let keys = parse_key_path(&rest[..eq], line)?;
        if keys.len() != 1 {
            return err(line, "dotted keys are not supported in inline tables");
        }
        let (v, r) = parse_value(rest[eq + 1..].trim_start(), line)?;
        insert(&mut table, keys[0].clone(), v, line)?;
        rest = r.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return err(line, "expected `,` or `}` in inline table");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(v: &Value) -> &[(String, Value)] {
        match v {
            Value::Object(f) => f,
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn tables_keys_and_scalars() {
        let v = parse(
            "title = \"demo\"\n\
             count = 42\n\
             neg = -7\n\
             ratio = 1.5\n\
             on = true\n\
             [a.b]\n\
             x = 'lit'\n",
        )
        .unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_u64(), Some(42));
        assert_eq!(*v.get("neg").unwrap(), Value::Int(-7));
        assert_eq!(v.get("ratio").unwrap().as_f64(), Some(1.5));
        assert_eq!(*v.get("on").unwrap(), Value::Bool(true));
        let a = v.get("a").unwrap();
        assert_eq!(a.get("b").unwrap().get("x").unwrap().as_str(), Some("lit"));
    }

    #[test]
    fn array_of_tables_and_inline_tables() {
        let v = parse(
            "[[phase]]\n\
             name = \"one\"\n\
             at = { base_s = 7.0, scale_min = 0.05 }\n\
             [[phase]]\n\
             name = \"two\"\n\
             pin = [0, 1, 2]\n",
        )
        .unwrap();
        let phases = v.get("phase").unwrap().as_array().unwrap();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].get("name").unwrap().as_str(), Some("one"));
        assert_eq!(
            phases[0].get("at").unwrap().get("base_s").unwrap().as_f64(),
            Some(7.0)
        );
        let pins = phases[1].get("pin").unwrap().as_array().unwrap();
        assert_eq!(pins.len(), 3);
    }

    #[test]
    fn multiline_arrays_and_comments() {
        let v = parse(
            "# a comment\n\
             threads = [\n\
               { name = \"a\", nice = -5 }, # inline comment\n\
               { name = \"b\" },\n\
             ]\n",
        )
        .unwrap();
        let t = v.get("threads").unwrap().as_array().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(*t[0].get("nice").unwrap(), Value::Int(-5));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("ok = 1\nbroken\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("key = value"), "{e}");

        let e = parse("a = 1\na = 2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("duplicate key `a`"), "{e}");

        let e = parse("[t]\nx = 1\n[t]\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.msg.contains("defined twice"), "{e}");

        let e = parse("x = @nope\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.msg.contains("bad value"), "{e}");
    }

    #[test]
    fn dotted_keys_and_hash_in_strings() {
        let v = parse("a.b = 3\ns = \"no # comment\"\n").unwrap();
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("no # comment"));
    }

    #[test]
    fn header_after_array_of_tables_key() {
        // `[assert]` may add plain keys to a table whose sub-array was
        // created first — the scenario files rely on this.
        let v = parse("[[assert.counter]]\nname = \"x\"\n[assert]\nall = true\n").unwrap();
        let a = v.get("assert").unwrap();
        assert_eq!(*a.get("all").unwrap(), Value::Bool(true));
        assert_eq!(
            obj(&a.get("counter").unwrap().as_array().unwrap()[0]).len(),
            1
        );
    }
}
