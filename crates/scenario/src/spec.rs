//! The typed scenario schema.
//!
//! A scenario file describes, declaratively, everything a hardcoded figure
//! driver does imperatively: which schedulers to run, the machine shape,
//! the workload phases and when they start, optional mid-run events
//! (unpinning), a fault plan, the run loop (horizon, sampling step, stop
//! rules) and the assertions that make the scenario a regression test
//! (digest pins, counter bounds, latency bounds, CFS↔ULE relations).
//!
//! Parsing is strict: unknown keys are rejected with the full field path
//! (`phase[2].chunk_ms`), so typos fail loudly instead of silently running
//! a different experiment.

use kernel::FaultPlan;
use serde::Value;
use simcore::Dur;
use topology::Topology;

use crate::expr::{CountExpr, TimeExpr};
use crate::Sched;

/// A schema error, pinned to a field path like `phase[0].count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Dotted field path of the offending value.
    pub path: String,
    /// What went wrong.
    pub msg: String,
}

impl SpecError {
    /// Build an error at a field path.
    pub fn new(path: impl Into<String>, msg: impl Into<String>) -> SpecError {
        SpecError {
            path: path.into(),
            msg: msg.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}", self.msg)
        } else {
            write!(f, "{}: {}", self.path, self.msg)
        }
    }
}

impl std::error::Error for SpecError {}

/// A scenario file failed to parse: either the surface syntax (with a
/// line number) or the schema (with a field path).
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// TOML syntax error.
    Toml(crate::toml::TomlError),
    /// JSON syntax error (message from the vendored `serde_json`).
    Json(String),
    /// Schema error.
    Spec(SpecError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Toml(e) => write!(f, "{e}"),
            ParseError::Json(e) => write!(f, "{e}"),
            ParseError::Spec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<crate::toml::TomlError> for ParseError {
    fn from(e: crate::toml::TomlError) -> Self {
        ParseError::Toml(e)
    }
}

impl From<SpecError> for ParseError {
    fn from(e: SpecError) -> Self {
        ParseError::Spec(e)
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

/// Reject any key of the object `v` not in `allowed`, reporting its path.
pub fn check_keys(v: &Value, path: &str, allowed: &[&str]) -> Result<(), SpecError> {
    let Value::Object(fields) = v else {
        return Err(SpecError::new(path, "expected a table"));
    };
    for (k, _) in fields {
        if !allowed.contains(&k.as_str()) {
            return Err(SpecError::new(
                join(path, k),
                format!("unknown key (expected one of: {})", allowed.join(", ")),
            ));
        }
    }
    Ok(())
}

/// Optional float field (`Int`/`UInt` widen); wrong type is an error.
pub fn get_f64(v: &Value, path: &str, key: &str) -> Result<Option<f64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_f64()
            .map(Some)
            .ok_or_else(|| SpecError::new(join(path, key), "expected a number")),
    }
}

/// Optional non-negative integer field; wrong type is an error.
pub fn get_u64(v: &Value, path: &str, key: &str) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_u64()
            .map(Some)
            .ok_or_else(|| SpecError::new(join(path, key), "expected a non-negative integer")),
    }
}

/// Optional signed integer field; wrong type is an error.
pub fn get_i64(v: &Value, path: &str, key: &str) -> Result<Option<i64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Int(n)) => Ok(Some(*n)),
        Some(Value::UInt(n)) if *n <= i64::MAX as u64 => Ok(Some(*n as i64)),
        Some(_) => Err(SpecError::new(join(path, key), "expected an integer")),
    }
}

/// Optional boolean field; wrong type is an error.
pub fn get_bool(v: &Value, path: &str, key: &str) -> Result<Option<bool>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(SpecError::new(join(path, key), "expected true or false")),
    }
}

/// Optional string field; wrong type is an error.
pub fn get_str(v: &Value, path: &str, key: &str) -> Result<Option<String>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(f) => f
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| SpecError::new(join(path, key), "expected a string")),
    }
}

/// Required string field.
pub fn req_str(v: &Value, path: &str, key: &str) -> Result<String, SpecError> {
    get_str(v, path, key)?.ok_or_else(|| SpecError::new(join(path, key), "missing required field"))
}

/// Optional array field; wrong type is an error.
pub fn get_array<'a>(v: &'a Value, path: &str, key: &str) -> Result<&'a [Value], SpecError> {
    match v.get(key) {
        None => Ok(&[]),
        Some(f) => f
            .as_array()
            .ok_or_else(|| SpecError::new(join(path, key), "expected an array")),
    }
}

fn parse_sched(s: &str, path: &str) -> Result<Sched, SpecError> {
    Sched::parse_flag(s).ok_or_else(|| {
        let known: Vec<&str> = Sched::ALL.iter().map(|x| x.flag_name()).collect();
        SpecError::new(
            path,
            format!(
                "unknown scheduler `{s}` (expected one of {})",
                known.join(", ")
            ),
        )
    })
}

fn sched_str(s: Sched) -> &'static str {
    s.flag_name()
}

/// Which scheduler(s) an assertion applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedSel {
    /// Both schedulers.
    Both,
    /// One specific scheduler.
    One(Sched),
}

impl SchedSel {
    /// Does this selector cover `sched`?
    pub fn covers(self, sched: Sched) -> bool {
        match self {
            SchedSel::Both => true,
            SchedSel::One(s) => s == sched,
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<SchedSel, SpecError> {
        match get_str(v, path, "sched")?.as_deref() {
            None | Some("both") => Ok(SchedSel::Both),
            Some(s) => Ok(SchedSel::One(parse_sched(s, &join(path, "sched"))?)),
        }
    }

    fn to_value(self) -> Option<(String, Value)> {
        match self {
            SchedSel::Both => None,
            SchedSel::One(s) => Some(("sched".to_string(), Value::Str(sched_str(s).into()))),
        }
    }
}

/// Machine shape: a named preset or an explicit regular hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoSpec {
    /// One of the paper machines: `single-core`, `opteron-6172`,
    /// `i7-3770`, or `flat-N` for N symmetric cores.
    Preset(String),
    /// `Topology::regular` with explicit level widths.
    Regular {
        /// NUMA nodes.
        nodes: u32,
        /// Last-level caches per node.
        llcs_per_node: u32,
        /// Cores per LLC.
        cores_per_llc: u32,
        /// Hardware threads per core.
        smt_per_core: u32,
    },
}

impl TopoSpec {
    /// Instantiate the topology.
    pub fn build(&self) -> Topology {
        match self {
            TopoSpec::Preset(name) => match name.as_str() {
                "single-core" => Topology::single_core(),
                "opteron-6172" => Topology::opteron_6172(),
                "i7-3770" => Topology::core_i7_3770(),
                flat => {
                    let n: u32 = flat
                        .strip_prefix("flat-")
                        .and_then(|n| n.parse().ok())
                        .expect("preset validated at parse time");
                    Topology::flat(n)
                }
            },
            TopoSpec::Regular {
                nodes,
                llcs_per_node,
                cores_per_llc,
                smt_per_core,
            } => Topology::regular(
                "scenario",
                *nodes,
                *llcs_per_node,
                *cores_per_llc,
                *smt_per_core,
            ),
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<TopoSpec, SpecError> {
        check_keys(
            v,
            path,
            &[
                "preset",
                "nodes",
                "llcs_per_node",
                "cores_per_llc",
                "smt_per_core",
            ],
        )?;
        if let Some(preset) = get_str(v, path, "preset")? {
            let known = matches!(preset.as_str(), "single-core" | "opteron-6172" | "i7-3770")
                || preset
                    .strip_prefix("flat-")
                    .and_then(|n| n.parse::<u32>().ok())
                    .is_some_and(|n| n > 0);
            if !known {
                return Err(SpecError::new(
                    join(path, "preset"),
                    format!(
                        "unknown preset `{preset}` (expected single-core, opteron-6172, i7-3770 or flat-N)"
                    ),
                ));
            }
            return Ok(TopoSpec::Preset(preset));
        }
        let cores = get_u64(v, path, "cores_per_llc")?
            .ok_or_else(|| SpecError::new(path, "topology needs `preset` or `cores_per_llc`"))?;
        Ok(TopoSpec::Regular {
            nodes: get_u64(v, path, "nodes")?.unwrap_or(1) as u32,
            llcs_per_node: get_u64(v, path, "llcs_per_node")?.unwrap_or(1) as u32,
            cores_per_llc: cores as u32,
            smt_per_core: get_u64(v, path, "smt_per_core")?.unwrap_or(1) as u32,
        })
    }

    fn to_value(&self) -> Value {
        match self {
            TopoSpec::Preset(name) => {
                Value::Object(vec![("preset".to_string(), Value::Str(name.clone()))])
            }
            TopoSpec::Regular {
                nodes,
                llcs_per_node,
                cores_per_llc,
                smt_per_core,
            } => Value::Object(vec![
                ("nodes".to_string(), Value::UInt(*nodes as u64)),
                (
                    "llcs_per_node".to_string(),
                    Value::UInt(*llcs_per_node as u64),
                ),
                (
                    "cores_per_llc".to_string(),
                    Value::UInt(*cores_per_llc as u64),
                ),
                (
                    "smt_per_core".to_string(),
                    Value::UInt(*smt_per_core as u64),
                ),
            ]),
        }
    }
}

/// One thread of a `mutex-mix` workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MutexThreadSpec {
    /// Thread name (shows up in traces).
    pub name: String,
    /// Nice level.
    pub nice: i64,
    /// Iterations of the lock/work/sleep loop.
    pub iters: CountExpr,
    /// Whether the thread takes the shared mutex each iteration.
    pub lock: bool,
    /// CPU time held inside the critical section, milliseconds.
    pub hold_ms: f64,
    /// CPU time outside the lock each iteration, milliseconds.
    pub work_ms: f64,
    /// Optional sleep after each iteration, milliseconds.
    pub sleep_ms: Option<f64>,
}

impl MutexThreadSpec {
    fn from_value(v: &Value, path: &str) -> Result<MutexThreadSpec, SpecError> {
        check_keys(
            v,
            path,
            &[
                "name", "nice", "iters", "lock", "hold_ms", "work_ms", "sleep_ms",
            ],
        )?;
        let iters = v
            .get("iters")
            .ok_or_else(|| SpecError::new(join(path, "iters"), "missing required field"))?;
        Ok(MutexThreadSpec {
            name: req_str(v, path, "name")?,
            nice: get_i64(v, path, "nice")?.unwrap_or(0),
            iters: CountExpr::from_value(iters, &join(path, "iters"))?,
            lock: get_bool(v, path, "lock")?.unwrap_or(true),
            hold_ms: get_f64(v, path, "hold_ms")?.unwrap_or(0.0),
            work_ms: get_f64(v, path, "work_ms")?.unwrap_or(0.0),
            sleep_ms: get_f64(v, path, "sleep_ms")?,
        })
    }

    fn to_value(&self) -> Value {
        let mut f = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("iters".to_string(), self.iters.to_value()),
        ];
        if self.nice != 0 {
            f.push(("nice".to_string(), Value::Int(self.nice)));
        }
        if !self.lock {
            f.push(("lock".to_string(), Value::Bool(false)));
        }
        if self.hold_ms != 0.0 {
            f.push(("hold_ms".to_string(), Value::Float(self.hold_ms)));
        }
        if self.work_ms != 0.0 {
            f.push(("work_ms".to_string(), Value::Float(self.work_ms)));
        }
        if let Some(s) = self.sleep_ms {
            f.push(("sleep_ms".to_string(), Value::Float(s)));
        }
        Value::Object(f)
    }
}

/// What a phase launches, selected by the `kind` key.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Pinned spinners (the fig6 workload): `count` daemon threads
    /// spinning in `chunk_ms` slices, all pinned to `pin`.
    Spinners {
        /// Number of spinner threads.
        count: CountExpr,
        /// CPUs the spinners start pinned to.
        pin: Vec<u32>,
        /// Spin chunk, milliseconds.
        chunk_ms: f64,
        /// Run as a daemon app (does not count towards `all_apps_done`).
        daemon: bool,
    },
    /// The single-threaded fibonacci CPU hog (fig1).
    Fibo {
        /// Total CPU time to burn.
        work: TimeExpr,
    },
    /// A set of independent CPU hogs.
    CpuHogs {
        /// Number of threads.
        count: CountExpr,
        /// CPU time each thread burns.
        work: TimeExpr,
        /// Hog chunk, milliseconds.
        chunk_ms: f64,
        /// Nice level for all threads.
        nice: i64,
        /// Optional pin set for all threads.
        pin: Option<Vec<u32>>,
    },
    /// The sysbench OLTP model (fig1): threads transacting against a
    /// shared lock table.
    Sysbench {
        /// Client threads.
        threads: CountExpr,
        /// Total transactions across all threads.
        total_tx: CountExpr,
    },
    /// The c-ray fork/join render (fig7).
    Cray {
        /// Render threads.
        threads: CountExpr,
        /// Per-thread CPU time.
        work: TimeExpr,
    },
    /// hackbench-style sender/receiver message groups.
    Hackbench {
        /// Groups of 20 senders + 20 receivers.
        groups: CountExpr,
        /// Messages per sender.
        msgs: CountExpr,
    },
    /// One entry of the 37-application suite, by name.
    Suite {
        /// Entry name as listed by `workloads::suite()`.
        entry: String,
    },
    /// Barrier-synchronised fork/join rounds.
    ForkJoin {
        /// Worker threads.
        workers: CountExpr,
        /// Barrier rounds.
        rounds: CountExpr,
        /// CPU time per worker per round, milliseconds.
        work_ms: f64,
    },
    /// Client–server request/reply pairs over bounded queues.
    ClientServer {
        /// Client threads.
        clients: CountExpr,
        /// Server threads.
        servers: CountExpr,
        /// Request rounds per client.
        rounds: CountExpr,
        /// Requests sent back-to-back per round.
        burst: u64,
        /// Server CPU time per request, microseconds.
        service_us: f64,
        /// Client think time between rounds, milliseconds.
        think_ms: f64,
    },
    /// Thundering-herd wakeups: a waker posts a semaphore `waiters`
    /// times per round, all waiters dispatch at once.
    Herd {
        /// Waiter threads.
        waiters: CountExpr,
        /// Herd rounds.
        rounds: CountExpr,
        /// CPU time per waiter per round, microseconds.
        work_us: f64,
        /// Waker pause between rounds, milliseconds.
        pause_ms: f64,
    },
    /// Threads contending on one mutex with per-thread nice/hold/sleep
    /// mixes (priority-inversion and mixed-nice scenarios).
    MutexMix {
        /// The contending threads.
        threads: Vec<MutexThreadSpec>,
    },
}

fn pin_list(v: &Value, path: &str, key: &str) -> Result<Option<Vec<u32>>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(_) => {
            let items = get_array(v, path, key)?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                out.push(item.as_u64().map(|n| n as u32).ok_or_else(|| {
                    SpecError::new(format!("{}[{i}]", join(path, key)), "expected a CPU index")
                })?);
            }
            Ok(Some(out))
        }
    }
}

fn pin_value(pins: &[u32]) -> Value {
    Value::Array(pins.iter().map(|&p| Value::UInt(p as u64)).collect())
}

fn req_count(v: &Value, path: &str, key: &str) -> Result<CountExpr, SpecError> {
    let field = v
        .get(key)
        .ok_or_else(|| SpecError::new(join(path, key), "missing required field"))?;
    CountExpr::from_value(field, &join(path, key))
}

fn req_time(v: &Value, path: &str, key: &str) -> Result<TimeExpr, SpecError> {
    let field = v
        .get(key)
        .ok_or_else(|| SpecError::new(join(path, key), "missing required field"))?;
    TimeExpr::from_value(field, &join(path, key))
}

const PHASE_BASE_KEYS: [&str; 3] = ["name", "kind", "at"];

impl WorkloadSpec {
    /// The `kind` discriminator string.
    pub fn kind(&self) -> &'static str {
        match self {
            WorkloadSpec::Spinners { .. } => "spinners",
            WorkloadSpec::Fibo { .. } => "fibo",
            WorkloadSpec::CpuHogs { .. } => "cpu-hogs",
            WorkloadSpec::Sysbench { .. } => "sysbench",
            WorkloadSpec::Cray { .. } => "cray",
            WorkloadSpec::Hackbench { .. } => "hackbench",
            WorkloadSpec::Suite { .. } => "suite",
            WorkloadSpec::ForkJoin { .. } => "fork-join",
            WorkloadSpec::ClientServer { .. } => "client-server",
            WorkloadSpec::Herd { .. } => "herd",
            WorkloadSpec::MutexMix { .. } => "mutex-mix",
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<WorkloadSpec, SpecError> {
        let kind = req_str(v, path, "kind")?;
        fn keys<'a>(extra: &[&'a str]) -> Vec<&'a str> {
            let mut all: Vec<&str> = PHASE_BASE_KEYS.to_vec();
            all.extend_from_slice(extra);
            all
        }
        match kind.as_str() {
            "spinners" => {
                check_keys(v, path, &keys(&["count", "pin", "chunk_ms", "daemon"]))?;
                Ok(WorkloadSpec::Spinners {
                    count: req_count(v, path, "count")?,
                    pin: pin_list(v, path, "pin")?.unwrap_or_else(|| vec![0]),
                    chunk_ms: get_f64(v, path, "chunk_ms")?.unwrap_or(4.0),
                    daemon: get_bool(v, path, "daemon")?.unwrap_or(true),
                })
            }
            "fibo" => {
                check_keys(v, path, &keys(&["work"]))?;
                Ok(WorkloadSpec::Fibo {
                    work: req_time(v, path, "work")?,
                })
            }
            "cpu-hogs" => {
                check_keys(
                    v,
                    path,
                    &keys(&["count", "work", "chunk_ms", "nice", "pin"]),
                )?;
                Ok(WorkloadSpec::CpuHogs {
                    count: req_count(v, path, "count")?,
                    work: req_time(v, path, "work")?,
                    chunk_ms: get_f64(v, path, "chunk_ms")?.unwrap_or(5.0),
                    nice: get_i64(v, path, "nice")?.unwrap_or(0),
                    pin: pin_list(v, path, "pin")?,
                })
            }
            "sysbench" => {
                check_keys(v, path, &keys(&["threads", "total_tx"]))?;
                Ok(WorkloadSpec::Sysbench {
                    threads: req_count(v, path, "threads")?,
                    total_tx: req_count(v, path, "total_tx")?,
                })
            }
            "cray" => {
                check_keys(v, path, &keys(&["threads", "work"]))?;
                Ok(WorkloadSpec::Cray {
                    threads: req_count(v, path, "threads")?,
                    work: req_time(v, path, "work")?,
                })
            }
            "hackbench" => {
                check_keys(v, path, &keys(&["groups", "msgs"]))?;
                Ok(WorkloadSpec::Hackbench {
                    groups: req_count(v, path, "groups")?,
                    msgs: match v.get("msgs") {
                        Some(m) => CountExpr::from_value(m, &join(path, "msgs"))?,
                        None => CountExpr::fixed(120),
                    },
                })
            }
            "suite" => {
                check_keys(v, path, &keys(&["entry"]))?;
                Ok(WorkloadSpec::Suite {
                    entry: req_str(v, path, "entry")?,
                })
            }
            "fork-join" => {
                check_keys(v, path, &keys(&["workers", "rounds", "work_ms"]))?;
                Ok(WorkloadSpec::ForkJoin {
                    workers: req_count(v, path, "workers")?,
                    rounds: req_count(v, path, "rounds")?,
                    work_ms: get_f64(v, path, "work_ms")?.unwrap_or(1.0),
                })
            }
            "client-server" => {
                check_keys(
                    v,
                    path,
                    &keys(&[
                        "clients",
                        "servers",
                        "rounds",
                        "burst",
                        "service_us",
                        "think_ms",
                    ]),
                )?;
                Ok(WorkloadSpec::ClientServer {
                    clients: req_count(v, path, "clients")?,
                    servers: req_count(v, path, "servers")?,
                    rounds: req_count(v, path, "rounds")?,
                    burst: get_u64(v, path, "burst")?.unwrap_or(1).max(1),
                    service_us: get_f64(v, path, "service_us")?.unwrap_or(100.0),
                    think_ms: get_f64(v, path, "think_ms")?.unwrap_or(0.0),
                })
            }
            "herd" => {
                check_keys(
                    v,
                    path,
                    &keys(&["waiters", "rounds", "work_us", "pause_ms"]),
                )?;
                Ok(WorkloadSpec::Herd {
                    waiters: req_count(v, path, "waiters")?,
                    rounds: req_count(v, path, "rounds")?,
                    work_us: get_f64(v, path, "work_us")?.unwrap_or(500.0),
                    pause_ms: get_f64(v, path, "pause_ms")?.unwrap_or(10.0),
                })
            }
            "mutex-mix" => {
                check_keys(v, path, &keys(&["threads"]))?;
                let items = get_array(v, path, "threads")?;
                if items.is_empty() {
                    return Err(SpecError::new(
                        join(path, "threads"),
                        "mutex-mix needs at least one thread",
                    ));
                }
                let mut threads = Vec::with_capacity(items.len());
                for (i, item) in items.iter().enumerate() {
                    threads.push(MutexThreadSpec::from_value(
                        item,
                        &format!("{}[{i}]", join(path, "threads")),
                    )?);
                }
                Ok(WorkloadSpec::MutexMix { threads })
            }
            other => Err(SpecError::new(
                join(path, "kind"),
                format!(
                    "unknown workload kind `{other}` (expected spinners, fibo, cpu-hogs, \
                     sysbench, cray, hackbench, suite, fork-join, client-server, herd \
                     or mutex-mix)"
                ),
            )),
        }
    }

    fn extend_value(&self, f: &mut Vec<(String, Value)>) {
        f.push(("kind".to_string(), Value::Str(self.kind().into())));
        match self {
            WorkloadSpec::Spinners {
                count,
                pin,
                chunk_ms,
                daemon,
            } => {
                f.push(("count".to_string(), count.to_value()));
                if pin.as_slice() != [0] {
                    f.push(("pin".to_string(), pin_value(pin)));
                }
                if *chunk_ms != 4.0 {
                    f.push(("chunk_ms".to_string(), Value::Float(*chunk_ms)));
                }
                if !daemon {
                    f.push(("daemon".to_string(), Value::Bool(false)));
                }
            }
            WorkloadSpec::Fibo { work } => {
                f.push(("work".to_string(), work.to_value()));
            }
            WorkloadSpec::CpuHogs {
                count,
                work,
                chunk_ms,
                nice,
                pin,
            } => {
                f.push(("count".to_string(), count.to_value()));
                f.push(("work".to_string(), work.to_value()));
                if *chunk_ms != 5.0 {
                    f.push(("chunk_ms".to_string(), Value::Float(*chunk_ms)));
                }
                if *nice != 0 {
                    f.push(("nice".to_string(), Value::Int(*nice)));
                }
                if let Some(p) = pin {
                    f.push(("pin".to_string(), pin_value(p)));
                }
            }
            WorkloadSpec::Sysbench { threads, total_tx } => {
                f.push(("threads".to_string(), threads.to_value()));
                f.push(("total_tx".to_string(), total_tx.to_value()));
            }
            WorkloadSpec::Cray { threads, work } => {
                f.push(("threads".to_string(), threads.to_value()));
                f.push(("work".to_string(), work.to_value()));
            }
            WorkloadSpec::Hackbench { groups, msgs } => {
                f.push(("groups".to_string(), groups.to_value()));
                if *msgs != CountExpr::fixed(120) {
                    f.push(("msgs".to_string(), msgs.to_value()));
                }
            }
            WorkloadSpec::Suite { entry } => {
                f.push(("entry".to_string(), Value::Str(entry.clone())));
            }
            WorkloadSpec::ForkJoin {
                workers,
                rounds,
                work_ms,
            } => {
                f.push(("workers".to_string(), workers.to_value()));
                f.push(("rounds".to_string(), rounds.to_value()));
                if *work_ms != 1.0 {
                    f.push(("work_ms".to_string(), Value::Float(*work_ms)));
                }
            }
            WorkloadSpec::ClientServer {
                clients,
                servers,
                rounds,
                burst,
                service_us,
                think_ms,
            } => {
                f.push(("clients".to_string(), clients.to_value()));
                f.push(("servers".to_string(), servers.to_value()));
                f.push(("rounds".to_string(), rounds.to_value()));
                if *burst != 1 {
                    f.push(("burst".to_string(), Value::UInt(*burst)));
                }
                if *service_us != 100.0 {
                    f.push(("service_us".to_string(), Value::Float(*service_us)));
                }
                if *think_ms != 0.0 {
                    f.push(("think_ms".to_string(), Value::Float(*think_ms)));
                }
            }
            WorkloadSpec::Herd {
                waiters,
                rounds,
                work_us,
                pause_ms,
            } => {
                f.push(("waiters".to_string(), waiters.to_value()));
                f.push(("rounds".to_string(), rounds.to_value()));
                if *work_us != 500.0 {
                    f.push(("work_us".to_string(), Value::Float(*work_us)));
                }
                if *pause_ms != 10.0 {
                    f.push(("pause_ms".to_string(), Value::Float(*pause_ms)));
                }
            }
            WorkloadSpec::MutexMix { threads } => {
                f.push((
                    "threads".to_string(),
                    Value::Array(threads.iter().map(|t| t.to_value()).collect()),
                ));
            }
        }
    }
}

/// One workload phase: an app queued at a (scaled) start time.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Phase name; becomes the app name (referenced by `[[event]]`).
    pub name: String,
    /// Start time offset from the beginning of the run.
    pub at: TimeExpr,
    /// What the phase launches.
    pub workload: WorkloadSpec,
}

impl PhaseSpec {
    fn from_value(v: &Value, path: &str) -> Result<PhaseSpec, SpecError> {
        let workload = WorkloadSpec::from_value(v, path)?;
        Ok(PhaseSpec {
            name: get_str(v, path, "name")?.unwrap_or_else(|| workload.kind().to_string()),
            at: match v.get("at") {
                Some(at) => TimeExpr::from_value(at, &join(path, "at"))?,
                None => TimeExpr::fixed(0.0),
            },
            workload,
        })
    }

    fn to_value(&self) -> Value {
        let mut f = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if self.at != TimeExpr::fixed(0.0) {
            f.push(("at".to_string(), self.at.to_value()));
        }
        self.workload.extend_value(&mut f);
        Value::Object(f)
    }
}

/// A mid-run event. Only `unpin` exists today: clear the affinity masks of
/// every task of a phase's app at a given time (the fig6 release).
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Name of the phase whose app is unpinned.
    pub phase: String,
    /// When the unpin fires.
    pub at: TimeExpr,
}

impl EventSpec {
    fn from_value(v: &Value, path: &str) -> Result<EventSpec, SpecError> {
        check_keys(v, path, &["kind", "phase", "at"])?;
        let kind = req_str(v, path, "kind")?;
        if kind != "unpin" {
            return Err(SpecError::new(
                join(path, "kind"),
                format!("unknown event kind `{kind}` (expected `unpin`)"),
            ));
        }
        Ok(EventSpec {
            phase: req_str(v, path, "phase")?,
            at: req_time(v, path, "at")?,
        })
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".to_string(), Value::Str("unpin".into())),
            ("phase".to_string(), Value::Str(self.phase.clone())),
            ("at".to_string(), self.at.to_value()),
        ])
    }
}

/// Fault-injection plan (maps onto [`kernel::FaultPlan`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Spuriously wake a random sleeper with this period, milliseconds.
    pub spurious_wake_ms: Option<f64>,
    /// Uniform random tick-rearm jitter, microseconds.
    pub tick_jitter_us: f64,
    /// Percentage of ticks skipped entirely.
    pub missed_tick_pct: u64,
    /// Offline a random CPU with this period, seconds.
    pub hotplug_period_s: Option<f64>,
    /// How long an offlined CPU stays down, milliseconds.
    pub hotplug_down_ms: f64,
}

impl FaultSpec {
    /// Lower into the kernel's fault plan.
    pub fn to_plan(&self) -> FaultPlan {
        FaultPlan {
            spurious_wake_period: self.spurious_wake_ms.map(|ms| Dur::secs_f64(ms / 1000.0)),
            tick_jitter: Dur::micros(self.tick_jitter_us.round() as u64),
            missed_tick_pct: self.missed_tick_pct.min(100) as u8,
            hotplug_period: self.hotplug_period_s.map(Dur::secs_f64),
            hotplug_down: Dur::secs_f64(
                (if self.hotplug_down_ms > 0.0 {
                    self.hotplug_down_ms
                } else {
                    100.0
                }) / 1000.0,
            ),
        }
    }

    fn from_value(v: &Value, path: &str) -> Result<FaultSpec, SpecError> {
        check_keys(
            v,
            path,
            &[
                "spurious_wake_ms",
                "tick_jitter_us",
                "missed_tick_pct",
                "hotplug_period_s",
                "hotplug_down_ms",
            ],
        )?;
        let pct = get_u64(v, path, "missed_tick_pct")?.unwrap_or(0);
        if pct > 100 {
            return Err(SpecError::new(
                join(path, "missed_tick_pct"),
                "must be 0–100",
            ));
        }
        Ok(FaultSpec {
            spurious_wake_ms: get_f64(v, path, "spurious_wake_ms")?,
            tick_jitter_us: get_f64(v, path, "tick_jitter_us")?.unwrap_or(0.0),
            missed_tick_pct: pct,
            hotplug_period_s: get_f64(v, path, "hotplug_period_s")?,
            hotplug_down_ms: get_f64(v, path, "hotplug_down_ms")?.unwrap_or(100.0),
        })
    }

    fn to_value(&self) -> Value {
        let mut f = Vec::new();
        if let Some(ms) = self.spurious_wake_ms {
            f.push(("spurious_wake_ms".to_string(), Value::Float(ms)));
        }
        if self.tick_jitter_us != 0.0 {
            f.push((
                "tick_jitter_us".to_string(),
                Value::Float(self.tick_jitter_us),
            ));
        }
        if self.missed_tick_pct != 0 {
            f.push((
                "missed_tick_pct".to_string(),
                Value::UInt(self.missed_tick_pct),
            ));
        }
        if let Some(s) = self.hotplug_period_s {
            f.push(("hotplug_period_s".to_string(), Value::Float(s)));
        }
        if self.hotplug_down_ms != 100.0 {
            f.push((
                "hotplug_down_ms".to_string(),
                Value::Float(self.hotplug_down_ms),
            ));
        }
        Value::Object(f)
    }

    fn is_default(&self) -> bool {
        *self == FaultSpec::default()
    }
}

/// The run loop: horizon, sampling step and stop rules.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Simulated-time horizon for both schedulers.
    pub horizon: TimeExpr,
    /// Per-scheduler horizon override (fig6's CFS cut-off).
    pub horizon_cfs: Option<TimeExpr>,
    /// Per-scheduler horizon override.
    pub horizon_ule: Option<TimeExpr>,
    /// Sampling step for the per-core load matrix.
    pub step: TimeExpr,
    /// Stop as soon as every non-daemon app finished (default true).
    pub until_apps_done: bool,
    /// Early-stop when the per-core load spread drops to this value…
    pub stop_spread_le: Option<u32>,
    /// …but only after this time (lets the imbalance build up first).
    pub stop_spread_after: Option<TimeExpr>,
}

impl RunSpec {
    fn from_value(v: &Value, path: &str) -> Result<RunSpec, SpecError> {
        check_keys(
            v,
            path,
            &[
                "horizon",
                "horizon_cfs",
                "horizon_ule",
                "step",
                "until_apps_done",
                "stop_spread_le",
                "stop_spread_after",
            ],
        )?;
        let opt_time = |key: &str| -> Result<Option<TimeExpr>, SpecError> {
            match v.get(key) {
                Some(t) => Ok(Some(TimeExpr::from_value(t, &join(path, key))?)),
                None => Ok(None),
            }
        };
        Ok(RunSpec {
            horizon: req_time(v, path, "horizon")?,
            horizon_cfs: opt_time("horizon_cfs")?,
            horizon_ule: opt_time("horizon_ule")?,
            step: opt_time("step")?.unwrap_or_else(|| TimeExpr::fixed(0.1)),
            until_apps_done: get_bool(v, path, "until_apps_done")?.unwrap_or(true),
            stop_spread_le: get_u64(v, path, "stop_spread_le")?.map(|n| n as u32),
            stop_spread_after: opt_time("stop_spread_after")?,
        })
    }

    fn to_value(&self) -> Value {
        let mut f = vec![("horizon".to_string(), self.horizon.to_value())];
        if let Some(h) = &self.horizon_cfs {
            f.push(("horizon_cfs".to_string(), h.to_value()));
        }
        if let Some(h) = &self.horizon_ule {
            f.push(("horizon_ule".to_string(), h.to_value()));
        }
        if self.step != TimeExpr::fixed(0.1) {
            f.push(("step".to_string(), self.step.to_value()));
        }
        if !self.until_apps_done {
            f.push(("until_apps_done".to_string(), Value::Bool(false)));
        }
        if let Some(th) = self.stop_spread_le {
            f.push(("stop_spread_le".to_string(), Value::UInt(th as u64)));
        }
        if let Some(t) = &self.stop_spread_after {
            f.push(("stop_spread_after".to_string(), t.to_value()));
        }
        Value::Object(f)
    }
}

/// Counter names a [`CounterBound`] may reference.
pub const COUNTER_NAMES: [&str; 11] = [
    "ctx_switches",
    "preemptions",
    "wakeup_preemptions",
    "tick_preemptions",
    "wakeups",
    "migrations",
    "placement_scans",
    "spawns",
    "events",
    "spurious_wakes",
    "hotplug_events",
];

/// Latency-metric names a [`LatencyBound`] or [`RelationBound`] may use.
pub const METRIC_NAMES: [&str; 9] = [
    "run_delay_mean_ms",
    "run_delay_p50_ms",
    "run_delay_p99_ms",
    "run_delay_max_ms",
    "wakeup_mean_ms",
    "wakeup_p50_ms",
    "wakeup_p99_ms",
    "wakeup_max_ms",
    "max_runnable_wait_ms",
];

/// Bound on a kernel activity counter at end of run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterBound {
    /// Counter name (one of [`COUNTER_NAMES`]).
    pub counter: String,
    /// Which scheduler(s) the bound applies to.
    pub sched: SchedSel,
    /// Inclusive lower bound.
    pub min: Option<u64>,
    /// Inclusive upper bound.
    pub max: Option<u64>,
}

/// Bound on a latency metric at end of run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBound {
    /// Metric name (one of [`METRIC_NAMES`]).
    pub metric: String,
    /// Which scheduler(s) the bound applies to.
    pub sched: SchedSel,
    /// Inclusive lower bound, milliseconds.
    pub min_ms: Option<f64>,
    /// Inclusive upper bound, milliseconds.
    pub max_ms: Option<f64>,
}

/// Cross-scheduler relation: `left <cmp> factor * right` on a metric.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationBound {
    /// Metric name (one of [`METRIC_NAMES`]).
    pub metric: String,
    /// Left-hand scheduler.
    pub left: Sched,
    /// Right-hand scheduler.
    pub right: Sched,
    /// Comparison: `le`, `lt`, `ge` or `gt`.
    pub cmp: String,
    /// Multiplier applied to the right-hand side.
    pub factor: f64,
}

/// A pinned decision digest for one scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestPin {
    /// Scheduler the pin applies to.
    pub sched: Sched,
    /// Expected digest, 16 lowercase hex digits.
    pub value: u64,
}

/// End-of-run assertions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AssertSpec {
    /// Require `all_apps_done` to equal this at end of run.
    pub all_apps_done: Option<bool>,
    /// Counter bounds.
    pub counter: Vec<CounterBound>,
    /// Latency bounds.
    pub latency: Vec<LatencyBound>,
    /// Cross-scheduler relations.
    pub relation: Vec<RelationBound>,
    /// Digest pins.
    pub digest: Vec<DigestPin>,
}

fn check_name(name: &str, allowed: &[&str], path: &str) -> Result<(), SpecError> {
    if allowed.contains(&name) {
        Ok(())
    } else {
        Err(SpecError::new(
            path,
            format!(
                "unknown name `{name}` (expected one of: {})",
                allowed.join(", ")
            ),
        ))
    }
}

impl AssertSpec {
    fn from_value(v: &Value, path: &str) -> Result<AssertSpec, SpecError> {
        check_keys(
            v,
            path,
            &["all_apps_done", "counter", "latency", "relation", "digest"],
        )?;
        let mut spec = AssertSpec {
            all_apps_done: get_bool(v, path, "all_apps_done")?,
            ..AssertSpec::default()
        };
        for (i, b) in get_array(v, path, "counter")?.iter().enumerate() {
            let p = format!("{}[{i}]", join(path, "counter"));
            check_keys(b, &p, &["counter", "sched", "min", "max"])?;
            let counter = req_str(b, &p, "counter")?;
            check_name(&counter, &COUNTER_NAMES, &join(&p, "counter"))?;
            spec.counter.push(CounterBound {
                counter,
                sched: SchedSel::from_value(b, &p)?,
                min: get_u64(b, &p, "min")?,
                max: get_u64(b, &p, "max")?,
            });
        }
        for (i, b) in get_array(v, path, "latency")?.iter().enumerate() {
            let p = format!("{}[{i}]", join(path, "latency"));
            check_keys(b, &p, &["metric", "sched", "min_ms", "max_ms"])?;
            let metric = req_str(b, &p, "metric")?;
            check_name(&metric, &METRIC_NAMES, &join(&p, "metric"))?;
            spec.latency.push(LatencyBound {
                metric,
                sched: SchedSel::from_value(b, &p)?,
                min_ms: get_f64(b, &p, "min_ms")?,
                max_ms: get_f64(b, &p, "max_ms")?,
            });
        }
        for (i, b) in get_array(v, path, "relation")?.iter().enumerate() {
            let p = format!("{}[{i}]", join(path, "relation"));
            check_keys(b, &p, &["metric", "left", "right", "cmp", "factor"])?;
            let metric = req_str(b, &p, "metric")?;
            check_name(&metric, &METRIC_NAMES, &join(&p, "metric"))?;
            let cmp = req_str(b, &p, "cmp")?;
            if !matches!(cmp.as_str(), "le" | "lt" | "ge" | "gt") {
                return Err(SpecError::new(
                    join(&p, "cmp"),
                    format!("unknown comparison `{cmp}` (expected le, lt, ge or gt)"),
                ));
            }
            spec.relation.push(RelationBound {
                metric,
                left: parse_sched(&req_str(b, &p, "left")?, &join(&p, "left"))?,
                right: parse_sched(&req_str(b, &p, "right")?, &join(&p, "right"))?,
                cmp,
                factor: get_f64(b, &p, "factor")?.unwrap_or(1.0),
            });
        }
        for (i, b) in get_array(v, path, "digest")?.iter().enumerate() {
            let p = format!("{}[{i}]", join(path, "digest"));
            check_keys(b, &p, &["sched", "value"])?;
            let hex = req_str(b, &p, "value")?;
            let value = u64::from_str_radix(&hex, 16).map_err(|_| {
                SpecError::new(
                    join(&p, "value"),
                    "expected a hex digest like `3f2a…` (≤16 digits)",
                )
            })?;
            spec.digest.push(DigestPin {
                sched: parse_sched(&req_str(b, &p, "sched")?, &join(&p, "sched"))?,
                value,
            });
        }
        Ok(spec)
    }

    fn to_value(&self) -> Value {
        let mut f = Vec::new();
        if let Some(b) = self.all_apps_done {
            f.push(("all_apps_done".to_string(), Value::Bool(b)));
        }
        if !self.counter.is_empty() {
            f.push((
                "counter".to_string(),
                Value::Array(
                    self.counter
                        .iter()
                        .map(|b| {
                            let mut cf =
                                vec![("counter".to_string(), Value::Str(b.counter.clone()))];
                            cf.extend(b.sched.to_value());
                            if let Some(n) = b.min {
                                cf.push(("min".to_string(), Value::UInt(n)));
                            }
                            if let Some(n) = b.max {
                                cf.push(("max".to_string(), Value::UInt(n)));
                            }
                            Value::Object(cf)
                        })
                        .collect(),
                ),
            ));
        }
        if !self.latency.is_empty() {
            f.push((
                "latency".to_string(),
                Value::Array(
                    self.latency
                        .iter()
                        .map(|b| {
                            let mut lf = vec![("metric".to_string(), Value::Str(b.metric.clone()))];
                            lf.extend(b.sched.to_value());
                            if let Some(x) = b.min_ms {
                                lf.push(("min_ms".to_string(), Value::Float(x)));
                            }
                            if let Some(x) = b.max_ms {
                                lf.push(("max_ms".to_string(), Value::Float(x)));
                            }
                            Value::Object(lf)
                        })
                        .collect(),
                ),
            ));
        }
        if !self.relation.is_empty() {
            f.push((
                "relation".to_string(),
                Value::Array(
                    self.relation
                        .iter()
                        .map(|b| {
                            let mut rf = vec![
                                ("metric".to_string(), Value::Str(b.metric.clone())),
                                ("left".to_string(), Value::Str(sched_str(b.left).into())),
                                ("right".to_string(), Value::Str(sched_str(b.right).into())),
                                ("cmp".to_string(), Value::Str(b.cmp.clone())),
                            ];
                            if b.factor != 1.0 {
                                rf.push(("factor".to_string(), Value::Float(b.factor)));
                            }
                            Value::Object(rf)
                        })
                        .collect(),
                ),
            ));
        }
        if !self.digest.is_empty() {
            f.push((
                "digest".to_string(),
                Value::Array(
                    self.digest
                        .iter()
                        .map(|d| {
                            Value::Object(vec![
                                ("sched".to_string(), Value::Str(sched_str(d.sched).into())),
                                ("value".to_string(), Value::Str(format!("{:016x}", d.value))),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Value::Object(f)
    }

    fn is_default(&self) -> bool {
        *self == AssertSpec::default()
    }
}

/// SchedGuard supervision for a scenario run (the `[budget]` table).
///
/// Limits are absolute (they do **not** scale with `--scale`): a budget is
/// a guard rail on resource use, not part of the workload. A run that
/// exceeds one aborts with a salvaged partial result instead of wedging
/// the sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BudgetSpec {
    /// Maximum events processed.
    pub max_events: Option<u64>,
    /// Maximum simulated time, in seconds.
    pub max_sim_time_s: Option<f64>,
    /// Maximum live event-queue depth.
    pub max_queue_depth: Option<u64>,
    /// Maximum simultaneously live tasks.
    pub max_live_tasks: Option<u64>,
    /// Override the no-progress watchdog's stall threshold (consecutive
    /// events at one simulated instant).
    pub stall_events: Option<u64>,
    /// Override the ping-pong watchdog (no-progress migrations between
    /// one CPU pair).
    pub pingpong: Option<u64>,
}

impl BudgetSpec {
    fn from_value(v: &Value, path: &str) -> Result<BudgetSpec, SpecError> {
        check_keys(
            v,
            path,
            &[
                "max_events",
                "max_sim_time_s",
                "max_queue_depth",
                "max_live_tasks",
                "stall_events",
                "pingpong",
            ],
        )?;
        Ok(BudgetSpec {
            max_events: get_u64(v, path, "max_events")?,
            max_sim_time_s: get_f64(v, path, "max_sim_time_s")?,
            max_queue_depth: get_u64(v, path, "max_queue_depth")?,
            max_live_tasks: get_u64(v, path, "max_live_tasks")?,
            stall_events: get_u64(v, path, "stall_events")?,
            pingpong: get_u64(v, path, "pingpong")?,
        })
    }

    fn to_value(&self) -> Value {
        let mut f = Vec::new();
        if let Some(n) = self.max_events {
            f.push(("max_events".to_string(), Value::UInt(n)));
        }
        if let Some(s) = self.max_sim_time_s {
            f.push(("max_sim_time_s".to_string(), Value::Float(s)));
        }
        if let Some(n) = self.max_queue_depth {
            f.push(("max_queue_depth".to_string(), Value::UInt(n)));
        }
        if let Some(n) = self.max_live_tasks {
            f.push(("max_live_tasks".to_string(), Value::UInt(n)));
        }
        if let Some(n) = self.stall_events {
            f.push(("stall_events".to_string(), Value::UInt(n)));
        }
        if let Some(n) = self.pingpong {
            f.push(("pingpong".to_string(), Value::UInt(n)));
        }
        Value::Object(f)
    }

    fn is_default(&self) -> bool {
        *self == BudgetSpec::default()
    }

    /// The kernel-enforced ceilings of this spec.
    pub fn to_run_budget(&self) -> kernel::RunBudget {
        kernel::RunBudget {
            max_events: self.max_events,
            max_sim_time: self.max_sim_time_s.map(Dur::secs_f64),
            max_queue_depth: self.max_queue_depth.map(|n| n as usize),
            max_live_tasks: self.max_live_tasks.map(|n| n as usize),
        }
    }
}

/// A complete declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in report lines and crash labels).
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Schedulers to run (default: both).
    pub scheds: Vec<Sched>,
    /// Machine shape.
    pub topology: TopoSpec,
    /// Workload phases, queued in file order (order determines task and
    /// sync-object id assignment, which feeds the decision digest).
    pub phases: Vec<PhaseSpec>,
    /// Mid-run events.
    pub events: Vec<EventSpec>,
    /// Fault-injection plan.
    pub faults: FaultSpec,
    /// SchedGuard supervision (budget ceilings, watchdog overrides).
    pub budget: BudgetSpec,
    /// The run loop.
    pub run: RunSpec,
    /// End-of-run assertions.
    pub asserts: AssertSpec,
}

impl Scenario {
    /// Parse a TOML scenario document.
    pub fn from_toml(src: &str) -> Result<Scenario, ParseError> {
        let v = crate::toml::parse(src)?;
        Ok(Scenario::from_value(&v)?)
    }

    /// Parse a JSON scenario document (same schema as the TOML form).
    pub fn from_json(src: &str) -> Result<Scenario, ParseError> {
        let v = serde_json::from_str(src).map_err(|e| ParseError::Json(e.to_string()))?;
        Ok(Scenario::from_value(&v)?)
    }

    /// Build from an already-parsed value tree.
    pub fn from_value(v: &Value) -> Result<Scenario, SpecError> {
        check_keys(
            v,
            "",
            &[
                "name",
                "description",
                "scheds",
                "topology",
                "phase",
                "event",
                "faults",
                "budget",
                "run",
                "assert",
            ],
        )?;
        let scheds = {
            let items = get_array(v, "", "scheds")?;
            if items.is_empty() {
                Sched::BOTH.to_vec()
            } else {
                let mut out = Vec::with_capacity(items.len());
                for (i, s) in items.iter().enumerate() {
                    let p = format!("scheds[{i}]");
                    let name = s
                        .as_str()
                        .ok_or_else(|| SpecError::new(&p, "expected `cfs` or `ule`"))?;
                    out.push(parse_sched(name, &p)?);
                }
                out
            }
        };
        let topology = match v.get("topology") {
            Some(t) => TopoSpec::from_value(t, "topology")?,
            None => return Err(SpecError::new("topology", "missing required table")),
        };
        let phase_items = get_array(v, "", "phase")?;
        if phase_items.is_empty() {
            return Err(SpecError::new(
                "phase",
                "a scenario needs at least one [[phase]]",
            ));
        }
        let mut phases = Vec::with_capacity(phase_items.len());
        for (i, p) in phase_items.iter().enumerate() {
            phases.push(PhaseSpec::from_value(p, &format!("phase[{i}]"))?);
        }
        let mut events = Vec::new();
        for (i, e) in get_array(v, "", "event")?.iter().enumerate() {
            events.push(EventSpec::from_value(e, &format!("event[{i}]"))?);
        }
        for ev in &events {
            if !phases.iter().any(|p| p.name == ev.phase) {
                return Err(SpecError::new(
                    "event",
                    format!("event references unknown phase `{}`", ev.phase),
                ));
            }
        }
        let run = match v.get("run") {
            Some(r) => RunSpec::from_value(r, "run")?,
            None => {
                return Err(SpecError::new(
                    "run",
                    "missing required table (needs `horizon`)",
                ))
            }
        };
        Ok(Scenario {
            name: req_str(v, "", "name")?,
            description: get_str(v, "", "description")?.unwrap_or_default(),
            scheds,
            topology,
            phases,
            events,
            faults: match v.get("faults") {
                Some(fv) => FaultSpec::from_value(fv, "faults")?,
                None => FaultSpec::default(),
            },
            budget: match v.get("budget") {
                Some(b) => BudgetSpec::from_value(b, "budget")?,
                None => BudgetSpec::default(),
            },
            run,
            asserts: match v.get("assert") {
                Some(a) => AssertSpec::from_value(a, "assert")?,
                None => AssertSpec::default(),
            },
        })
    }

    /// Serialize back to a value tree that [`Scenario::from_value`]
    /// round-trips (via `serde_json::to_string` for the JSON form).
    pub fn to_value(&self) -> Value {
        let mut f = vec![("name".to_string(), Value::Str(self.name.clone()))];
        if !self.description.is_empty() {
            f.push((
                "description".to_string(),
                Value::Str(self.description.clone()),
            ));
        }
        if self.scheds != Sched::BOTH {
            f.push((
                "scheds".to_string(),
                Value::Array(
                    self.scheds
                        .iter()
                        .map(|&s| Value::Str(sched_str(s).into()))
                        .collect(),
                ),
            ));
        }
        f.push(("topology".to_string(), self.topology.to_value()));
        f.push((
            "phase".to_string(),
            Value::Array(self.phases.iter().map(|p| p.to_value()).collect()),
        ));
        if !self.events.is_empty() {
            f.push((
                "event".to_string(),
                Value::Array(self.events.iter().map(|e| e.to_value()).collect()),
            ));
        }
        if !self.faults.is_default() {
            f.push(("faults".to_string(), self.faults.to_value()));
        }
        if !self.budget.is_default() {
            f.push(("budget".to_string(), self.budget.to_value()));
        }
        f.push(("run".to_string(), self.run.to_value()));
        if !self.asserts.is_default() {
            f.push(("assert".to_string(), self.asserts.to_value()));
        }
        Value::Object(f)
    }
}
