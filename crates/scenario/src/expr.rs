//! Scale-aware time and count expressions.
//!
//! Every figure formula in `experiments` is some affine function of the
//! run's `scale` with clamps: `Dur::secs_f64(420.0 * scale + 30.0)`,
//! `Dur::secs_f64(14.5 * scale.max(0.05))`, `((512.0 * scale) as usize)
//! .max(2 * ncpu)`. [`TimeExpr`] and [`CountExpr`] capture exactly that
//! family so scenario files reproduce the hardcoded figures bit-for-bit at
//! any scale.
//!
//! In TOML a plain number is shorthand for a scaled base:
//! `horizon = 220.0` with `scaled = false` spelled out, or the table form
//! `horizon = { base_s = 420, plus_s = 30 }`.

use serde::Value;
use simcore::Dur;

use crate::spec::{check_keys, get_bool, get_f64, get_u64, SpecError};

/// A duration expression: `max((scaled? base_s * clamp(scale) : base_s) + plus_s, min_s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeExpr {
    /// Base duration in (scaled) seconds.
    pub base_s: f64,
    /// Whether `base_s` is multiplied by the run scale (default true).
    pub scaled: bool,
    /// Lower clamp applied to the scale factor before multiplying.
    pub scale_min: f64,
    /// Upper clamp applied to the scale factor before multiplying.
    pub scale_max: f64,
    /// Unscaled seconds added after scaling.
    pub plus_s: f64,
    /// Floor on the final result, in seconds.
    pub min_s: f64,
}

impl TimeExpr {
    /// A fixed (never scaled) duration.
    pub fn fixed(secs: f64) -> TimeExpr {
        TimeExpr {
            base_s: secs,
            scaled: false,
            ..TimeExpr::default()
        }
    }

    /// A plain scaled duration (`base_s * scale`).
    pub fn scaled(secs: f64) -> TimeExpr {
        TimeExpr {
            base_s: secs,
            ..TimeExpr::default()
        }
    }

    /// Evaluate at a scale, producing a simulator duration.
    pub fn eval(&self, scale: f64) -> Dur {
        let base = if self.scaled {
            self.base_s * scale.clamp(self.scale_min, self.scale_max)
        } else {
            self.base_s
        };
        Dur::secs_f64((base + self.plus_s).max(self.min_s))
    }

    /// Parse from a scenario value: a bare number (scaled shorthand) or a
    /// table with any of `base_s`, `scaled`, `scale_min`, `scale_max`,
    /// `plus_s`, `min_s`.
    pub fn from_value(v: &Value, path: &str) -> Result<TimeExpr, SpecError> {
        match v {
            Value::Object(_) => {
                check_keys(
                    v,
                    path,
                    &[
                        "base_s",
                        "scaled",
                        "scale_min",
                        "scale_max",
                        "plus_s",
                        "min_s",
                    ],
                )?;
                let d = TimeExpr::default();
                Ok(TimeExpr {
                    base_s: get_f64(v, path, "base_s")?.unwrap_or(0.0),
                    scaled: get_bool(v, path, "scaled")?.unwrap_or(d.scaled),
                    scale_min: get_f64(v, path, "scale_min")?.unwrap_or(d.scale_min),
                    scale_max: get_f64(v, path, "scale_max")?.unwrap_or(d.scale_max),
                    plus_s: get_f64(v, path, "plus_s")?.unwrap_or(d.plus_s),
                    min_s: get_f64(v, path, "min_s")?.unwrap_or(d.min_s),
                })
            }
            _ => match v.as_f64() {
                Some(secs) => Ok(TimeExpr::scaled(secs)),
                None => Err(SpecError::new(
                    path,
                    "expected a number of (scaled) seconds or a time table",
                )),
            },
        }
    }

    /// Serialize back to the most compact form that round-trips.
    pub fn to_value(&self) -> Value {
        let d = TimeExpr::default();
        if self.scaled
            && self.scale_min == d.scale_min
            && self.scale_max == d.scale_max
            && self.plus_s == d.plus_s
            && self.min_s == d.min_s
        {
            return Value::Float(self.base_s);
        }
        let mut fields = vec![("base_s".to_string(), Value::Float(self.base_s))];
        if self.scaled != d.scaled {
            fields.push(("scaled".to_string(), Value::Bool(self.scaled)));
        }
        if self.scale_min != d.scale_min {
            fields.push(("scale_min".to_string(), Value::Float(self.scale_min)));
        }
        if self.scale_max != d.scale_max {
            fields.push(("scale_max".to_string(), Value::Float(self.scale_max)));
        }
        if self.plus_s != d.plus_s {
            fields.push(("plus_s".to_string(), Value::Float(self.plus_s)));
        }
        if self.min_s != d.min_s {
            fields.push(("min_s".to_string(), Value::Float(self.min_s)));
        }
        Value::Object(fields)
    }
}

impl Default for TimeExpr {
    fn default() -> Self {
        TimeExpr {
            base_s: 0.0,
            scaled: true,
            scale_min: 0.0,
            scale_max: f64::INFINITY,
            plus_s: 0.0,
            min_s: 0.0,
        }
    }
}

/// A count expression: `clamp(round(scaled? base * scale : base), floors, max)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountExpr {
    /// Base count (at scale 1.0 when scaled).
    pub base: u64,
    /// Whether `base` is multiplied by the run scale.
    pub scaled: bool,
    /// Absolute floor on the result.
    pub min: u64,
    /// Floor expressed per CPU of the run topology (`min_per_cpu * ncpu`).
    pub min_per_cpu: u64,
    /// Optional absolute cap.
    pub max: Option<u64>,
}

impl CountExpr {
    /// A fixed (never scaled) count.
    pub fn fixed(n: u64) -> CountExpr {
        CountExpr {
            base: n,
            scaled: false,
            min: 0,
            min_per_cpu: 0,
            max: None,
        }
    }

    /// Evaluate at a scale on a machine with `ncpu` CPUs.
    pub fn eval(&self, scale: f64, ncpu: usize) -> u64 {
        let n = if self.scaled {
            (self.base as f64 * scale).round() as u64
        } else {
            self.base
        };
        let n = n.max(self.min).max(self.min_per_cpu * ncpu as u64);
        match self.max {
            Some(cap) => n.min(cap),
            None => n,
        }
    }

    /// Parse from a scenario value: a bare integer (fixed shorthand) or a
    /// table `{ base, scaled?, min?, min_per_cpu?, max? }` (scaled by
    /// default, floor 1).
    pub fn from_value(v: &Value, path: &str) -> Result<CountExpr, SpecError> {
        match v {
            Value::Object(_) => {
                check_keys(v, path, &["base", "scaled", "min", "min_per_cpu", "max"])?;
                let base = get_u64(v, path, "base")?
                    .ok_or_else(|| SpecError::new(path, "count table needs a `base` field"))?;
                Ok(CountExpr {
                    base,
                    scaled: get_bool(v, path, "scaled")?.unwrap_or(true),
                    min: get_u64(v, path, "min")?.unwrap_or(1),
                    min_per_cpu: get_u64(v, path, "min_per_cpu")?.unwrap_or(0),
                    max: get_u64(v, path, "max")?,
                })
            }
            _ => match v.as_u64() {
                Some(n) => Ok(CountExpr::fixed(n)),
                None => Err(SpecError::new(
                    path,
                    "expected a non-negative integer or a count table",
                )),
            },
        }
    }

    /// Serialize back to the most compact form that round-trips.
    pub fn to_value(&self) -> Value {
        if !self.scaled && self.min == 0 && self.min_per_cpu == 0 && self.max.is_none() {
            return Value::UInt(self.base);
        }
        let mut fields = vec![("base".to_string(), Value::UInt(self.base))];
        if !self.scaled {
            fields.push(("scaled".to_string(), Value::Bool(false)));
        }
        if self.min != 1 {
            fields.push(("min".to_string(), Value::UInt(self.min)));
        }
        if self.min_per_cpu != 0 {
            fields.push(("min_per_cpu".to_string(), Value::UInt(self.min_per_cpu)));
        }
        if let Some(cap) = self.max {
            fields.push(("max".to_string(), Value::UInt(cap)));
        }
        Value::Object(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(src: &str) -> TimeExpr {
        let v = crate::toml::parse(&format!("x = {src}\n")).unwrap();
        TimeExpr::from_value(v.get("x").unwrap(), "x").unwrap()
    }

    fn c(src: &str) -> CountExpr {
        let v = crate::toml::parse(&format!("x = {src}\n")).unwrap();
        CountExpr::from_value(v.get("x").unwrap(), "x").unwrap()
    }

    #[test]
    fn time_matches_figure_formulas() {
        // fig1 horizon: 420*scale + 30.
        let h = t("{ base_s = 420.0, plus_s = 30.0 }");
        assert_eq!(h.eval(0.05), Dur::secs_f64(420.0 * 0.05 + 30.0));
        // fig1 step: max(1*scale, 0.05).
        let s = t("{ base_s = 1.0, min_s = 0.05 }");
        assert_eq!(s.eval(0.01), Dur::secs_f64(0.05));
        assert_eq!(s.eval(0.5), Dur::secs_f64(0.5));
        // fig6 unpin: 14.5 * scale.max(0.05).
        let u = t("{ base_s = 14.5, scale_min = 0.05 }");
        assert_eq!(u.eval(0.02), Dur::secs_f64(14.5 * 0.05));
        // fig7 work: 6 * scale.clamp(0.3, 1.0).
        let w = t("{ base_s = 6.0, scale_min = 0.3, scale_max = 1.0 }");
        assert_eq!(w.eval(2.0), Dur::secs_f64(6.0));
        assert_eq!(w.eval(0.05), Dur::secs_f64(6.0 * 0.3));
        // Fixed horizons ignore the scale.
        let f = t("{ base_s = 220.0, scaled = false }");
        assert_eq!(f.eval(0.01), Dur::secs_f64(220.0));
        // Bare-number shorthand scales.
        assert_eq!(t("160.0").eval(0.5), Dur::secs_f64(80.0));
    }

    #[test]
    fn count_matches_figure_formulas() {
        // fig6 threads: max(round(512*scale), 2*ncpu).
        let n = c("{ base = 512, min_per_cpu = 2 }");
        assert_eq!(n.eval(0.02, 32), 64);
        assert_eq!(n.eval(1.0, 32), 512);
        // fig1 sysbench tx: max(round(260000*scale), 500).
        let tx = c("{ base = 260000, min = 500 }");
        assert_eq!(tx.eval(0.001, 1), 500);
        assert_eq!(tx.eval(0.05, 1), 13000);
        // Bare integer is fixed.
        assert_eq!(c("80").eval(0.01, 32), 80);
    }

    #[test]
    fn round_trip_compact_forms() {
        for src in [
            "160.0",
            "{ base_s = 14.5, scale_min = 0.05 }",
            "{ base_s = 220.0, scaled = false }",
        ] {
            let e = t(src);
            assert_eq!(TimeExpr::from_value(&e.to_value(), "x").unwrap(), e);
        }
        for src in [
            "512",
            "{ base = 512, min_per_cpu = 2 }",
            "{ base = 260000, min = 500 }",
        ] {
            let e = c(src);
            assert_eq!(CountExpr::from_value(&e.to_value(), "x").unwrap(), e);
        }
    }

    #[test]
    fn unknown_key_rejected() {
        let v = crate::toml::parse("x = { base_s = 1.0, bogus = 2 }\n").unwrap();
        let e = TimeExpr::from_value(v.get("x").unwrap(), "run.horizon").unwrap_err();
        assert!(e.to_string().contains("run.horizon"), "{e}");
        assert!(e.to_string().contains("bogus"), "{e}");
    }
}
