//! Lower a [`WorkloadSpec`] into a kernel [`AppSpec`].
//!
//! Builders that mirror a hardcoded figure replicate that figure's
//! construction *exactly* (thread order, sync-object creation order,
//! chunk sizes, pins) so the scenario run's decision digest matches the
//! figure's byte-for-byte. Thread and app *names* are free — they never
//! enter the digest — but ids do, so everything here builds in file
//! order.

use kernel::{cpu_hog, from_fn, spinner, Action, AppSpec, Kernel, ThreadSpec};
use simcore::Dur;
use topology::CpuId;
use workloads::phoronix::{cray, CrayCfg};
use workloads::synthetic;
use workloads::sysbench::{sysbench, SysbenchCfg};

use crate::spec::{SpecError, WorkloadSpec};

fn dur_ms(ms: f64) -> Dur {
    Dur::secs_f64(ms / 1000.0)
}

fn dur_us(us: f64) -> Dur {
    Dur::secs_f64(us / 1_000_000.0)
}

/// Build the app for one phase. `phase_name` becomes the app name (except
/// for suite entries, which keep their catalog name so per-app reports
/// match the figures). Sync objects are created on `k` in spec order.
pub fn build(
    k: &mut Kernel,
    spec: &WorkloadSpec,
    phase_name: &str,
    scale: f64,
    ncpu: usize,
) -> Result<AppSpec, SpecError> {
    match spec {
        WorkloadSpec::Spinners {
            count,
            pin,
            chunk_ms,
            daemon,
        } => {
            let n = count.eval(scale, ncpu) as usize;
            let pins: Vec<CpuId> = pin.iter().map(|&c| CpuId(c)).collect();
            let app = AppSpec::new(
                phase_name,
                (0..n)
                    .map(|i| {
                        ThreadSpec::new(format!("spin{i}"), spinner(dur_ms(*chunk_ms)))
                            .pinned(pins.clone())
                    })
                    .collect(),
            );
            Ok(if *daemon { app.daemon() } else { app })
        }
        WorkloadSpec::Fibo { work } => Ok(synthetic::fibo(work.eval(scale))),
        WorkloadSpec::CpuHogs {
            count,
            work,
            chunk_ms,
            nice,
            pin,
        } => {
            let n = count.eval(scale, ncpu) as usize;
            let w = work.eval(scale);
            let pins: Option<Vec<CpuId>> =
                pin.as_ref().map(|p| p.iter().map(|&c| CpuId(c)).collect());
            Ok(AppSpec::new(
                phase_name,
                (0..n)
                    .map(|i| {
                        let mut t =
                            ThreadSpec::new(format!("hog{i}"), cpu_hog(w, dur_ms(*chunk_ms)))
                                .nice(*nice as i32);
                        if let Some(p) = &pins {
                            t = t.pinned(p.clone());
                        }
                        t
                    })
                    .collect(),
            ))
        }
        WorkloadSpec::Sysbench { threads, total_tx } => Ok(sysbench(
            k,
            SysbenchCfg {
                threads: threads.eval(scale, ncpu) as usize,
                total_tx: total_tx.eval(scale, ncpu),
                ..SysbenchCfg::default()
            },
        )),
        WorkloadSpec::Cray { threads, work } => Ok(cray(
            k,
            CrayCfg {
                threads: threads.eval(scale, ncpu) as usize,
                work: work.eval(scale),
                ..CrayCfg::default()
            },
        )),
        WorkloadSpec::Hackbench { groups, msgs } => Ok(synthetic::hackbench(
            k,
            groups.eval(scale, ncpu) as usize,
            msgs.eval(scale, ncpu),
        )),
        WorkloadSpec::Suite { entry } => {
            let suite = workloads::suite();
            let e = suite.iter().find(|e| e.name == *entry).ok_or_else(|| {
                SpecError::new(
                    "phase",
                    format!("unknown suite entry `{entry}` (see `workloads::suite()`)"),
                )
            })?;
            Ok((e.build)(k, &workloads::P::scaled(ncpu, scale)))
        }
        WorkloadSpec::ForkJoin {
            workers,
            rounds,
            work_ms,
        } => {
            let n = (workers.eval(scale, ncpu) as usize).max(1);
            let r = rounds.eval(scale, ncpu);
            let w = dur_ms(*work_ms);
            let barrier = k.new_barrier(n);
            Ok(AppSpec::new(
                phase_name,
                (0..n)
                    .map(|i| {
                        ThreadSpec::new(
                            format!("fj{i}"),
                            from_fn({
                                let mut round = 0u64;
                                // Per round: Run(w), BarrierWait, CountOps.
                                let mut step = 0u8;
                                move |_ctx| loop {
                                    match step {
                                        0 => {
                                            if round == r {
                                                return Action::Exit;
                                            }
                                            step = 1;
                                            if !w.is_zero() {
                                                return Action::Run(w);
                                            }
                                        }
                                        1 => {
                                            step = 2;
                                            return Action::BarrierWait(barrier);
                                        }
                                        _ => {
                                            step = 0;
                                            round += 1;
                                            return Action::CountOps(1);
                                        }
                                    }
                                }
                            }),
                        )
                    })
                    .collect(),
            ))
        }
        WorkloadSpec::ClientServer {
            clients,
            servers,
            rounds,
            burst,
            service_us,
            think_ms,
        } => {
            let nc = (clients.eval(scale, ncpu) as usize).max(1);
            let ns = (servers.eval(scale, ncpu) as usize).max(1);
            let r = rounds.eval(scale, ncpu).max(1);
            let burst = *burst;
            let service = dur_us(*service_us);
            let think = dur_ms(*think_ms);
            // Request queue sized so no client ever blocks on put mid-burst
            // while every server sleeps in get: the run stays deadlock-free
            // for any thread/queue interleaving.
            let rq = k.new_queue(nc * burst as usize + ns + 1);
            let replies: Vec<_> = (0..nc).map(|_| k.new_queue(burst as usize + 1)).collect();
            let total = nc as u64 * r * burst;
            let mut threads = Vec::with_capacity(nc + ns);
            for (c, &reply) in replies.iter().enumerate() {
                threads.push(ThreadSpec::new(
                    format!("client{c}"),
                    from_fn({
                        let mut round = 0u64;
                        let mut sent = 0u64;
                        let mut got = 0u64;
                        let mut start = simcore::Time::ZERO;
                        // Per round: burst puts, burst gets, CountOps,
                        // RecordLatency, think sleep.
                        let mut step = 0u8;
                        move |ctx| loop {
                            match step {
                                0 => {
                                    if round == r {
                                        return Action::Exit;
                                    }
                                    start = ctx.now;
                                    sent = 0;
                                    got = 0;
                                    step = 1;
                                }
                                1 => {
                                    if sent < burst {
                                        sent += 1;
                                        return Action::QueuePut(rq, c as u64);
                                    }
                                    step = 2;
                                }
                                2 => {
                                    if got < burst {
                                        got += 1;
                                        return Action::QueueGet(reply);
                                    }
                                    step = 3;
                                }
                                3 => {
                                    step = 4;
                                    return Action::CountOps(burst);
                                }
                                4 => {
                                    step = 5;
                                    return Action::RecordLatency(ctx.now.saturating_since(start));
                                }
                                _ => {
                                    step = 0;
                                    round += 1;
                                    if !think.is_zero() {
                                        return Action::Sleep(think);
                                    }
                                }
                            }
                        }
                    }),
                ));
            }
            let per = total / ns as u64;
            let rem = total % ns as u64;
            for s in 0..ns {
                let quota = per + u64::from((s as u64) < rem);
                let replies = replies.clone();
                threads.push(ThreadSpec::new(
                    format!("server{s}"),
                    from_fn({
                        let mut served = 0u64;
                        let mut client = 0usize;
                        // Per request: get, service, reply. The queued
                        // value (the client id) is only available on the
                        // first call after the get completes.
                        let mut step = 0u8;
                        move |ctx| loop {
                            match step {
                                0 => {
                                    if served == quota {
                                        return Action::Exit;
                                    }
                                    step = 1;
                                    return Action::QueueGet(rq);
                                }
                                1 => {
                                    client = ctx.value.unwrap_or(0) as usize % replies.len();
                                    step = 2;
                                    if !service.is_zero() {
                                        return Action::Run(service);
                                    }
                                }
                                _ => {
                                    step = 0;
                                    served += 1;
                                    return Action::QueuePut(replies[client], 1);
                                }
                            }
                        }
                    }),
                ));
            }
            Ok(AppSpec::new(phase_name, threads))
        }
        WorkloadSpec::Herd {
            waiters,
            rounds,
            work_us,
            pause_ms,
        } => {
            let n = (waiters.eval(scale, ncpu) as usize).max(1);
            let r = rounds.eval(scale, ncpu).max(1);
            let work = dur_us(*work_us);
            let pause = dur_ms(*pause_ms);
            let gate = k.new_sem(0);
            let mut threads = Vec::with_capacity(n + 1);
            threads.push(ThreadSpec::new(
                "waker",
                from_fn({
                    let mut round = 0u64;
                    let mut posted = 0usize;
                    move |_ctx| {
                        if round == r {
                            return Action::Exit;
                        }
                        if posted < n {
                            posted += 1;
                            return Action::SemPost(gate);
                        }
                        posted = 0;
                        round += 1;
                        if pause.is_zero() {
                            Action::Yield
                        } else {
                            Action::Sleep(pause)
                        }
                    }
                }),
            ));
            for i in 0..n {
                threads.push(ThreadSpec::new(
                    format!("herd{i}"),
                    from_fn({
                        let mut round = 0u64;
                        // Per round: SemWait, Run(work), CountOps.
                        let mut step = 0u8;
                        move |_ctx| loop {
                            match step {
                                0 => {
                                    if round == r {
                                        return Action::Exit;
                                    }
                                    step = 1;
                                    return Action::SemWait(gate);
                                }
                                1 => {
                                    step = 2;
                                    if !work.is_zero() {
                                        return Action::Run(work);
                                    }
                                }
                                _ => {
                                    step = 0;
                                    round += 1;
                                    return Action::CountOps(1);
                                }
                            }
                        }
                    }),
                ));
            }
            Ok(AppSpec::new(phase_name, threads))
        }
        WorkloadSpec::MutexMix { threads: specs } => {
            let lock = k.new_mutex();
            let mut threads = Vec::with_capacity(specs.len());
            for t in specs {
                let iters = t.iters.eval(scale, ncpu);
                let hold = dur_ms(t.hold_ms);
                let work = dur_ms(t.work_ms);
                let sleep = t.sleep_ms.map(dur_ms);
                let takes_lock = t.lock;
                threads.push(
                    ThreadSpec::new(
                        t.name.clone(),
                        from_fn({
                            let mut i = 0u64;
                            // Step machine: 0 lock, 1 hold, 2 unlock,
                            // 3 work, 4 sleep, 5 count.
                            let mut step = 0u8;
                            move |_ctx| loop {
                                match step {
                                    0 => {
                                        if i == iters {
                                            return Action::Exit;
                                        }
                                        step = 1;
                                        if takes_lock {
                                            return Action::MutexLock(lock);
                                        }
                                    }
                                    1 => {
                                        step = 2;
                                        if takes_lock && !hold.is_zero() {
                                            return Action::Run(hold);
                                        }
                                    }
                                    2 => {
                                        step = 3;
                                        if takes_lock {
                                            return Action::MutexUnlock(lock);
                                        }
                                    }
                                    3 => {
                                        step = 4;
                                        if !work.is_zero() {
                                            return Action::Run(work);
                                        }
                                    }
                                    4 => {
                                        step = 5;
                                        if let Some(s) = sleep {
                                            if !s.is_zero() {
                                                return Action::Sleep(s);
                                            }
                                        }
                                    }
                                    _ => {
                                        step = 0;
                                        i += 1;
                                        return Action::CountOps(1);
                                    }
                                }
                            }
                        }),
                    )
                    .nice(t.nice as i32),
                );
            }
            Ok(AppSpec::new(phase_name, threads))
        }
    }
}
