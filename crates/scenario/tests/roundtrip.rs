//! Scenario spec round-trips and parse diagnostics.
//!
//! The contract the golden gate relies on: parse → serialize → parse is
//! the identity (so scenarios can be stored in either TOML or JSON form),
//! unknown keys are rejected instead of silently ignored, and errors name
//! the offending field with its line or path.

use scenario::{EngineOpts, Scenario, Sched};

/// A scenario touching every workload kind, events, faults and all four
/// assertion families.
const KITCHEN_SINK: &str = r#"
name = "kitchen-sink"
description = "every feature at once"
scheds = ["ule"]

[topology]
nodes = 2
llcs_per_node = 1
cores_per_llc = 2
smt_per_core = 2

[faults]
spurious_wake_ms = 50.0
tick_jitter_us = 100.0
missed_tick_pct = 10
hotplug_period_s = 2.0
hotplug_down_ms = 250.0

[[phase]]
name = "spin"
kind = "spinners"
count = { base = 8, min_per_cpu = 1 }
pin = [0, 1]
chunk_ms = 2.0
daemon = false

[[phase]]
kind = "fibo"
work = 10.0

[[phase]]
name = "hogs"
kind = "cpu-hogs"
at = 0.5
count = 4
work = { base_s = 1.0, min_s = 0.1 }
nice = 5
pin = [2]

[[phase]]
kind = "sysbench"
threads = 8
total_tx = { base = 1000, min = 50 }

[[phase]]
kind = "cray"
threads = 16
work = { base_s = 2.0, scale_min = 0.3, scale_max = 1.0 }

[[phase]]
kind = "hackbench"
groups = 1
msgs = 10

[[phase]]
kind = "fork-join"
workers = 4
rounds = { base = 20, min = 2 }
work_ms = 0.5

[[phase]]
kind = "client-server"
clients = 4
servers = 2
rounds = 10
burst = 2
service_us = 100.0
think_ms = 1.0

[[phase]]
kind = "herd"
waiters = 8
rounds = 5
work_us = 200.0
pause_ms = 2.0

[[phase]]
name = "locks"
kind = "mutex-mix"

[[phase.threads]]
name = "holder"
nice = 10
iters = 10
hold_ms = 2.0
sleep_ms = 0.5

[[phase.threads]]
name = "spinner"
iters = 10
lock = false
work_ms = 1.0

[[event]]
kind = "unpin"
phase = "spin"
at = { base_s = 1.0, min_s = 0.2 }

[budget]
max_events = 5000000
max_sim_time_s = 120.0
max_queue_depth = 100000
max_live_tasks = 4096
stall_events = 50000
pingpong = 5000

[run]
horizon = { base_s = 30.0, plus_s = 5.0 }
horizon_ule = { base_s = 60.0, plus_s = 5.0 }
step = { base_s = 0.05, scaled = false }
until_apps_done = false
stop_spread_le = 2
stop_spread_after = 1.5

[assert]
all_apps_done = false

[[assert.counter]]
counter = "ctx_switches"
sched = "ule"
min = 1
max = 1000000

[[assert.latency]]
metric = "run_delay_p99_ms"
max_ms = 10000.0

[[assert.relation]]
metric = "wakeup_p99_ms"
left = "cfs"
right = "ule"
cmp = "le"
factor = 4.0

[[assert.digest]]
sched = "ule"
value = "0123456789abcdef"
"#;

#[test]
fn toml_json_toml_round_trip_is_identity() {
    let sc = Scenario::from_toml(KITCHEN_SINK).expect("kitchen sink parses");
    let json = serde_json::to_string_pretty(&sc.to_value()).expect("serializable");
    let back = Scenario::from_json(&json).expect("serialized form re-parses");
    assert_eq!(sc, back, "parse → serialize → parse must be the identity");
    // And once more through the value tree, for the in-memory path.
    let again = Scenario::from_value(&back.to_value()).expect("value round-trip");
    assert_eq!(sc, again);
}

#[test]
fn unknown_keys_are_rejected_with_field_path() {
    let src = r#"
name = "x"
[topology]
preset = "single-core"
[[phase]]
kind = "fibo"
work = 1.0
frobnicate = 3
[run]
horizon = 1.0
"#;
    let err = Scenario::from_toml(src).expect_err("unknown key must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("frobnicate") && msg.contains("phase[0]"),
        "error should name the key and its path: {msg}"
    );
}

#[test]
fn toml_errors_carry_line_numbers() {
    let src = "name = \"x\"\nbad line without equals\n";
    let err = Scenario::from_toml(src).expect_err("syntax error must fail");
    assert!(
        err.to_string().contains("line 2"),
        "syntax errors should name the line: {err}"
    );
}

#[test]
fn missing_required_fields_are_named() {
    let no_run = r#"
name = "x"
[topology]
preset = "single-core"
[[phase]]
kind = "fibo"
work = 1.0
"#;
    let err = Scenario::from_toml(no_run).expect_err("missing [run] must fail");
    assert!(err.to_string().contains("run"), "{err}");

    let no_phase = r#"
name = "x"
[topology]
preset = "single-core"
[run]
horizon = 1.0
"#;
    let err = Scenario::from_toml(no_phase).expect_err("missing phases must fail");
    assert!(err.to_string().contains("phase"), "{err}");
}

#[test]
fn bad_names_are_rejected() {
    let bad_counter = r#"
name = "x"
[topology]
preset = "single-core"
[[phase]]
kind = "fibo"
work = 1.0
[run]
horizon = 1.0
[[assert.counter]]
counter = "not_a_counter"
min = 1
"#;
    let err = Scenario::from_toml(bad_counter).expect_err("bad counter name");
    assert!(err.to_string().contains("not_a_counter"), "{err}");

    let bad_event = r#"
name = "x"
[topology]
preset = "single-core"
[[phase]]
kind = "fibo"
work = 1.0
[[event]]
kind = "unpin"
phase = "nope"
at = 1.0
[run]
horizon = 1.0
"#;
    let err = Scenario::from_toml(bad_event).expect_err("unknown event phase");
    assert!(err.to_string().contains("nope"), "{err}");
}

#[test]
fn budget_killed_run_salvages_a_deterministic_partial_result() {
    let src = r#"
name = "budgeted"
[topology]
preset = "flat-4"
[[phase]]
kind = "cpu-hogs"
count = { base = 6, min = 6 }
work = { base_s = 0.5, scaled = false }
[budget]
max_events = 2000
[run]
horizon = { base_s = 5.0, scaled = false }
"#;
    let sc = Scenario::from_toml(src).unwrap();
    let opts = EngineOpts::default();
    let a = scenario::run_sched(&sc, Sched::Cfs, &opts).expect("salvaged, not crashed");
    assert!(a.run.partial, "budget must have tripped");
    assert_eq!(a.run.abort_kind, Some(scenario::AbortKind::Budget));
    assert!(a.run.abort.as_deref().unwrap().contains("budget exceeded"));
    assert!(!a.run.all_apps_done);
    assert!(a.run.counters.events >= 2000);
    // The abort point is deterministic, so the partial digest is too.
    let b = scenario::run_sched(&sc, Sched::Cfs, &opts).expect("salvaged");
    assert_eq!(a.run.digest, b.run.digest);
    assert_eq!(a.run.counters.events, b.run.counters.events);
    // Partial runs are excluded from assertion judgement.
    assert!(scenario::failures(&sc, std::slice::from_ref(&a.run)).is_empty());
}

#[test]
fn engine_runs_are_deterministic() {
    let src = r#"
name = "det"
[topology]
preset = "flat-4"
[[phase]]
kind = "cpu-hogs"
count = { base = 6, min = 6 }
work = { base_s = 0.2, scaled = false }
[run]
horizon = { base_s = 5.0, scaled = false }
"#;
    let sc = Scenario::from_toml(src).unwrap();
    let opts = EngineOpts::default();
    for &sched in &Sched::BOTH {
        let a = scenario::run_sched(&sc, sched, &opts).expect("runs");
        let b = scenario::run_sched(&sc, sched, &opts).expect("runs");
        assert_eq!(
            a.run.digest, b.run.digest,
            "{:?}: same scenario + seed must reproduce the digest",
            sched
        );
        assert!(a.run.all_apps_done, "{:?}: hogs must finish", sched);
    }
    // Different seeds must (for this contended mix) explore different
    // schedules — the digest is sensitive, not constant.
    let other = scenario::run_sched(
        &sc,
        Sched::Cfs,
        &EngineOpts {
            seed: 7,
            ..EngineOpts::default()
        },
    )
    .expect("runs");
    let base = scenario::run_sched(&sc, Sched::Cfs, &opts).expect("runs");
    assert_ne!(
        other.run.seed, base.run.seed,
        "sanity: the two runs used different seeds"
    );
}
