//! Vendored minimal stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion's surface its benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` and `finish`), [`Bencher::iter`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is simple wall-clock timing: one calibration run sizes an
//! iteration batch to a small time budget, the batch is timed, and the
//! mean ns/iter is printed. No statistics, plots, or saved baselines —
//! good enough to compare hot paths before and after a change.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point.
pub struct Criterion {
    /// Target measurement time per benchmark.
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_bench(&name.into(), self.budget, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the vendored harness sizes its
    /// iteration batch from the time budget instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.criterion.budget, f);
        self
    }

    /// Finish the group.
    pub fn finish(self) {}
}

/// Times a routine inside a benchmark closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `routine`, running it enough times to fill the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        let first = start.elapsed();
        if first >= self.budget {
            self.iters = 1;
            self.elapsed = first;
            return;
        }
        let per = first.max(Duration::from_nanos(20)).as_nanos();
        let iters = (self.budget.as_nanos() / per).clamp(1, 100_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, mut f: F) {
    let mut b = Bencher {
        budget,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters > 0 {
        let per = b.elapsed.as_nanos() as f64 / b.iters as f64;
        println!("bench: {name:<45} {per:>14.1} ns/iter  ({} iters)", b.iters);
    } else {
        println!("bench: {name:<45} (routine never called Bencher::iter)");
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(2),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
