//! Named time series of sampled values.

use serde::Serialize;
use simcore::Time;

/// One named series of `(time, value)` samples.
#[derive(Debug, Clone, Serialize)]
pub struct TimeSeries {
    /// Display name, e.g. `"fibo"`.
    pub name: String,
    /// Samples in non-decreasing time order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample (time converted to seconds).
    pub fn push(&mut self, t: Time, v: f64) {
        debug_assert!(
            self.points
                .last()
                .map(|&(pt, _)| pt <= t.as_secs_f64())
                .unwrap_or(true),
            "samples must be time-ordered"
        );
        self.points.push((t.as_secs_f64(), v));
    }

    /// Last sampled value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Largest sampled value (0.0 for an empty series, so axis labels and
    /// scale computations never see `f64::MIN`).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0f64, f64::max)
    }

    /// Render several series as a CSV with a shared time column. The series
    /// must have been sampled at the same instants; mismatched lengths are
    /// an error (rows would otherwise be silently dropped).
    pub fn to_csv(series: &[&TimeSeries]) -> Result<String, String> {
        let mut out = String::from("time_s");
        for s in series {
            out.push(',');
            out.push_str(&s.name);
        }
        out.push('\n');
        let n = series.first().map(|s| s.points.len()).unwrap_or(0);
        if let Some(s) = series.iter().find(|s| s.points.len() != n) {
            return Err(format!(
                "series length mismatch: \"{}\" has {} samples, \"{}\" has {}",
                series[0].name,
                n,
                s.name,
                s.points.len()
            ));
        }
        for i in 0..n {
            out.push_str(&format!("{:.3}", series[0].points[i].0));
            for s in series {
                out.push_str(&format!(",{:.6}", s.points[i].1));
            }
            out.push('\n');
        }
        Ok(out)
    }

    /// Render series as a compact multi-line ASCII chart: one character
    /// column per sample bucket, `height` rows.
    pub fn ascii_chart(series: &[&TimeSeries], width: usize, height: usize) -> String {
        if width == 0
            || height == 0
            || series.is_empty()
            || series.iter().all(|s| s.points.is_empty())
        {
            return String::from("(no data)\n");
        }
        let tmax = series
            .iter()
            .flat_map(|s| s.points.last().map(|&(t, _)| t))
            .fold(0.0f64, f64::max);
        let vmax = series
            .iter()
            .map(|s| s.max())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let marks = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in series.iter().enumerate() {
            let mark = marks[si % marks.len()];
            for &(t, v) in &s.points {
                let x = ((t / tmax.max(1e-12)) * (width - 1) as f64).round() as usize;
                let y = ((v / vmax) * (height - 1) as f64).round() as usize;
                let row = height - 1 - y.min(height - 1);
                grid[row][x.min(width - 1)] = mark;
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{vmax:>10.1} ┐\n"));
        for row in grid {
            out.push_str("           │");
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "       0.0 └{}\n            0s{}{tmax:.0}s\n",
            "─".repeat(width),
            " ".repeat(width.saturating_sub(6)),
        ));
        for (si, s) in series.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", marks[si % marks.len()], s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Dur;

    #[test]
    fn push_and_stats() {
        let mut s = TimeSeries::new("x");
        s.push(Time::ZERO, 1.0);
        s.push(Time::ZERO + Dur::secs(1), 3.0);
        s.push(Time::ZERO + Dur::secs(2), 2.0);
        assert_eq!(s.last(), Some(2.0));
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        for i in 0..3 {
            a.push(Time(i * 1_000_000_000), i as f64);
            b.push(Time(i * 1_000_000_000), (i * 2) as f64);
        }
        let csv = TimeSeries::to_csv(&[&a, &b]).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,a,b");
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("1.000,1.000000,2.000000"));
    }

    /// Regression: `max()` used to fold from `f64::MIN`, so an empty series
    /// reported `-1.7e308` and poisoned `ascii_chart`'s vmax axis label.
    #[test]
    fn empty_series_max_is_zero() {
        let s = TimeSeries::new("empty");
        assert_eq!(s.max(), 0.0);
    }

    /// Regression: `to_csv` used to truncate every column to the shortest
    /// series, silently dropping samples. Mismatched lengths now error.
    #[test]
    fn csv_rejects_mismatched_lengths() {
        let mut a = TimeSeries::new("a");
        let mut b = TimeSeries::new("b");
        a.push(Time::ZERO, 1.0);
        a.push(Time(1_000_000_000), 2.0);
        b.push(Time::ZERO, 1.0);
        let err = TimeSeries::to_csv(&[&a, &b]).unwrap_err();
        assert!(err.contains("length mismatch"), "{err}");
        assert!(TimeSeries::to_csv(&[]).is_ok());
    }

    /// Regression: `ascii_chart` used to compute `width - 1` and index
    /// zero-height grids, panicking on degenerate sizes.
    #[test]
    fn ascii_chart_zero_sizes_are_graceful() {
        let mut a = TimeSeries::new("a");
        a.push(Time::ZERO, 1.0);
        assert_eq!(TimeSeries::ascii_chart(&[&a], 0, 8), "(no data)\n");
        assert_eq!(TimeSeries::ascii_chart(&[&a], 40, 0), "(no data)\n");
    }

    #[test]
    fn ascii_chart_renders() {
        let mut a = TimeSeries::new("runtime");
        for i in 0..50 {
            a.push(Time(i * 1_000_000_000), i as f64);
        }
        let chart = TimeSeries::ascii_chart(&[&a], 40, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains("runtime"));
    }

    #[test]
    fn empty_chart_is_graceful() {
        let a = TimeSeries::new("empty");
        assert_eq!(TimeSeries::ascii_chart(&[&a], 10, 4), "(no data)\n");
    }
}
