//! Per-core thread counts over time (Figures 6 and 7).

use serde::Serialize;
use simcore::Time;

/// A matrix of per-core values sampled over time.
#[derive(Debug, Clone, Serialize)]
pub struct PerCoreSeries {
    /// Sample times (seconds).
    pub times: Vec<f64>,
    /// `counts[i][core]` at `times[i]`.
    pub counts: Vec<Vec<u32>>,
}

impl PerCoreSeries {
    /// Empty matrix.
    pub fn new() -> PerCoreSeries {
        PerCoreSeries {
            times: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Append one sample row.
    pub fn push(&mut self, t: Time, row: Vec<u32>) {
        if let Some(prev) = self.counts.first() {
            assert_eq!(prev.len(), row.len(), "inconsistent core count");
        }
        self.times.push(t.as_secs_f64());
        self.counts.push(row);
    }

    /// Number of cores.
    pub fn nr_cores(&self) -> usize {
        self.counts.first().map(|r| r.len()).unwrap_or(0)
    }

    /// The spread `max - min` of the final sample (0 = perfectly even).
    pub fn final_spread(&self) -> u32 {
        match self.counts.last() {
            Some(row) if !row.is_empty() => row.iter().max().unwrap() - row.iter().min().unwrap(),
            _ => 0,
        }
    }

    /// First sample time at which the spread fell to `tolerance` or below
    /// and stayed there; `None` if never.
    pub fn convergence_time(&self, tolerance: u32) -> Option<f64> {
        let spread =
            |row: &Vec<u32>| row.iter().max().unwrap_or(&0) - row.iter().min().unwrap_or(&0);
        let mut candidate = None;
        for (i, row) in self.counts.iter().enumerate() {
            if spread(row) <= tolerance {
                if candidate.is_none() {
                    candidate = Some(self.times[i]);
                }
            } else {
                candidate = None;
            }
        }
        candidate
    }

    /// ASCII heatmap in the style of the paper's Figure 6: one row per
    /// core, one character column per sample; darker glyph = more threads.
    pub fn heatmap(&self) -> String {
        if self.counts.is_empty() {
            return String::from("(no data)\n");
        }
        let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = self
            .counts
            .iter()
            .flat_map(|r| r.iter())
            .copied()
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for core in 0..self.nr_cores() {
            out.push_str(&format!("core {core:>2} │"));
            for row in &self.counts {
                let v = row[core];
                let g = if v == 0 {
                    0
                } else {
                    1 + (v as usize - 1) * (glyphs.len() - 2) / (max as usize).max(1) + 1
                };
                out.push(glyphs[g.min(glyphs.len() - 1)]);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "         └ t = {:.1}s .. {:.1}s, max {} threads/core\n",
            self.times.first().unwrap(),
            self.times.last().unwrap(),
            max
        ));
        out
    }

    /// CSV export: `time_s,core0,core1,...`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s");
        for c in 0..self.nr_cores() {
            out.push_str(&format!(",core{c}"));
        }
        out.push('\n');
        for (i, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{:.3}", self.times[i]));
            for v in row {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl Default for PerCoreSeries {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Dur;

    #[test]
    fn spread_and_convergence() {
        let mut m = PerCoreSeries::new();
        m.push(Time::ZERO, vec![10, 0]);
        m.push(Time::ZERO + Dur::secs(1), vec![6, 4]);
        m.push(Time::ZERO + Dur::secs(2), vec![5, 5]);
        m.push(Time::ZERO + Dur::secs(3), vec![5, 5]);
        assert_eq!(m.final_spread(), 0);
        assert_eq!(m.convergence_time(0), Some(2.0));
        assert_eq!(m.convergence_time(2), Some(1.0));
    }

    #[test]
    fn convergence_requires_staying_converged() {
        let mut m = PerCoreSeries::new();
        m.push(Time::ZERO, vec![5, 5]);
        m.push(Time::ZERO + Dur::secs(1), vec![9, 1]);
        m.push(Time::ZERO + Dur::secs(2), vec![5, 5]);
        assert_eq!(m.convergence_time(0), Some(2.0), "early dip doesn't count");
    }

    #[test]
    fn heatmap_and_csv_render() {
        let mut m = PerCoreSeries::new();
        m.push(Time::ZERO, vec![3, 0, 1]);
        m.push(Time::ZERO + Dur::secs(1), vec![2, 1, 1]);
        let h = m.heatmap();
        assert!(h.contains("core  0"));
        let csv = m.to_csv();
        assert!(csv.starts_with("time_s,core0,core1,core2"));
        assert!(csv.contains("0.000,3,0,1"));
    }

    #[test]
    fn never_converges_is_none() {
        let mut m = PerCoreSeries::new();
        m.push(Time::ZERO, vec![10, 0]);
        assert_eq!(m.convergence_time(0), None);
    }
}
