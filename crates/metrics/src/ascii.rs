//! Horizontal bar charts for the performance-comparison figures (5, 8, 9).

use serde::Serialize;

/// One labelled signed value (e.g. "% diff of ULE w.r.t. CFS").
#[derive(Debug, Clone, Serialize)]
pub struct Bar {
    /// Label, e.g. the application name.
    pub label: String,
    /// Signed value; positive bars extend right.
    pub value: f64,
}

/// A labelled horizontal bar chart with a zero axis in the middle — the
/// shape of the paper's Figures 5 and 8.
#[derive(Debug, Clone, Serialize)]
pub struct BarChart {
    /// Chart title.
    pub title: String,
    /// Axis unit, e.g. `"% diff vs CFS"`.
    pub unit: String,
    /// The bars, in display order.
    pub bars: Vec<Bar>,
}

impl BarChart {
    /// Empty chart.
    pub fn new(title: impl Into<String>, unit: impl Into<String>) -> BarChart {
        BarChart {
            title: title.into(),
            unit: unit.into(),
            bars: Vec::new(),
        }
    }

    /// Append a bar.
    pub fn push(&mut self, label: impl Into<String>, value: f64) {
        self.bars.push(Bar {
            label: label.into(),
            value,
        });
    }

    /// Mean of all bar values.
    pub fn mean(&self) -> f64 {
        if self.bars.is_empty() {
            0.0
        } else {
            self.bars.iter().map(|b| b.value).sum::<f64>() / self.bars.len() as f64
        }
    }

    /// Render with `half` characters on each side of the zero axis.
    pub fn render(&self, half: usize) -> String {
        let label_w = self
            .bars
            .iter()
            .map(|b| b.label.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let vmax = self
            .bars
            .iter()
            .map(|b| b.value.abs())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let mut out = format!("{} ({})\n", self.title, self.unit);
        for b in &self.bars {
            let n = ((b.value.abs() / vmax) * half as f64).round() as usize;
            let (left, right) = if b.value < 0.0 {
                (
                    format!(
                        "{}{}",
                        " ".repeat(half - n.min(half)),
                        "▆".repeat(n.min(half))
                    ),
                    String::new(),
                )
            } else {
                (" ".repeat(half), "▆".repeat(n.min(half)))
            };
            out.push_str(&format!(
                "{:<label_w$} {left}│{right:<half$} {:+7.1}\n",
                b.label, b.value
            ));
        }
        out.push_str(&format!("{:<label_w$} mean {:+.2}\n", "", self.mean()));
        out
    }

    /// CSV export.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,value\n");
        for b in &self.bars {
            out.push_str(&format!("{},{:.4}\n", b.label, b.value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_render() {
        let mut c = BarChart::new("Fig 5", "% diff");
        c.push("apache", 40.0);
        c.push("scimark", -36.0);
        assert!((c.mean() - 2.0).abs() < 1e-9);
        let r = c.render(20);
        assert!(r.contains("apache"));
        assert!(r.contains("scimark"));
        assert!(r.contains("+40.0"));
        assert!(r.contains("-36.0"));
    }

    #[test]
    fn csv_format() {
        let mut c = BarChart::new("t", "u");
        c.push("x", 1.5);
        assert_eq!(c.to_csv(), "label,value\nx,1.5000\n");
    }

    #[test]
    fn empty_chart_mean_zero() {
        let c = BarChart::new("t", "u");
        assert_eq!(c.mean(), 0.0);
    }
}
