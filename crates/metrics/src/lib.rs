//! Measurement substrate for the experiments.
//!
//! The paper's figures come in three shapes, and this crate provides a data
//! structure + renderer for each:
//!
//! * time series of per-thread quantities (Figures 1–4) → [`TimeSeries`],
//! * per-core thread-count matrices over time (Figures 6–7) →
//!   [`PerCoreSeries`] with an ASCII heatmap like the paper's colour plots,
//! * per-application performance comparisons (Figures 5, 8, 9) →
//!   [`BarChart`].
//!
//! Latency distributions (Table 2) use [`Histogram`]. Everything exports to
//! CSV/JSON so results can be post-processed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod hist;
pub mod percore;
pub mod series;
pub mod table;

pub use ascii::BarChart;
pub use hist::{Histogram, LatencySummary};
pub use percore::PerCoreSeries;
pub use series::TimeSeries;
pub use table::Table;
