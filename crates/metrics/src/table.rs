//! Aligned text tables (Table 1, Table 2, summary reports).

use serde::Serialize;

/// A simple column-aligned table.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn push(&mut self, row: &[String]) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row.to_vec());
    }

    /// Convenience for string-literal rows.
    pub fn push_strs(&mut self, row: &[&str]) {
        self.push(&row.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment and a header separator.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncol {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push_str(&format!(
            "{}\n",
            "─".repeat(widths.iter().sum::<usize>() + 2 * (ncol - 1))
        ));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// CSV export.
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["metric", "CFS", "ULE"]);
        t.push_strs(&["Fibo - Runtime", "160s", "158s"]);
        t.push_strs(&["Sysbench - Transactions/s", "290", "532"]);
        let r = t.render();
        assert!(r.contains("metric"));
        assert!(r.lines().count() >= 4);
        // Columns align: both data lines have "CFS column" at same offset.
        let lines: Vec<&str> = r.lines().collect();
        let pos1 = lines[2].find("160s").unwrap();
        let pos2 = lines[3].find("290").unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.push_strs(&["only-one"]);
    }

    #[test]
    fn csv() {
        let mut t = Table::new(&["a", "b"]);
        t.push_strs(&["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }
}
