//! Latency histograms (log-spaced buckets).

use serde::Serialize;
use simcore::Dur;

/// A histogram over durations with power-of-two microsecond buckets.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i µs, 2^(i+1) µs)`.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Histogram {
    /// Empty histogram (covers 1 µs .. ~4600 s).
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: Dur) {
        let us = d.as_micros().max(1);
        let idx = (63 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += d.as_nanos() as u128;
        self.max_ns = self.max_ns.max(d.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Dur {
        Dur(self.max_ns)
    }

    /// Approximate quantile (bucket upper bound), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Dur::micros(1u64 << (i + 1));
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        let mut h = Histogram::new();
        h.record(Dur::millis(10));
        h.record(Dur::millis(30));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Dur::millis(20));
        assert_eq!(h.max(), Dur::millis(30));
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(Dur::millis(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p50 >= Dur::millis(32) && p50 <= Dur::millis(128), "{p50}");
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Dur::ZERO);
        assert_eq!(h.quantile(0.5), Dur::ZERO);
    }

    #[test]
    fn sub_microsecond_clamps_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(Dur::nanos(10));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) <= Dur::micros(2));
    }
}
