//! Latency histograms (log-spaced buckets).

use serde::Serialize;
use simcore::Dur;

/// A histogram over durations with power-of-two microsecond buckets.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    /// `buckets[i]` counts samples in `[2^i µs, 2^(i+1) µs)`.
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Histogram {
    /// Empty histogram (covers 1 µs .. ~4600 s).
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: Dur) {
        let us = d.as_micros().max(1);
        let idx = (63 - us.leading_zeros() as usize).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += d.as_nanos() as u128;
        self.max_ns = self.max_ns.max(d.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples.
    pub fn mean(&self) -> Dur {
        if self.count == 0 {
            Dur::ZERO
        } else {
            Dur((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Largest sample.
    pub fn max(&self) -> Dur {
        Dur(self.max_ns)
    }

    /// Approximate quantile (bucket upper bound, clamped to the observed
    /// maximum so a coarse top bucket never reports a value larger than any
    /// sample), `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Dur {
        if self.count == 0 {
            return Dur::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                // The upper bound of bucket `i` is `2^(i+1)` µs. For the
                // top buckets that exceeds u64 nanoseconds, so compute it
                // in u128 and saturate instead of shifting into oblivion.
                let bound_ns = (1u128 << (i + 1)) * 1_000;
                let bound = Dur(bound_ns.min(u64::MAX as u128) as u64);
                return bound.min(self.max());
            }
        }
        self.max()
    }

    /// Compact p50/p99/max summary for reports and JSON dumps.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count,
            mean_ms: self.mean().as_secs_f64() * 1e3,
            p50_ms: self.quantile(0.5).as_secs_f64() * 1e3,
            p99_ms: self.quantile(0.99).as_secs_f64() * 1e3,
            max_ms: self.max().as_secs_f64() * 1e3,
        }
    }
}

/// Point-in-time digest of a [`Histogram`]: sample count plus
/// mean/p50/p99/max in milliseconds. This is the shape every figure's JSON
/// dump and `battle bench` embed for run-delay reporting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of samples behind the percentiles.
    pub count: u64,
    /// Mean sample, milliseconds.
    pub mean_ms: f64,
    /// Median (bucket upper bound), milliseconds.
    pub p50_ms: f64,
    /// 99th percentile (bucket upper bound), milliseconds.
    pub p99_ms: f64,
    /// Largest sample, milliseconds.
    pub max_ms: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_max() {
        let mut h = Histogram::new();
        h.record(Dur::millis(10));
        h.record(Dur::millis(30));
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean(), Dur::millis(20));
        assert_eq!(h.max(), Dur::millis(30));
    }

    #[test]
    fn quantiles_are_ordered() {
        let mut h = Histogram::new();
        for i in 1..=100u64 {
            h.record(Dur::millis(i));
        }
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p99);
        assert!(p50 >= Dur::millis(32) && p50 <= Dur::millis(128), "{p50}");
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.mean(), Dur::ZERO);
        assert_eq!(h.quantile(0.5), Dur::ZERO);
    }

    #[test]
    fn sub_microsecond_clamps_to_first_bucket() {
        let mut h = Histogram::new();
        h.record(Dur::nanos(10));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) <= Dur::micros(2));
    }

    /// Regression: a sample in a high bucket used to make `quantile`
    /// compute `Dur::micros(1u64 << (i + 1))`, overflowing u64 (panic in
    /// debug, garbage in release) once the bucket bound exceeded ~2^54 µs.
    #[test]
    fn top_bucket_quantile_does_not_overflow() {
        let mut h = Histogram::new();
        h.record(Dur(u64::MAX));
        assert_eq!(h.quantile(0.5), Dur(u64::MAX));
        assert_eq!(h.quantile(1.0), Dur(u64::MAX));
    }

    /// Regression: quantiles are clamped to the observed maximum instead of
    /// reporting a bucket upper bound no sample ever reached.
    #[test]
    fn quantile_never_exceeds_observed_max() {
        let mut h = Histogram::new();
        h.record(Dur::millis(100));
        assert_eq!(h.quantile(0.99), Dur::millis(100));
        let mut lo = Histogram::new();
        lo.record(Dur::micros(3));
        assert_eq!(lo.quantile(1.0), Dur::micros(3));
    }

    #[test]
    fn summary_shape() {
        let mut h = Histogram::new();
        for i in 1..=10u64 {
            h.record(Dur::millis(i));
        }
        let s = h.summary();
        assert_eq!(s.count, 10);
        assert!(s.p50_ms <= s.p99_ms && s.p99_ms <= s.max_ms);
        assert!((s.max_ms - 10.0).abs() < 1e-9);
    }
}
