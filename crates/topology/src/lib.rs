//! Machine topology model.
//!
//! Both schedulers studied by the paper make placement decisions that depend
//! on the hardware topology: ULE walks a tree of "cache affinity levels"
//! (`sched_pickcpu`, idle stealing), while CFS builds *scheduling domains*
//! (SMT → last-level cache → NUMA) and balances hierarchically with
//! per-level imbalance thresholds.
//!
//! This crate describes a machine as a regular tree:
//! NUMA nodes → LLC groups → physical cores → SMT hardware threads, and
//! offers the queries both schedulers need, plus structural sched-domain
//! construction for CFS.
//!
//! Presets model the paper's two evaluation machines:
//! [`Topology::opteron_6172`] (32 cores, 4 NUMA nodes) and
//! [`Topology::core_i7_3770`] (4 cores × 2 SMT, single LLC).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Identifier of a logical CPU (a hardware thread).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CpuId(pub u32);

impl CpuId {
    /// Index into per-cpu arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for CpuId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Affinity levels, ordered from closest to farthest. These are the levels
/// ULE's `sched_pickcpu` walks and the levels at which CFS builds domains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Same physical core (SMT siblings).
    Smt,
    /// Same last-level cache.
    Llc,
    /// Same NUMA node.
    Node,
    /// The whole machine.
    Machine,
}

impl Level {
    /// All levels, closest first.
    pub const ALL: [Level; 4] = [Level::Smt, Level::Llc, Level::Node, Level::Machine];
}

/// Immutable description of one machine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    name: String,
    /// For every cpu: the physical core it belongs to.
    core_of: Vec<u32>,
    /// For every cpu: the LLC group it belongs to.
    llc_of: Vec<u32>,
    /// For every cpu: the NUMA node it belongs to.
    node_of: Vec<u32>,
    /// cpus grouped by physical core.
    cores: Vec<Vec<CpuId>>,
    /// cpus grouped by LLC.
    llcs: Vec<Vec<CpuId>>,
    /// cpus grouped by NUMA node.
    nodes: Vec<Vec<CpuId>>,
}

impl Topology {
    /// Build a regular topology: `nodes` NUMA nodes, each containing
    /// `llcs_per_node` LLC groups, each containing `cores_per_llc` physical
    /// cores, each with `smt_per_core` hardware threads.
    ///
    /// CPU ids are assigned depth-first, so consecutive ids share caches —
    /// the same convention as the simulated machines in the paper.
    pub fn regular(
        name: &str,
        nodes: u32,
        llcs_per_node: u32,
        cores_per_llc: u32,
        smt_per_core: u32,
    ) -> Self {
        assert!(nodes > 0 && llcs_per_node > 0 && cores_per_llc > 0 && smt_per_core > 0);
        let mut core_of = Vec::new();
        let mut llc_of = Vec::new();
        let mut node_of = Vec::new();
        let mut cores = Vec::new();
        let mut llcs = Vec::new();
        let mut node_groups = Vec::new();
        let mut cpu = 0u32;
        for n in 0..nodes {
            let mut node_cpus = Vec::new();
            for _l in 0..llcs_per_node {
                let llc_id = llcs.len() as u32;
                let mut llc_cpus = Vec::new();
                for _c in 0..cores_per_llc {
                    let core_id = cores.len() as u32;
                    let mut core_cpus = Vec::new();
                    for _t in 0..smt_per_core {
                        let id = CpuId(cpu);
                        cpu += 1;
                        core_of.push(core_id);
                        llc_of.push(llc_id);
                        node_of.push(n);
                        core_cpus.push(id);
                        llc_cpus.push(id);
                        node_cpus.push(id);
                    }
                    cores.push(core_cpus);
                }
                llcs.push(llc_cpus);
            }
            node_groups.push(node_cpus);
        }
        Topology {
            name: name.to_string(),
            core_of,
            llc_of,
            node_of,
            cores,
            llcs,
            nodes: node_groups,
        }
    }

    /// The paper's large machine: a 32-core AMD Opteron 6172 with 32 GB RAM.
    ///
    /// Modelled as 4 NUMA nodes of 8 cores each, one LLC per node, no SMT
    /// (the Opteron 6100 series has no SMT; each pair of dies forms a node).
    pub fn opteron_6172() -> Self {
        Topology::regular("amd-opteron-6172", 4, 1, 8, 1)
    }

    /// The paper's small desktop machine: an 8-thread Intel i7-3770
    /// (4 cores × 2 SMT, single LLC, single NUMA node).
    pub fn core_i7_3770() -> Self {
        Topology::regular("intel-i7-3770", 1, 1, 4, 2)
    }

    /// A single-core machine, used by the per-core scheduling experiments
    /// (§5 of the paper).
    pub fn single_core() -> Self {
        Topology::regular("single-core", 1, 1, 1, 1)
    }

    /// A flat machine: `n` cores sharing one LLC on one node.
    pub fn flat(n: u32) -> Self {
        Topology::regular("flat", 1, 1, n, 1)
    }

    /// Human-readable name of the machine model.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical CPUs.
    pub fn nr_cpus(&self) -> usize {
        self.core_of.len()
    }

    /// Iterator over all CPU ids in increasing order.
    pub fn all_cpus(&self) -> impl Iterator<Item = CpuId> + '_ {
        (0..self.nr_cpus() as u32).map(CpuId)
    }

    /// The physical core of `cpu`.
    pub fn core_of(&self, cpu: CpuId) -> u32 {
        self.core_of[cpu.index()]
    }

    /// The LLC group of `cpu`.
    pub fn llc_of(&self, cpu: CpuId) -> u32 {
        self.llc_of[cpu.index()]
    }

    /// The NUMA node of `cpu`.
    pub fn node_of(&self, cpu: CpuId) -> u32 {
        self.node_of[cpu.index()]
    }

    /// Number of NUMA nodes.
    pub fn nr_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of LLC groups.
    pub fn nr_llcs(&self) -> usize {
        self.llcs.len()
    }

    /// The SMT siblings of `cpu` (including `cpu` itself).
    pub fn smt_siblings(&self, cpu: CpuId) -> &[CpuId] {
        &self.cores[self.core_of(cpu) as usize]
    }

    /// All CPUs sharing `cpu`'s LLC (including `cpu`).
    pub fn llc_cpus(&self, cpu: CpuId) -> &[CpuId] {
        &self.llcs[self.llc_of(cpu) as usize]
    }

    /// All CPUs on `cpu`'s NUMA node (including `cpu`).
    pub fn node_cpus(&self, cpu: CpuId) -> &[CpuId] {
        &self.nodes[self.node_of(cpu) as usize]
    }

    /// All CPUs of the `i`-th NUMA node.
    pub fn node(&self, i: usize) -> &[CpuId] {
        &self.nodes[i]
    }

    /// The CPUs `cpu` shares the given level with (including `cpu`).
    pub fn span(&self, cpu: CpuId, level: Level) -> Vec<CpuId> {
        match level {
            Level::Smt => self.smt_siblings(cpu).to_vec(),
            Level::Llc => self.llc_cpus(cpu).to_vec(),
            Level::Node => self.node_cpus(cpu).to_vec(),
            Level::Machine => self.all_cpus().collect(),
        }
    }

    /// The closest level at which `a` and `b` share hardware. `Smt` means
    /// same physical core (or the same cpu).
    pub fn shared_level(&self, a: CpuId, b: CpuId) -> Level {
        if self.core_of(a) == self.core_of(b) {
            Level::Smt
        } else if self.llc_of(a) == self.llc_of(b) {
            Level::Llc
        } else if self.node_of(a) == self.node_of(b) {
            Level::Node
        } else {
            Level::Machine
        }
    }

    /// A small integer distance: 0 = same core, 1 = same LLC, 2 = same node,
    /// 3 = cross-node. Used for migration-cost modelling.
    pub fn distance(&self, a: CpuId, b: CpuId) -> u32 {
        match self.shared_level(a, b) {
            Level::Smt => 0,
            Level::Llc => 1,
            Level::Node => 2,
            Level::Machine => 3,
        }
    }

    /// `true` if the topology has more than one hardware thread per core.
    pub fn has_smt(&self) -> bool {
        self.cores.iter().any(|c| c.len() > 1)
    }

    /// Build the per-CPU scheduling-domain hierarchy, smallest domain first,
    /// skipping degenerate levels (levels whose span equals the level below).
    ///
    /// This mirrors how Linux constructs `sched_domain`s from the hardware
    /// topology; CFS's load balancer walks exactly this list.
    pub fn domains(&self, cpu: CpuId) -> Vec<Domain> {
        let mut out: Vec<Domain> = Vec::new();
        for level in Level::ALL {
            let span = self.span(cpu, level);
            if span.len() <= 1 {
                continue;
            }
            if let Some(prev) = out.last() {
                if prev.span.len() == span.len() {
                    continue; // degenerate level
                }
            }
            // Groups of this domain: the child-level spans partitioning it.
            let child_level = match level {
                Level::Smt => None,
                Level::Llc => Some(Level::Smt),
                Level::Node => Some(Level::Llc),
                Level::Machine => Some(Level::Node),
            };
            let groups = match child_level {
                None => span.iter().map(|&c| vec![c]).collect::<Vec<_>>(),
                Some(cl) => {
                    let mut groups: Vec<Vec<CpuId>> = Vec::new();
                    for &c in &span {
                        let g = self.span(c, cl);
                        if !groups.contains(&g) {
                            groups.push(g);
                        }
                    }
                    // Collapse degenerate grouping (one group == whole span).
                    if groups.len() == 1 {
                        groups = span.iter().map(|&c| vec![c]).collect();
                    }
                    groups
                }
            };
            out.push(Domain {
                level,
                span,
                groups,
            });
        }
        out
    }
}

/// One scheduling domain of one CPU: the CPUs it balances across at this
/// level, partitioned into groups (the units the balancer compares).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Domain {
    /// Hardware level of the domain.
    pub level: Level,
    /// All CPUs in the domain (always contains the owning CPU).
    pub span: Vec<CpuId>,
    /// Disjoint groups partitioning `span`.
    pub groups: Vec<Vec<CpuId>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opteron_shape() {
        let t = Topology::opteron_6172();
        assert_eq!(t.nr_cpus(), 32);
        assert_eq!(t.nr_nodes(), 4);
        assert_eq!(t.nr_llcs(), 4);
        assert!(!t.has_smt());
        assert_eq!(t.node_cpus(CpuId(0)).len(), 8);
        assert_eq!(t.node_of(CpuId(7)), 0);
        assert_eq!(t.node_of(CpuId(8)), 1);
    }

    #[test]
    fn i7_shape() {
        let t = Topology::core_i7_3770();
        assert_eq!(t.nr_cpus(), 8);
        assert!(t.has_smt());
        assert_eq!(t.smt_siblings(CpuId(0)), &[CpuId(0), CpuId(1)]);
        assert_eq!(t.llc_cpus(CpuId(0)).len(), 8);
        assert_eq!(t.nr_nodes(), 1);
    }

    #[test]
    fn shared_levels_and_distance() {
        let t = Topology::opteron_6172();
        assert_eq!(t.shared_level(CpuId(0), CpuId(0)), Level::Smt);
        assert_eq!(t.shared_level(CpuId(0), CpuId(1)), Level::Llc);
        assert_eq!(t.shared_level(CpuId(0), CpuId(9)), Level::Machine);
        assert_eq!(t.distance(CpuId(0), CpuId(9)), 3);

        let i7 = Topology::core_i7_3770();
        assert_eq!(i7.shared_level(CpuId(0), CpuId(1)), Level::Smt);
        assert_eq!(i7.shared_level(CpuId(0), CpuId(2)), Level::Llc);
        assert_eq!(i7.distance(CpuId(0), CpuId(2)), 1);
    }

    #[test]
    fn spans_partition_machine() {
        let t = Topology::opteron_6172();
        let mut all: Vec<CpuId> = Vec::new();
        for n in 0..t.nr_nodes() {
            all.extend_from_slice(t.node(n));
        }
        all.sort();
        assert_eq!(all, t.all_cpus().collect::<Vec<_>>());
    }

    #[test]
    fn domains_opteron() {
        let t = Topology::opteron_6172();
        let d = t.domains(CpuId(3));
        // No SMT, LLC == node span → one LLC/MC-like domain of 8, then machine.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].span.len(), 8);
        assert_eq!(d[1].span.len(), 32);
        assert_eq!(d[1].groups.len(), 4);
        for g in &d[1].groups {
            assert_eq!(g.len(), 8);
        }
        // Every domain contains the owning cpu.
        for dom in &d {
            assert!(dom.span.contains(&CpuId(3)));
        }
    }

    #[test]
    fn domains_i7() {
        let t = Topology::core_i7_3770();
        let d = t.domains(CpuId(5));
        // SMT domain of 2, then LLC domain of 8 with 4 groups of 2.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].level, Level::Smt);
        assert_eq!(d[0].span.len(), 2);
        assert_eq!(d[1].span.len(), 8);
        assert_eq!(d[1].groups.len(), 4);
    }

    #[test]
    fn domains_single_core_empty() {
        let t = Topology::single_core();
        assert!(t.domains(CpuId(0)).is_empty());
    }

    #[test]
    fn domain_groups_partition_span() {
        for t in [
            Topology::opteron_6172(),
            Topology::core_i7_3770(),
            Topology::flat(6),
            Topology::regular("x", 2, 2, 2, 2),
        ] {
            for cpu in t.all_cpus() {
                for dom in t.domains(cpu) {
                    let mut union: Vec<CpuId> = dom.groups.concat();
                    union.sort();
                    let mut span = dom.span.clone();
                    span.sort();
                    assert_eq!(union, span, "groups must partition the span");
                }
            }
        }
    }
}
