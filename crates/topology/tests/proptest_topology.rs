//! Property tests: structural invariants of arbitrary regular topologies.

use proptest::prelude::*;
use topology::{CpuId, Level, Topology};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any regular topology partitions cleanly at every level and the
    /// distance function is a consistent ultrametric-ish hierarchy.
    #[test]
    fn regular_topologies_are_consistent(nodes in 1u32..5, llcs in 1u32..3,
                                         cores in 1u32..5, smt in 1u32..3) {
        let t = Topology::regular("p", nodes, llcs, cores, smt);
        let expect = (nodes * llcs * cores * smt) as usize;
        prop_assert_eq!(t.nr_cpus(), expect);
        prop_assert_eq!(t.nr_nodes(), nodes as usize);
        prop_assert_eq!(t.nr_llcs(), (nodes * llcs) as usize);

        for cpu in t.all_cpus() {
            // Containment chain: smt ⊆ llc ⊆ node ⊆ machine.
            let smt_set = t.span(cpu, Level::Smt);
            let llc_set = t.span(cpu, Level::Llc);
            let node_set = t.span(cpu, Level::Node);
            prop_assert!(smt_set.iter().all(|c| llc_set.contains(c)));
            prop_assert!(llc_set.iter().all(|c| node_set.contains(c)));
            prop_assert_eq!(smt_set.len(), smt as usize);
            prop_assert_eq!(llc_set.len(), (cores * smt) as usize);
            // Reflexivity.
            prop_assert_eq!(t.distance(cpu, cpu), 0);
        }
        // Symmetry of distances.
        for a in t.all_cpus() {
            for b in t.all_cpus() {
                prop_assert_eq!(t.distance(a, b), t.distance(b, a));
            }
        }
    }

    /// Every domain's groups partition its span, and spans grow with level.
    #[test]
    fn domains_partition(nodes in 1u32..4, cores in 1u32..5, smt in 1u32..3) {
        let t = Topology::regular("p", nodes, 1, cores, smt);
        for cpu in t.all_cpus() {
            let doms = t.domains(cpu);
            let mut prev_len = 1usize;
            for d in &doms {
                prop_assert!(d.span.contains(&cpu), "domain must contain its owner");
                prop_assert!(d.span.len() > prev_len, "domains strictly grow");
                prev_len = d.span.len();
                let mut union: Vec<CpuId> = d.groups.concat();
                union.sort();
                let mut span = d.span.clone();
                span.sort();
                prop_assert_eq!(union, span, "groups partition the span");
            }
        }
    }
}
