//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest's surface its tests actually
//! use: the `proptest!` macro with `pattern in strategy` and `name: type`
//! arguments, integer range strategies, tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `Just`, `prop_map`, weighted `prop_oneof!`,
//! `ProptestConfig::with_cases`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Every (test, case) pair derives its RNG seed from an FNV hash of the
//! test's module path and the case index, so runs are fully deterministic
//! and failures are reproducible. There is no shrinking: a failing case
//! reports its case index instead of a minimized input.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Deterministic case generation.

    /// Per-case random number generator (xorshift64* over an FNV-seeded
    /// state, mirroring the simulator's own `SimRng` construction).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one named test case; fully determined by `(name, case)`.
        pub fn deterministic(name: &str, case: u64) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            // splitmix64 finalizer so consecutive cases are well mixed.
            let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            TestRng { state: z | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn gen_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Test-run configuration (case count only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map drawn values through `f` (proptest's `prop_map`).
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding clones of one fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.sample(rng))
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    }

    /// Box one `prop_oneof!` arm. A named function (rather than an inline
    /// `as Box<dyn Strategy<Value = _>>` cast in the macro) so the
    /// associated type is pinned through `S::Value` — a cast with an
    /// inference hole does not unify across arms.
    pub fn arm<S>(weight: u32, s: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
    where
        S: Strategy + 'static,
    {
        (weight, Box::new(s))
    }

    impl<T> Union<T> {
        /// A union drawing each arm with probability proportional to its
        /// weight. Panics on an empty or zero-weight arm list.
        pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
            assert!(
                arms.iter().map(|&(w, _)| u64::from(w)).sum::<u64>() > 0,
                "prop_oneof! needs at least one arm with non-zero weight"
            );
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|&(w, _)| u64::from(w)).sum();
            let mut pick = rng.gen_below(total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.sample(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("pick exceeded total weight")
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.gen_below(width) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let width = hi.wrapping_sub(lo) as u64;
                    if width == u64::MAX {
                        rng.next_u64() as $t
                    } else {
                        lo.wrapping_add(rng.gen_below(width + 1) as $t)
                    }
                }
            }
        )*};
    }
    int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // 53 uniform mantissa bits in [0, 1), scaled into the
                    // range — half-open like the integer ranges.
                    let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (u as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    lo + (u as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_strategies!(f64, f32);

    macro_rules! tuple_strategies {
        ($(($($n:tt $t:ident),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the canonical full-range strategy for a type.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies. A concrete
    /// type (rather than a generic `Strategy<Value = usize>` bound) so an
    /// unsuffixed `1..200` length literal infers as `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with a drawn length.
    pub struct VecStrategy<S> {
        elem: S,
        len: SizeRange,
    }

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            len: len.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.hi - self.len.lo) as u64 + 1;
            let n = self.len.lo + rng.gen_below(span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual `use proptest::prelude::*;` import surface.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Namespace module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Weighted (`3 => strat`) or uniform (`strat`) choice between strategies
/// producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(::std::vec![
            $($crate::strategy::arm($weight, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(...)]` and parameters of the form
/// `pattern in strategy` or `name: type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bind!(__rng, $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "property {} failed at case {}: {}",
                        stringify!($name),
                        __case,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(,)?) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $pat:pat in $strat:expr $(,)?) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l,
                __r,
                ::std::format!($($fmt)+)
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = crate::test_runner::TestRng::deterministic("x", 0);
        let mut b = crate::test_runner::TestRng::deterministic("x", 0);
        let mut c = crate::test_runner::TestRng::deterministic("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, n in -5i32..=5, flag in any::<bool>()) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&n));
            prop_assert_eq!(u8::from(flag) <= 1, true);
        }

        #[test]
        fn oneof_draws_every_arm(picks in prop::collection::vec(prop_oneof![
            3 => (10u32..20).prop_map(|x| x * 2),
            1 => Just(1u32),
        ], 64..65)) {
            for &p in &picks {
                prop_assert!(p == 1 || (20..40).contains(&p), "p was {}", p);
            }
            // 64 draws at 3:1 odds hit both arms with overwhelming
            // probability — and the RNG is deterministic, so no flake risk.
            prop_assert!(picks.contains(&1), "light arm never drawn");
            prop_assert!(picks.iter().any(|&p| p != 1), "heavy arm never drawn");
        }

        #[test]
        fn vec_strategy_respects_length(v in prop::collection::vec((0u8..3, 0usize..64), 1..30),
                                        seed: u64) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for &(a, b) in &v {
                prop_assert!(a < 3);
                prop_assert!(b < 64, "b was {}", b);
            }
            prop_assert_eq!(seed, seed);
        }
    }
}
