//! Vendored minimal stand-in for `serde_json` (offline build).
//!
//! Renders the [`serde::Value`] tree produced by the vendored `serde`
//! crate as JSON text. Output is deterministic: struct fields appear in
//! declaration order and floats use Rust's shortest round-trip formatting.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Serialization error. The vendored serializer is infallible in practice;
/// the type exists so call sites keep serde_json's `Result` shape.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting
                // (e.g. `1.0`, not `1`), which is what JSON needs.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fibo".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"fibo","xs":[1,2.5],"empty":[]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.starts_with("{\n  \"name\": \"fibo\",\n  \"xs\": [\n    1,"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }
}
