//! Vendored minimal stand-in for `serde_json` (offline build).
//!
//! Renders the [`serde::Value`] tree produced by the vendored `serde`
//! crate as JSON text. Output is deterministic: struct fields appear in
//! declaration order and floats use Rust's shortest round-trip formatting.
//! [`from_str`] parses JSON text back into a [`Value`] tree (used by the
//! SchedScope trace round-trip tests).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;

/// Serialization error. The vendored serializer is infallible in practice;
/// the type exists so call sites keep serde_json's `Result` shape.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: ?Sized + serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar (objects, arrays, strings with escapes
/// including `\uXXXX` surrogate pairs, numbers, booleans, null). Numbers
/// without a fraction/exponent parse as `UInt`/`Int`; everything else as
/// `Float`. Used by the trace round-trip tests to re-read exported
/// Chrome-trace files.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(n)
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let mut code = self.hex4()?;
                            // Combine a UTF-16 surrogate pair.
                            if (0xD800..0xDC00).contains(&code)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => {
                    if c < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c as char);
                    self.pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(n) = stripped.parse::<i64>().map(|v| -v) {
                    return Ok(Value::Int(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting
                // (e.g. `1.0`, not `1`), which is what JSON needs.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fibo".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"fibo","xs":[1,2.5],"empty":[]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.starts_with("{\n  \"name\": \"fibo\",\n  \"xs\": [\n    1,"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(to_string(&"a\"b\\c\nd").unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_round_trip() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips_renderer_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fi\"bo\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(2.5), Value::Int(-3)]),
            ),
            ("none".into(), Value::Null),
            ("ok".into(), Value::Bool(true)),
            ("empty".into(), Value::Object(vec![])),
        ]);
        assert_eq!(from_str(&to_string(&v).unwrap()).unwrap(), v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
    }

    #[test]
    fn parse_escapes_and_numbers() {
        let v = from_str(r#"{"s":"aé😀\t/","n":-4.5e2}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("aé😀\t/"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-450.0));
        assert_eq!(from_str("17").unwrap().as_u64(), Some(17));
        // \uXXXX escapes, including a UTF-16 surrogate pair.
        assert_eq!(
            from_str("\"\\u0041\\ud83d\\ude00\"").unwrap().as_str(),
            Some("A😀")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("true false").is_err());
        assert!(from_str(r#""unterminated"#).is_err());
    }
}
