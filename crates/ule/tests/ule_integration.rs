//! ULE integration tests: the §2.2/§5/§6 behaviours under the simulated
//! kernel — starvation of batch threads, fork inheritance, timeslices,
//! one-thread-per-core placement, slow-but-exact balancing.

use kernel::{cpu_hog, from_fn, spinner, Action, AppSpec, Kernel, SimConfig, ThreadSpec};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use ule::Ule;

fn ule_kernel(topo: Topology) -> Kernel {
    let sched = Box::new(Ule::new(&topo));
    Kernel::new(topo, SimConfig::frictionless(7), sched)
}

/// An interactive worker: runs briefly, sleeps longer (≈25% duty cycle).
fn interactive_worker() -> Box<dyn kernel::Behavior> {
    from_fn({
        let mut phase = false;
        move |_ctx| {
            phase = !phase;
            if phase {
                Action::Run(Dur::micros(500))
            } else {
                Action::Sleep(Dur::micros(1500))
            }
        }
    })
}

#[test]
fn interactive_threads_starve_batch() {
    // §5.1: enough interactive threads to saturate the core give the batch
    // thread (fibo) essentially zero CPU, for an unbounded time.
    let mut k = ule_kernel(Topology::single_core());
    let workers = (0..20)
        .map(|i| {
            ThreadSpec::new(format!("w{i}"), interactive_worker())
                .with_history(Dur::ZERO, Dur::secs(2))
        })
        .collect();
    let _srv = k.queue_app(Time::ZERO, AppSpec::new("interactive", workers));
    let hog = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "fibo",
            vec![ThreadSpec::new(
                "fibo",
                cpu_hog(Dur::secs(30), Dur::millis(10)),
            )],
        ),
    );
    // Give fibo a 2s head start in classification terms: run the sim 5s.
    k.run_until(Time::ZERO + Dur::secs(5));
    let fibo_tid = k.app_tasks(hog)[0];
    let fibo_runtime = k.task_runtime(fibo_tid);
    let snap = k.snapshot(fibo_tid);
    assert_eq!(snap.interactive, Some(false), "fibo must be batch");
    assert!(
        snap.ule_penalty.unwrap() >= 90,
        "fibo penalty should max out: {:?}",
        snap.ule_penalty
    );
    // 20 workers at 25% duty want 5 cores; fibo gets almost nothing.
    assert!(
        fibo_runtime < Dur::millis(500),
        "fibo should starve, got {fibo_runtime} of 5s"
    );
}

#[test]
fn cfs_vs_ule_contrast_workers_stay_interactive() {
    let mut k = ule_kernel(Topology::single_core());
    let workers = (0..20)
        .map(|i| {
            ThreadSpec::new(format!("w{i}"), interactive_worker())
                .with_history(Dur::ZERO, Dur::secs(2))
        })
        .collect();
    let srv = k.queue_app(Time::ZERO, AppSpec::new("interactive", workers));
    let _hog = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "fibo",
            vec![ThreadSpec::new(
                "fibo",
                cpu_hog(Dur::secs(30), Dur::millis(10)),
            )],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(5));
    // Workers' penalty drops toward 0 and they stay interactive (Fig. 2).
    for &t in &k.app_tasks(srv) {
        let snap = k.snapshot(t);
        assert_eq!(
            snap.interactive,
            Some(true),
            "worker declassified: {snap:?}"
        );
        assert!(snap.ule_penalty.unwrap() < 30);
    }
}

#[test]
fn batch_threads_share_via_calendar() {
    // Two pure hogs on one core must make comparable progress (ULE is fair
    // among batch threads via the rotating calendar queue).
    let mut k = ule_kernel(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hogs",
            vec![
                ThreadSpec::new("a", cpu_hog(Dur::secs(10), Dur::millis(20))),
                ThreadSpec::new("b", cpu_hog(Dur::secs(10), Dur::millis(20))),
            ],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(4));
    let tids = k.app_tasks(app);
    let ra = k.task_runtime(tids[0]).as_secs_f64();
    let rb = k.task_runtime(tids[1]).as_secs_f64();
    assert!(
        (ra + rb - 4.0).abs() < 0.1,
        "core must stay busy: {ra}+{rb}"
    );
    assert!(
        (ra - rb).abs() < 0.8,
        "batch threads should share comparably: {ra:.2} vs {rb:.2}"
    );
}

#[test]
fn timeslice_shrinks_with_load() {
    // With 2 runnable hogs the slice is ~39ms; context switches should
    // happen on that cadence, not the 78ms lone-thread slice.
    let mut k = ule_kernel(Topology::single_core());
    let _app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hogs",
            (0..2)
                .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::secs(10), Dur::millis(500))))
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(2));
    let switches = k.counters().ctx_switches;
    // 2s / 39.4ms ≈ 50 slice expiries; allow broad tolerance.
    assert!(
        (30..=80).contains(&switches),
        "expected ~50 slice switches in 2s, got {switches}"
    );
}

#[test]
fn no_wakeup_preemption_for_timeshare() {
    // A waking interactive thread must NOT preempt the running batch
    // thread; it waits for the slice/tick boundary (§5.3 apache analysis).
    let mut k = ule_kernel(Topology::single_core());
    let _hog = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new(
                "hog",
                cpu_hog(Dur::secs(5), Dur::millis(200)),
            )],
        ),
    );
    let napper = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "napper",
            vec![ThreadSpec::new(
                "napper",
                kernel::from_fn({
                    let mut state = 0u32;
                    let mut due = Time::ZERO;
                    move |ctx| {
                        state += 1;
                        match state {
                            1 => {
                                due = ctx.now + Dur::millis(100);
                                Action::Sleep(Dur::millis(100))
                            }
                            2 => Action::RecordLatency(ctx.now.saturating_since(due)),
                            3 => Action::Run(Dur::millis(1)),
                            _ => Action::Exit,
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(2))],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(1));
    let lat = k.app(napper).avg_latency().expect("napper ran");
    // ULE makes the waker wait: the latency is roughly the remaining
    // timeslice (up to ~39ms for load 2), never sub-millisecond.
    assert!(
        lat >= Dur::millis(1),
        "ULE must not preempt on wakeup; latency {lat}"
    );
    assert!(lat <= Dur::millis(80), "but it runs within a slice: {lat}");
}

#[test]
fn hpc_threads_get_one_core_each_and_stay() {
    // §6.3 (MG): "ULE correctly places one thread per core, and then never
    // migrates them again."
    let mut k = ule_kernel(Topology::flat(4));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "mg",
            (0..4)
                .map(|i| ThreadSpec::new(format!("t{i}"), cpu_hog(Dur::secs(2), Dur::millis(10))))
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(1));
    for c in 0..4 {
        assert_eq!(k.nr_queued(CpuId(c)), 1, "exactly one thread per core");
    }
    assert_eq!(
        k.counters().migrations,
        0,
        "no migrations for a balanced HPC app"
    );
    k.run_until_apps_done(Time::ZERO + Dur::secs(10));
    assert!(k.app(app).elapsed().unwrap() < Dur::millis(2200));
}

#[test]
fn idle_steal_takes_exactly_one() {
    // Mini Figure 6, ULE side: spinners pinned to core 0, unpinned: each
    // idle core steals exactly one, leaving the rest on core 0.
    let mut k = ule_kernel(Topology::flat(4));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin",
            (0..32)
                .map(|i| {
                    ThreadSpec::new(format!("s{i}"), spinner(Dur::millis(4))).pinned(vec![CpuId(0)])
                })
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::millis(100));
    k.queue_unpin(k.now(), app);
    // Shortly after the unpin: idle steals moved exactly one per idle core.
    k.run_until(k.now() + Dur::millis(50));
    let c0 = k.nr_queued(CpuId(0));
    assert_eq!(
        c0,
        32 - 3,
        "3 idle cores steal one each; core 0 keeps the rest"
    );
    for c in 1..4 {
        assert_eq!(k.nr_queued(CpuId(c)), 1);
    }
}

#[test]
fn periodic_balancer_moves_one_thread_per_invocation() {
    // After the idle steals, only core 0's periodic balancer (every
    // 0.5-1.5s) moves one more thread per invocation — convergence is slow
    // (the paper measures ~240s for 512 threads).
    let mut k = ule_kernel(Topology::flat(4));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin",
            (0..32)
                .map(|i| {
                    ThreadSpec::new(format!("s{i}"), spinner(Dur::millis(4))).pinned(vec![CpuId(0)])
                })
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::millis(100));
    k.queue_unpin(k.now(), app);
    k.run_until(k.now() + Dur::secs(5));
    // ~5s: at most ~10 balancer invocations → core 0 still has most
    // threads, i.e. visibly not yet converged (contrast with CFS).
    let c0 = k.nr_queued(CpuId(0));
    assert!(
        (15..=28).contains(&c0),
        "ULE rebalancing should be slow: core0 still has {c0}/32"
    );
}

#[test]
fn fork_inherits_interactivity() {
    // §5.2: children forked while the master is still interactive start
    // interactive; children forked after its penalty rose start batch.
    let mut k = ule_kernel(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "forky",
            vec![ThreadSpec::new(
                "master",
                from_fn({
                    let mut step = 0u32;
                    move |_ctx| {
                        step += 1;
                        match step {
                            // Immediately spawn one child (interactive
                            // inheritance from the bash-like history)...
                            1 => Action::Spawn(ThreadSpec::new(
                                "early",
                                cpu_hog(Dur::millis(100), Dur::millis(10)),
                            )),
                            // ...then burn 3s of CPU without sleeping...
                            2 => Action::Run(Dur::secs(3)),
                            // ...then spawn another child.
                            3 => Action::Spawn(ThreadSpec::new(
                                "late",
                                cpu_hog(Dur::millis(100), Dur::millis(10)),
                            )),
                            _ => Action::Exit,
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(4))],
        ),
    );
    // Sample right after each spawn.
    k.run_until(Time::ZERO + Dur::millis(5));
    let tids = k.app_tasks(app);
    assert_eq!(tids.len(), 2, "master + early child");
    let early = tids[1];
    assert_eq!(
        k.snapshot(early).interactive,
        Some(true),
        "child of a sleep-heavy parent starts interactive"
    );
    k.run_until(Time::ZERO + Dur::secs(8));
    let tids = k.app_tasks(app);
    assert_eq!(tids.len(), 3, "late child spawned");
    // The late child was forked from a parent whose 3s run dominated the
    // history: it starts batch.
    let late = tids[2];
    let late_snap = k.snapshot(late);
    // The late child may have exited already; if its state is gone the
    // snapshot is empty — re-run with a longer hog if so.
    if let Some(interactive) = late_snap.interactive {
        assert!(!interactive, "late child must inherit batch: {late_snap:?}");
    }
}

#[test]
fn exit_refunds_runtime_to_parent() {
    // A parent that mostly sleeps but spawns CPU-heavy children gets
    // penalised when they die.
    let mut k = ule_kernel(Topology::flat(2));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "forky",
            vec![ThreadSpec::new(
                "master",
                from_fn({
                    let mut step = 0u32;
                    move |_ctx| {
                        step += 1;
                        match step {
                            1 => Action::Spawn(ThreadSpec::new(
                                "worker",
                                cpu_hog(Dur::secs(2), Dur::millis(20)),
                            )),
                            2 => Action::Sleep(Dur::millis(3500)),
                            3 => Action::Run(Dur::millis(1)),
                            _ => Action::Exit,
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(4))],
        ),
    );
    let master = {
        k.run_until(Time::ZERO + Dur::millis(1));
        k.app_tasks(app)[0]
    };
    let before = k.snapshot(master).ule_penalty.unwrap();
    // Sample while the master is still alive (it sleeps until 3.5s; the
    // worker exits and refunds its 2s of runtime at ~2s).
    k.run_until(Time::ZERO + Dur::millis(3200));
    let after = k.snapshot(master).ule_penalty.unwrap();
    assert!(
        after > before,
        "child exit must charge runtime to the parent: {before} → {after}"
    );
}
