//! Property tests of ULE's interactivity machinery and runqueues.

use proptest::prelude::*;
use sched_api::Tid;
use simcore::Dur;
use ule::interactivity::Interactivity;
use ule::params::UleParams;
use ule::runq::{BatchRunq, PrioRunq};

proptest! {
    /// The penalty is always within [0, 100] and the history window stays
    /// bounded, for any interleaving of run/sleep updates.
    #[test]
    fn penalty_bounds_and_window(ops in prop::collection::vec((any::<bool>(), 1u64..500), 1..200)) {
        let p = UleParams::default();
        let mut i = Interactivity::new();
        for (is_run, ms) in ops {
            if is_run {
                i.add_run(Dur::millis(ms), &p);
            } else {
                i.add_sleep(Dur::millis(ms), &p);
            }
            prop_assert!(i.penalty() <= 100);
            // The decaying window keeps the history bounded near its max.
            prop_assert!(i.runtime + i.slptime <= p.slp_run_max * 2 + Dur::millis(500));
        }
    }

    /// More sleeping never *raises* the penalty (monotonicity in s).
    #[test]
    fn penalty_monotone_in_sleep(r in 1u64..5000, s in 1u64..5000, extra in 1u64..1000) {
        let base = Interactivity { runtime: Dur::millis(r), slptime: Dur::millis(s) };
        let more = Interactivity { runtime: Dur::millis(r), slptime: Dur::millis(s + extra) };
        prop_assert!(more.penalty() <= base.penalty(),
            "sleep must not increase the penalty: {} vs {}", more.penalty(), base.penalty());
    }

    /// Fork preserves the classification direction: a child of an
    /// interactive parent starts interactive.
    #[test]
    fn fork_preserves_classification(r in 0u64..4000, s in 0u64..4000) {
        let p = UleParams::default();
        let parent = Interactivity { runtime: Dur::millis(r), slptime: Dur::millis(s) };
        let child = Interactivity::fork_from(&parent, &p);
        prop_assert_eq!(child.penalty(), parent.penalty());
    }

    /// The interactive priority runqueue is conservation-safe: everything
    /// pushed pops exactly once, highest priority first.
    #[test]
    fn prio_runq_conservation(items in prop::collection::vec(0usize..48, 1..200)) {
        let mut q = PrioRunq::new(48);
        for (i, &pri) in items.iter().enumerate() {
            q.push(pri, Tid(i as u32));
        }
        prop_assert_eq!(q.len(), items.len());
        let mut last_pri = 0usize;
        let mut popped = 0;
        while let Some(t) = q.pop() {
            let pri = items[t.0 as usize];
            prop_assert!(pri >= last_pri, "priority order violated");
            last_pri = pri;
            popped += 1;
        }
        prop_assert_eq!(popped, items.len());
    }

    /// The batch calendar never loses or duplicates tasks under arbitrary
    /// push/pop/clock interleavings.
    #[test]
    fn batch_runq_conservation(ops in prop::collection::vec((0u8..3, 0usize..64), 1..300)) {
        let mut q = BatchRunq::new();
        let mut next = 0u32;
        let mut inside = std::collections::HashSet::new();
        for (op, pri) in ops {
            match op {
                0 => {
                    q.push(pri, Tid(next));
                    inside.insert(next);
                    next += 1;
                }
                1 => {
                    if let Some(t) = q.pop() {
                        prop_assert!(inside.remove(&t.0), "popped unknown task");
                    }
                }
                _ => q.clock(),
            }
            prop_assert_eq!(q.len(), inside.len());
        }
        while let Some(t) = q.pop() {
            prop_assert!(inside.remove(&t.0));
        }
        prop_assert!(inside.is_empty());
    }
}
