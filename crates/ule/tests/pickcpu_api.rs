//! Direct tests of ULE's `sched_pickcpu` through the scheduling-class API.

use sched_api::{
    EnqueueKind, GroupId, Scheduler, SelectStats, Task, TaskState, TaskTable, Tid, WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};
use ule::Ule;

fn mk_task(tasks: &mut TaskTable, ule: &mut Ule, name: &str, now: Time) -> Tid {
    let tid = tasks.insert_with(|t| Task::new(t, name, GroupId(1)));
    ule.task_fork(tasks, tid, None, now);
    tid
}

fn enqueue_on(tasks: &mut TaskTable, ule: &mut Ule, tid: Tid, cpu: CpuId, now: Time) {
    let t = tasks.get_mut(tid);
    t.cpu = cpu;
    t.state = TaskState::Runnable;
    t.on_rq = true;
    ule.enqueue_task(tasks, cpu, tid, EnqueueKind::New, now);
}

#[test]
fn new_tasks_go_to_least_loaded_cpu() {
    let topo = Topology::flat(4);
    let mut ule = Ule::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    // Pre-load cpu0 with two tasks and cpu1 with one.
    for (cpu, n) in [(CpuId(0), 2), (CpuId(1), 1)] {
        for i in 0..n {
            let t = mk_task(&mut tasks, &mut ule, &format!("bg{cpu}-{i}"), now);
            enqueue_on(&mut tasks, &mut ule, t, cpu, now);
        }
    }
    let fresh = mk_task(&mut tasks, &mut ule, "fresh", now);
    let mut stats = SelectStats::default();
    let target = ule.select_task_rq(&tasks, fresh, WakeKind::New, CpuId(0), now, &mut stats);
    assert!(
        target == CpuId(2) || target == CpuId(3),
        "must pick an empty CPU, got {target}"
    );
    assert!(stats.cpus_scanned > 0);
}

#[test]
fn affine_idle_shortcut_returns_last_cpu() {
    let topo = Topology::flat(4);
    let mut ule = Ule::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let t = mk_task(&mut tasks, &mut ule, "t", now);
    {
        let tt = tasks.get_mut(t);
        tt.last_cpu = CpuId(2);
        tt.last_ran = now; // ran just now → cache affine
        tt.state = TaskState::Sleeping;
    }
    let mut stats = SelectStats::default();
    let target = ule.select_task_rq(
        &tasks,
        t,
        WakeKind::Wakeup { waker: None },
        CpuId(0),
        now + Dur::millis(5),
        &mut stats,
    );
    assert_eq!(target, CpuId(2), "idle + affine → last CPU");
    assert_eq!(stats.cpus_scanned, 1, "the shortcut scans one CPU");
}

#[test]
fn affinity_expires_with_time() {
    let topo = Topology::flat(2);
    let mut ule = Ule::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let t = mk_task(&mut tasks, &mut ule, "t", now);
    {
        let tt = tasks.get_mut(t);
        tt.last_cpu = CpuId(1);
        tt.last_ran = now;
        tt.state = TaskState::Sleeping;
    }
    // Long after the affinity window, the full search runs (more scans).
    let much_later = now + Dur::secs(5);
    let mut stats = SelectStats::default();
    let _ = ule.select_task_rq(
        &tasks,
        t,
        WakeKind::Wakeup { waker: None },
        CpuId(0),
        much_later,
        &mut stats,
    );
    assert!(
        stats.cpus_scanned >= 2,
        "stale affinity → wider scan, got {}",
        stats.cpus_scanned
    );
}

#[test]
fn worst_case_scans_the_machine_multiple_times() {
    // The §6.3 sysbench pathology: every CPU already runs something more
    // urgent, so all passes fail through to the final least-loaded scan.
    let topo = Topology::opteron_6172();
    let mut ule = Ule::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    // Put an interactive-classified task on every CPU.
    for cpu in topo.all_cpus() {
        let t = tasks.insert_with(|t| Task::new(t, format!("srv{cpu}"), GroupId(1)));
        // Give it a sleep-heavy history → interactive, very urgent.
        tasks.get_mut(t).inherit_history = Some((Dur::ZERO, Dur::secs(2)));
        ule.task_fork(&tasks, t, None, now);
        enqueue_on(&mut tasks, &mut ule, t, cpu, now);
    }
    // A woken interactive thread with no affinity: passes 1 and 2 find no
    // CPU where it would be most urgent, pass 3 scans again.
    let woken = tasks.insert_with(|t| Task::new(t, "woken", GroupId(1)));
    tasks.get_mut(woken).inherit_history = Some((Dur::ZERO, Dur::secs(2)));
    ule.task_fork(&tasks, woken, None, now);
    {
        let tt = tasks.get_mut(woken);
        tt.state = TaskState::Sleeping;
        tt.last_ran = now;
        tt.sleep_start = now;
    }
    let later = now + Dur::secs(1); // affinity expired
    let mut stats = SelectStats::default();
    let _ = ule.select_task_rq(
        &tasks,
        woken,
        WakeKind::Wakeup { waker: None },
        CpuId(0),
        later,
        &mut stats,
    );
    assert!(
        stats.cpus_scanned >= 2 * topo.nr_cpus() as u32,
        "pathological wakeups scan the machine repeatedly: {}",
        stats.cpus_scanned
    );
}

#[test]
fn interactive_queue_is_served_before_batch() {
    let topo = Topology::single_core();
    let mut ule = Ule::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    // A batch task (CPU-heavy history) and an interactive one.
    let batch = tasks.insert_with(|t| Task::new(t, "batch", GroupId(1)));
    tasks.get_mut(batch).inherit_history = Some((Dur::secs(3), Dur::millis(1)));
    ule.task_fork(&tasks, batch, None, now);
    enqueue_on(&mut tasks, &mut ule, batch, CpuId(0), now);

    let inter = tasks.insert_with(|t| Task::new(t, "inter", GroupId(1)));
    tasks.get_mut(inter).inherit_history = Some((Dur::ZERO, Dur::secs(3)));
    ule.task_fork(&tasks, inter, None, now);
    enqueue_on(&mut tasks, &mut ule, inter, CpuId(0), now);

    let picked = ule.pick_next_task(&mut tasks, CpuId(0), now).unwrap();
    assert_eq!(picked, inter, "interactive runqueue has absolute priority");
    let snap_b = ule.snapshot(&tasks, batch);
    let snap_i = ule.snapshot(&tasks, inter);
    assert_eq!(snap_b.interactive, Some(false));
    assert_eq!(snap_i.interactive, Some(true));
}
