//! The interactivity metric (§2.2).
//!
//! ULE classifies threads by how much they voluntarily sleep versus run,
//! over a sliding window of (by default) the last 5 seconds:
//!
//! ```text
//! penalty(r, s) = m·r/s            if s > r        (0..=50)
//!                 m + (m − m·s/r)  if r > s        (50..=100)
//!                 m                if r == s > 0
//! ```
//!
//! with `m = 50`. A thread whose `penalty + nice` is below the threshold
//! (30) is interactive and gets absolute priority over batch threads.
//!
//! **Note on the paper's formula**: the paper prints the batch half as
//! `m/(r/s) + m`, which would *decrease* from 100 to 50 as `r` grows; the
//! FreeBSD 11.1 code (`sched_interact_score`) computes
//! `m + (m − m·s/r)`, which *rises* toward 100 — and that is also what the
//! paper's own Figure 2 shows (fibo's penalty rises to the maximum). We
//! implement the code's semantics. See DESIGN.md.

use simcore::{Dur, Time};

use crate::params::{UleParams, INTERACT_HALF, INTERACT_MAX};

/// Sleep/run history of one thread (`ts_runtime` / `ts_slptime`).
#[derive(Debug, Clone, Default)]
pub struct Interactivity {
    /// Voluntary-run time in the window.
    pub runtime: Dur,
    /// Voluntary-sleep time in the window.
    pub slptime: Dur,
}

impl Interactivity {
    /// Fresh history (penalty 0: no run, no sleep).
    pub fn new() -> Interactivity {
        Interactivity::default()
    }

    /// The interactivity penalty in `[0, 100]` (`sched_interact_score`).
    pub fn penalty(&self) -> u64 {
        let r = self.runtime.as_nanos();
        let s = self.slptime.as_nanos();
        let m = INTERACT_HALF;
        if r > s {
            // max(1, r/m) keeps the division exact in the C code; the
            // closed form is m + (m - m*s/r).
            let div = (r / m).max(1);
            (m + (m - (s / div).min(m))).min(INTERACT_MAX)
        } else if s > r {
            let div = (s / m).max(1);
            (r / div).min(m)
        } else if r > 0 {
            m
        } else {
            0
        }
    }

    /// Score used for classification: `penalty + nice`, floored at 0.
    pub fn score(&self, nice: i32) -> i64 {
        (self.penalty() as i64 + nice as i64).max(0)
    }

    /// `true` if the thread classifies as interactive.
    pub fn is_interactive(&self, nice: i32, p: &UleParams) -> bool {
        self.score(nice) < p.interact_thresh
    }

    /// Add CPU time to the history and re-clamp the window.
    pub fn add_run(&mut self, d: Dur, p: &UleParams) {
        self.runtime += d;
        self.update(p);
    }

    /// Add voluntary sleep time to the history and re-clamp the window.
    pub fn add_sleep(&mut self, d: Dur, p: &UleParams) {
        self.slptime += d;
        self.update(p);
    }

    /// `sched_interact_update`: keep the history within the 5 s window,
    /// decaying it so recent behaviour dominates.
    pub fn update(&mut self, p: &UleParams) {
        let max = p.slp_run_max.as_nanos();
        let sum = self.runtime.as_nanos() + self.slptime.as_nanos();
        if sum < max {
            return;
        }
        if sum > max * 2 {
            // An unusual burst: clamp the dominant side to the window.
            if self.runtime > self.slptime {
                self.runtime = p.slp_run_max;
                self.slptime = Dur::nanos(1);
            } else {
                self.slptime = p.slp_run_max;
                self.runtime = Dur::nanos(1);
            }
            return;
        }
        if sum > max / 5 * 6 {
            self.runtime = self.runtime / 2;
            self.slptime = self.slptime / 2;
            return;
        }
        self.runtime = self.runtime / 5 * 4;
        self.slptime = self.slptime / 5 * 4;
    }

    /// `sched_interact_fork`: a child inherits the parent's history,
    /// scaled down so it cannot dominate the child's own behaviour.
    pub fn fork_from(parent: &Interactivity, p: &UleParams) -> Interactivity {
        let mut child = parent.clone();
        let sum = child.runtime.as_nanos() + child.slptime.as_nanos();
        let clamp = p.slp_run_fork.as_nanos();
        if sum > clamp {
            let ratio = sum / clamp;
            child.runtime = child.runtime / ratio;
            child.slptime = child.slptime / ratio;
        }
        child
    }
}

/// Decaying CPU-usage estimator for batch priorities (`ts_ticks` /
/// `sched_pctcpu`): roughly the fraction of the last ~10 s spent on CPU.
#[derive(Debug, Clone)]
pub struct PctCpu {
    last: Time,
    /// Accumulated run time, decayed toward the window.
    val: Dur,
}

impl PctCpu {
    /// Start empty.
    pub fn new(now: Time) -> PctCpu {
        PctCpu {
            last: now,
            val: Dur::ZERO,
        }
    }

    /// Account `d` of CPU time ending at `now`.
    pub fn add_run(&mut self, now: Time, d: Dur, p: &UleParams) {
        self.decay(now, p);
        self.val = (self.val + d).min(p.pctcpu_window);
    }

    fn decay(&mut self, now: Time, p: &UleParams) {
        let elapsed = now.saturating_since(self.last);
        self.last = now;
        // Halve per half-window elapsed (cheap geometric decay).
        let half = (p.pctcpu_window / 2).max(Dur::millis(1));
        let halvings = elapsed / half;
        if halvings >= 63 {
            self.val = Dur::ZERO;
        } else {
            self.val = Dur(self.val.as_nanos() >> halvings);
        }
    }

    /// Usage fraction in `[0, 1024]` over the window.
    pub fn frac(&mut self, now: Time, p: &UleParams) -> u64 {
        self.decay(now, p);
        (self.val.as_nanos() * 1024 / p.pctcpu_window.as_nanos().max(1)).min(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> UleParams {
        UleParams::default()
    }

    #[test]
    fn penalty_zero_for_pure_sleeper() {
        let mut i = Interactivity::new();
        i.add_sleep(Dur::secs(2), &p());
        assert_eq!(i.penalty(), 0);
        assert!(i.is_interactive(0, &p()));
    }

    #[test]
    fn penalty_rises_to_max_for_pure_runner() {
        let mut i = Interactivity::new();
        i.add_run(Dur::secs(2), &p());
        assert!(i.penalty() >= 99, "penalty {}", i.penalty());
        assert!(!i.is_interactive(0, &p()));
    }

    #[test]
    fn penalty_50_at_equal_run_sleep() {
        let mut i = Interactivity::new();
        i.runtime = Dur::secs(1);
        i.slptime = Dur::secs(1);
        assert_eq!(i.penalty(), 50);
    }

    #[test]
    fn threshold_is_60_percent_sleep() {
        // §2.2: score 30 "corresponds roughly to spending more than 60% of
        // the time sleeping": r/s = 0.6/0.4? penalty = 50·r/s with s>r:
        // penalty<30 ⟺ r/s < 0.6 ⟺ s > 62.5% of total.
        let mut i = Interactivity::new();
        i.runtime = Dur::millis(370);
        i.slptime = Dur::millis(630);
        assert!(i.is_interactive(0, &p()), "37/63 → {}", i.penalty());
        let mut j = Interactivity::new();
        j.runtime = Dur::millis(400);
        j.slptime = Dur::millis(600);
        assert!(!j.is_interactive(0, &p()), "40/60 → {}", j.penalty());
    }

    #[test]
    fn negative_nice_makes_interactive_easier() {
        let mut i = Interactivity::new();
        i.runtime = Dur::millis(400);
        i.slptime = Dur::millis(600);
        assert!(!i.is_interactive(0, &p()));
        assert!(i.is_interactive(-10, &p()));
    }

    #[test]
    fn window_clamps_history() {
        let mut i = Interactivity::new();
        for _ in 0..100 {
            i.add_run(Dur::millis(200), &p());
        }
        let sum = i.runtime + i.slptime;
        assert!(sum <= p().slp_run_max, "window exceeded: {sum}");
    }

    #[test]
    fn recent_behavior_dominates_after_decay() {
        let mut i = Interactivity::new();
        i.add_run(Dur::secs(4), &p()); // batch history
        assert!(!i.is_interactive(0, &p()));
        // Now it sleeps a lot; the decaying window lets it become
        // interactive again.
        for _ in 0..40 {
            i.add_sleep(Dur::millis(500), &p());
        }
        assert!(
            i.is_interactive(0, &p()),
            "should recover: penalty {}",
            i.penalty()
        );
    }

    #[test]
    fn fork_scales_history_down() {
        let mut parent = Interactivity::new();
        parent.runtime = Dur::secs(4);
        parent.slptime = Dur::secs(4);
        let child = Interactivity::fork_from(&parent, &p());
        // FreeBSD's integer ratio (`sum / SCHED_SLP_RUN_FORK`) brings the
        // sum below 2× the clamp (not below the clamp itself).
        assert!(child.runtime + child.slptime < p().slp_run_fork * 2);
        assert!(child.runtime < parent.runtime);
        // Ratio (and thus the penalty) is preserved.
        assert_eq!(child.penalty(), parent.penalty());
    }

    #[test]
    fn penalty_bounds_hold() {
        // Property-ish sweep: penalty is always within [0, 100].
        for r in [0u64, 1, 10, 100, 5000] {
            for s in [0u64, 1, 10, 100, 5000] {
                let i = Interactivity {
                    runtime: Dur::millis(r),
                    slptime: Dur::millis(s),
                };
                assert!(i.penalty() <= 100, "r={r} s={s} → {}", i.penalty());
            }
        }
    }

    #[test]
    fn pctcpu_tracks_usage() {
        let prm = p();
        let mut c = PctCpu::new(Time::ZERO);
        let mut t = Time::ZERO;
        // Run flat out for 10 s.
        for _ in 0..100 {
            t += Dur::millis(100);
            c.add_run(t, Dur::millis(100), &prm);
        }
        assert!(c.frac(t, &prm) > 700);
        // Go idle for 20 s: decays away.
        let later = t + Dur::secs(20);
        assert!(c.frac(later, &prm) < 200);
    }
}
