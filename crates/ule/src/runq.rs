//! ULE's runqueues.
//!
//! §2.2: "Inside the interactive and batch runqueues, threads are further
//! sorted by priority. (...) there is one FIFO per priority. To add a
//! thread, the scheduler inserts it at the end of the FIFO indexed by the
//! thread's priority. Picking a thread is simply done by taking the first
//! thread in the highest-priority non-empty FIFO."
//!
//! The batch runqueue additionally uses FreeBSD's *calendar* rotation
//! (`tdq_idx`/`tdq_ridx`): insertion indices rotate over time so that every
//! batch thread periodically reaches the head regardless of priority —
//! "ULE tries to be fair among batch threads by minimizing the difference
//! of runtime between threads".

use std::collections::VecDeque;

use sched_api::Tid;

use crate::params::RQ_NQS;

/// A strict priority-FIFO runqueue (the interactive queue).
#[derive(Debug)]
pub struct PrioRunq {
    queues: Vec<VecDeque<Tid>>,
    len: usize,
}

impl PrioRunq {
    /// Runqueue with `levels` priority FIFOs (0 = most urgent).
    pub fn new(levels: usize) -> PrioRunq {
        PrioRunq {
            queues: (0..levels).map(|_| VecDeque::new()).collect(),
            len: 0,
        }
    }

    /// Append at the tail of the FIFO for `prio`.
    pub fn push(&mut self, prio: usize, tid: Tid) {
        self.queues[prio].push_back(tid);
        self.len += 1;
    }

    /// Pop from the highest-priority (lowest index) non-empty FIFO.
    pub fn pop(&mut self) -> Option<Tid> {
        for q in &mut self.queues {
            if let Some(t) = q.pop_front() {
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }

    /// Peek without removing.
    pub fn peek(&self) -> Option<Tid> {
        self.queues.iter().find_map(|q| q.front().copied())
    }

    /// The most urgent priority present.
    pub fn min_prio(&self) -> Option<usize> {
        self.queues.iter().position(|q| !q.is_empty())
    }

    /// Remove a specific task queued at `prio`. Returns `true` if found.
    pub fn remove(&mut self, prio: usize, tid: Tid) -> bool {
        if let Some(i) = self.queues[prio].iter().position(|&t| t == tid) {
            self.queues[prio].remove(i);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// The first task that satisfies `pred`, searching in pick order;
    /// removes and returns it (used for stealing, which must skip pinned
    /// threads).
    pub fn steal(&mut self, mut pred: impl FnMut(Tid) -> bool) -> Option<Tid> {
        for q in &mut self.queues {
            if let Some(i) = q.iter().position(|&t| pred(t)) {
                let t = q.remove(i).expect("present");
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over queued tids, in pick order.
    pub fn iter(&self) -> impl Iterator<Item = Tid> + '_ {
        self.queues.iter().flat_map(|q| q.iter().copied())
    }
}

/// The batch calendar runqueue (`tdq_timeshare` + `tdq_idx`/`tdq_ridx`).
#[derive(Debug)]
pub struct BatchRunq {
    queues: Vec<VecDeque<Tid>>,
    /// Insertion rotation index (`tdq_idx`).
    idx: usize,
    /// Removal index — the oldest non-drained queue (`tdq_ridx`).
    ridx: usize,
    len: usize,
}

impl Default for BatchRunq {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchRunq {
    /// Empty calendar with `RQ_NQS` buckets.
    pub fn new() -> BatchRunq {
        BatchRunq {
            queues: (0..RQ_NQS).map(|_| VecDeque::new()).collect(),
            idx: 0,
            ridx: 0,
            len: 0,
        }
    }

    /// Insert a batch thread whose priority maps to `scaled` ∈
    /// `[0, RQ_NQS)`: lower-priority threads land further from the head
    /// (`tdq_runq_add` for the timeshare queue).
    pub fn push(&mut self, scaled: usize, tid: Tid) {
        debug_assert!(scaled < RQ_NQS);
        let mut pos = (scaled + self.idx) % RQ_NQS;
        // "This queue contains only priorities between MIN and MAX
        // realtime. Use the whole queue to represent these values."
        // Avoid landing exactly on ridx from behind, which would make the
        // thread wait a full rotation.
        if self.ridx != self.idx && pos == self.ridx {
            pos = pos.checked_sub(1).unwrap_or(RQ_NQS - 1);
        }
        self.queues[pos].push_back(tid);
        self.len += 1;
    }

    /// Pop the next batch thread: scan from `ridx` forward
    /// (`runq_choose_from`). Advances `ridx` over drained buckets.
    pub fn pop(&mut self) -> Option<Tid> {
        if self.len == 0 {
            return None;
        }
        for off in 0..RQ_NQS {
            let i = (self.ridx + off) % RQ_NQS;
            if let Some(t) = self.queues[i].pop_front() {
                self.len -= 1;
                return Some(t);
            }
        }
        unreachable!("len > 0 but all buckets empty");
    }

    /// Calendar clock (`sched_clock`): once per scheduler tick, advance the
    /// insertion index when it has caught up with the removal index, and
    /// let the removal index follow when its bucket drained.
    pub fn clock(&mut self) {
        if self.idx == self.ridx {
            self.idx = (self.idx + 1) % RQ_NQS;
            if self.queues[self.ridx].is_empty() {
                self.ridx = self.idx;
            }
        }
    }

    /// Remove a specific task. Returns `true` if found.
    pub fn remove(&mut self, tid: Tid) -> bool {
        for q in &mut self.queues {
            if let Some(i) = q.iter().position(|&t| t == tid) {
                q.remove(i);
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Steal the first matching task in pick order.
    pub fn steal(&mut self, mut pred: impl FnMut(Tid) -> bool) -> Option<Tid> {
        for off in 0..RQ_NQS {
            let i = (self.ridx + off) % RQ_NQS;
            if let Some(pos) = self.queues[i].iter().position(|&t| pred(t)) {
                let t = self.queues[i].remove(pos).expect("present");
                self.len -= 1;
                return Some(t);
            }
        }
        None
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over queued tids in pick order.
    pub fn iter(&self) -> impl Iterator<Item = Tid> + '_ {
        (0..RQ_NQS)
            .map(move |off| (self.ridx + off) % RQ_NQS)
            .flat_map(move |i| self.queues[i].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prio_runq_orders_by_priority_then_fifo() {
        let mut q = PrioRunq::new(8);
        q.push(3, Tid(1));
        q.push(1, Tid(2));
        q.push(3, Tid(3));
        q.push(1, Tid(4));
        assert_eq!(q.min_prio(), Some(1));
        assert_eq!(q.pop(), Some(Tid(2)));
        assert_eq!(q.pop(), Some(Tid(4)));
        assert_eq!(q.pop(), Some(Tid(1)));
        assert_eq!(q.pop(), Some(Tid(3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn prio_runq_remove_and_steal() {
        let mut q = PrioRunq::new(4);
        q.push(0, Tid(1));
        q.push(2, Tid(2));
        assert!(q.remove(0, Tid(1)));
        assert!(!q.remove(0, Tid(1)));
        assert_eq!(q.steal(|t| t == Tid(2)), Some(Tid(2)));
        assert!(q.is_empty());
    }

    #[test]
    fn batch_runq_round_trip() {
        let mut q = BatchRunq::new();
        q.push(0, Tid(1));
        q.push(0, Tid(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(Tid(1)));
        assert_eq!(q.pop(), Some(Tid(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn batch_calendar_gives_lower_priority_later() {
        let mut q = BatchRunq::new();
        q.push(10, Tid(1)); // lower priority → further out
        q.push(0, Tid(2)); // higher priority → at the head
        assert_eq!(q.pop(), Some(Tid(2)));
        assert_eq!(q.pop(), Some(Tid(1)));
    }

    #[test]
    fn batch_calendar_rotation_prevents_starvation() {
        // A low-priority thread queued once must be reachable even while
        // high-priority threads keep being requeued, because the rotation
        // eventually brings its bucket to the removal index.
        let mut q = BatchRunq::new();
        q.push(RQ_NQS - 1, Tid(99)); // worst batch priority
        let mut popped_low = false;
        for _tick in 0..(4 * RQ_NQS) {
            q.push(0, Tid(1));
            let t = q.pop().unwrap();
            if t == Tid(99) {
                popped_low = true;
                break;
            }
            // Requeue the high-priority thread (it "ran"), tick the clock.
            q.clock();
        }
        assert!(popped_low, "calendar rotation must reach the low-prio task");
    }

    #[test]
    fn batch_remove_and_steal() {
        let mut q = BatchRunq::new();
        q.push(5, Tid(7));
        q.push(6, Tid(8));
        assert!(q.remove(Tid(7)));
        assert!(!q.remove(Tid(7)));
        assert_eq!(q.steal(|_| true), Some(Tid(8)));
        assert!(q.is_empty());
    }

    #[test]
    fn iter_matches_pick_order() {
        let mut q = BatchRunq::new();
        q.push(2, Tid(1));
        q.push(1, Tid(2));
        q.push(2, Tid(3));
        let order: Vec<Tid> = q.iter().collect();
        let mut popped = Vec::new();
        while let Some(t) = q.pop() {
            popped.push(t);
        }
        assert_eq!(order, popped);
    }
}
