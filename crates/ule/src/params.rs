//! ULE tunables, matching FreeBSD 11.1 (`kern.sched.*`) and §2.2 of the
//! paper.

use sched_api::params::{Dim, ParamSpace, ParamVector};
use simcore::Dur;

/// Interactivity scale maximum (`SCHED_INTERACT_MAX`).
pub const INTERACT_MAX: u64 = 100;
/// The scaling factor `m` (`SCHED_INTERACT_HALF`).
pub const INTERACT_HALF: u64 = 50;

/// Number of interactive priority levels (FreeBSD's interactive timeshare
/// sub-range). Priority 0 is the most urgent interactive level.
pub const INT_PRIO_LEVELS: i32 = 48;
/// First batch priority level.
pub const BATCH_PRIO_MIN: i32 = INT_PRIO_LEVELS;
/// Number of batch priority levels.
pub const BATCH_PRIO_LEVELS: i32 = 88;
/// One-past-the-last batch priority.
pub const BATCH_PRIO_MAX: i32 = BATCH_PRIO_MIN + BATCH_PRIO_LEVELS - 1;
/// Priority reported for an idle CPU (nothing runnable).
pub const IDLE_PRIO: i32 = 255;

/// Number of circular calendar queues in the batch runqueue (`RQ_NQS`).
pub const RQ_NQS: usize = 64;

/// ULE configuration. Defaults follow FreeBSD 11.1 / §2.2.
#[derive(Debug, Clone)]
pub struct UleParams {
    /// Interactivity classification threshold: "a thread is considered
    /// interactive if its score is under ... 30 by default".
    pub interact_thresh: i64,
    /// Sleep/run history window: "the amount of history kept ... is (by
    /// default) limited to the last 5 seconds" (`SCHED_SLP_RUN_MAX`).
    pub slp_run_max: Dur,
    /// Fork history clamp (`SCHED_SLP_RUN_FORK`).
    pub slp_run_fork: Dur,
    /// Scheduler clock period (FreeBSD `stathz` = 127 Hz → one "tick" is
    /// 1/127 s ≈ 7.87 ms).
    pub stat_tick: Dur,
    /// Timeslice for a lone thread: "when a core executes 1 thread, the
    /// timeslice is 10 ticks (78ms)".
    pub slice_ticks: u64,
    /// Lower bound: "constrained to a lower bound of 1 tick".
    pub slice_min_ticks: u64,
    /// Periodic balancing interval bounds: "every 500-1500ms (the duration
    /// of the period is chosen randomly)".
    pub balance_min: Dur,
    /// Upper bound of the balancing interval.
    pub balance_max: Dur,
    /// Minimum load (including the running thread) a CPU must have before
    /// an idle CPU steals from it (`kern.sched.steal_thresh`).
    pub steal_thresh: usize,
    /// How long after last running on a CPU a thread is considered cache
    /// affine there ("if the thread is considered cache affine on the last
    /// core it ran on, then it is placed on this core").
    pub affinity_window: Dur,
    /// Whether the periodic balancer runs at all. FreeBSD shipped with a
    /// bug making it run only once (the paper’s reference \[1\]); the paper fixed it. Setting this to
    /// `false` reproduces the buggy stock behaviour (ablation).
    pub periodic_balance: bool,
    /// CPU-usage window for batch priorities (`SCHED_TICK_TOTAL` ≈ 10 s).
    pub pctcpu_window: Dur,
}

impl Default for UleParams {
    fn default() -> Self {
        let stat_tick = Dur(1_000_000_000 / 127);
        UleParams {
            interact_thresh: 30,
            slp_run_max: Dur::secs(5),
            slp_run_fork: Dur::millis(2500),
            stat_tick,
            slice_ticks: 10,
            slice_min_ticks: 1,
            balance_min: Dur::millis(500),
            balance_max: Dur::millis(1500),
            steal_thresh: 2,
            affinity_window: Dur::millis(50),
            periodic_balance: true,
            pctcpu_window: Dur::secs(10),
        }
    }
}

impl UleParams {
    /// Timeslice for a CPU currently loaded with `load` runnable threads
    /// (including the running one): `slice / load`, at least one tick.
    pub fn slice(&self, load: usize) -> Dur {
        let base = self.stat_tick.saturating_mul(self.slice_ticks);
        if load <= 1 {
            base
        } else {
            (base / load as u64).max(self.stat_tick.saturating_mul(self.slice_min_ticks))
        }
    }
}

/// The searchable subset of [`UleParams`] (`battle tune`): the
/// interactivity threshold, slice sizing, steal threshold, affinity window
/// and balancer cadence. The balancer's min/max interval moves as one
/// dimension — `balance_min` — with the stock 1:3 ratio preserved, so a
/// candidate can never invert the `[min, max]` jitter window. History
/// clamps (`slp_run_max`, fork clamp, `pctcpu_window`) and the
/// balancer-bug ablation switch stay fixed.
impl ParamSpace for UleParams {
    fn dims() -> Vec<Dim> {
        vec![
            Dim::integer("interact_thresh", 5, 60, 30),
            Dim::integer("slice_ticks", 2, 40, 10),
            Dim::integer("slice_min_ticks", 1, 4, 1),
            Dim::duration(
                "balance_min",
                Dur::millis(100),
                Dur::millis(2000),
                Dur::millis(500),
            ),
            Dim::integer("steal_thresh", 1, 8, 2),
            Dim::duration(
                "affinity_window",
                Dur::millis(5),
                Dur::millis(500),
                Dur::millis(50),
            ),
        ]
    }

    fn to_vector(&self) -> ParamVector {
        ParamVector(vec![
            self.interact_thresh as f64,
            self.slice_ticks as f64,
            self.slice_min_ticks as f64,
            self.balance_min.as_nanos() as f64,
            self.steal_thresh as f64,
            self.affinity_window.as_nanos() as f64,
        ])
    }

    fn from_vector(v: &ParamVector) -> UleParams {
        let d = Self::dims();
        let balance_min = v.dur(3, &d);
        UleParams {
            interact_thresh: v.int(0, &d) as i64,
            slice_ticks: v.int(1, &d),
            slice_min_ticks: v.int(2, &d),
            balance_min,
            // Stock ships 500..1500 ms; keep the 1:3 jitter ratio.
            balance_max: balance_min.saturating_mul(3),
            steal_thresh: v.int(4, &d) as usize,
            affinity_window: v.dur(5, &d),
            ..UleParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_follows_paper() {
        let p = UleParams::default();
        // 10 ticks at 127 Hz ≈ 78.7 ms for a lone thread.
        let lone = p.slice(1);
        assert!((78..=79).contains(&lone.as_millis()), "{lone}");
        // Divided by the number of threads...
        assert_eq!(p.slice(2), lone / 2);
        // ...but never below one tick (≈7.87 ms).
        let floor = p.slice(100);
        assert_eq!(floor, p.stat_tick);
    }

    #[test]
    fn priority_ranges_are_contiguous() {
        let (min, max, idle) = (BATCH_PRIO_MIN, BATCH_PRIO_MAX, IDLE_PRIO);
        assert_eq!(min, 48);
        assert_eq!(max, 135);
        assert!(idle > max);
    }

    #[test]
    fn default_vector_roundtrips_and_keeps_balance_ratio() {
        let v = UleParams::default().to_vector();
        assert_eq!(v.quantized(&UleParams::dims()), v);
        let p = UleParams::from_vector(&v);
        assert_eq!(p.to_vector(), v);
        assert_eq!(p.interact_thresh, 30);
        assert_eq!(p.balance_min, Dur::millis(500));
        assert_eq!(p.balance_max, Dur::millis(1500));
        assert!(p.periodic_balance, "ablation switch is not searchable");
    }

    #[test]
    fn clamped_vector_never_inverts_the_balance_window() {
        let mut v = UleParams::default().to_vector();
        v.0[3] = Dur::secs(60).as_nanos() as f64; // clamps to 2000 ms
        let p = UleParams::from_vector(&v);
        assert_eq!(p.balance_min, Dur::millis(2000));
        assert_eq!(p.balance_max, Dur::millis(6000));
        assert!(p.balance_min <= p.balance_max);
    }
}
