//! The FreeBSD ULE scheduler, as ported to Linux by the paper (§2.2, §3).
//!
//! * **Per-core scheduling** — two runqueues per CPU: *interactive* and
//!   *batch*. Threads are classified by the interactivity penalty
//!   ([`interactivity`]); interactive threads get **absolute** priority:
//!   the batch queue is searched only when the interactive queue is empty,
//!   so batch threads can starve for an unbounded amount of time (§5.1).
//! * **Timeslices** — 10 stathz ticks (≈78 ms) divided by the CPU's load,
//!   floored at one tick (≈7.87 ms). No wakeup preemption: only kernel
//!   threads may preempt ("full preemption is disabled").
//! * **Placement** (`sched_pickcpu`) — cache-affinity shortcut, then a
//!   search for a CPU whose most-urgent waiting priority is lower than the
//!   thread's (first within the affine topology level, then machine-wide),
//!   finally the least-loaded CPU. The paper measures these scans costing
//!   up to 13 % of CPU cycles on sysbench (§6.3) — the simulated kernel
//!   charges per-CPU-scanned costs accordingly.
//! * **Balancing** — the load of a CPU is simply its number of runnable
//!   threads. Core 0 runs the periodic balancer every 0.5–1.5 s (random),
//!   each invocation migrating at most one thread from each donor to each
//!   receiver; idle CPUs steal at most one thread, walking up the topology.
//!
//! Port adaptations from §3 are faithfully reproduced: the running thread
//! remains accounted in the runqueue (`nr_queued` includes it), the load
//! balancer never migrates a running thread, and the balancing code uses
//! the kernel's (CFS-style) locking discipline — in the simulator, the same
//! single-threaded migration primitives CFS uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interactivity;
pub mod params;
pub mod runq;

use sched_api::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot,
    TaskTable, Tid, WakeKind,
};
use simcore::{Dur, SimRng, Time};
use topology::{CpuId, Topology};

use interactivity::{Interactivity, PctCpu};
use params::{
    UleParams, BATCH_PRIO_LEVELS, BATCH_PRIO_MAX, BATCH_PRIO_MIN, IDLE_PRIO, INT_PRIO_LEVELS,
    RQ_NQS,
};
use runq::{BatchRunq, PrioRunq};

/// Per-task ULE state (`td_sched`).
struct UleTask {
    interact: Interactivity,
    pct: PctCpu,
    /// Current ULE priority (0 = most urgent interactive).
    prio: i32,
    /// Priority recorded when the task entered a queue (for removal).
    queued_prio: Option<i32>,
    /// Whether it was queued on the interactive runqueue.
    queued_interactive: bool,
    /// Start of the current timeslice.
    slice_start: Time,
    /// Last time run-time was folded into the interactivity history.
    last_acct: Time,
}

/// Map a batch (timeshare) priority onto its runqueue bucket:
/// `(prio − BATCH_PRIO_MIN) × RQ_NQS / BATCH_PRIO_LEVELS`, FreeBSD's
/// `tdq_runq_add` circular-queue scaling. The 88 batch priorities fold
/// into [`RQ_NQS`] buckets; the division keeps every result in
/// `[0, RQ_NQS)` including `BATCH_PRIO_MAX` (87·64/88 = 63), so no
/// clamp is needed — the boundary test in this crate pins that.
pub fn batch_bucket(prio: i32) -> usize {
    debug_assert!(
        (BATCH_PRIO_MIN..=BATCH_PRIO_MAX).contains(&prio),
        "batch priority {prio} out of range"
    );
    ((prio - BATCH_PRIO_MIN) as usize * RQ_NQS) / BATCH_PRIO_LEVELS as usize
}

/// Number of tracked priority slots (0..=[`BATCH_PRIO_MAX`]).
const PRIO_SLOTS: usize = BATCH_PRIO_MAX as usize + 1;
/// Words in the presence bitmap covering [`PRIO_SLOTS`] bits.
const PRIO_WORDS: usize = PRIO_SLOTS.div_ceil(64);

/// Multiset of priorities of queued + running threads (`tdq_lowpri`
/// backing store). Flat per-priority counts plus a presence bitmap: the
/// hot probes — `add`/`remove` on every enqueue/dequeue and `min` on
/// every placement scan — are an array bump and a couple of
/// `trailing_zeros` words instead of BTreeMap rebalancing walks.
struct PrioSet {
    counts: [u32; PRIO_SLOTS],
    bits: [u64; PRIO_WORDS],
}

impl PrioSet {
    fn new() -> PrioSet {
        PrioSet {
            counts: [0; PRIO_SLOTS],
            bits: [0; PRIO_WORDS],
        }
    }

    fn add(&mut self, p: i32) {
        debug_assert!(
            (0..=BATCH_PRIO_MAX).contains(&p),
            "priority {p} out of range"
        );
        let p = p as usize;
        self.counts[p] += 1;
        self.bits[p / 64] |= 1 << (p % 64);
    }

    fn remove(&mut self, p: i32) {
        debug_assert!(
            (0..=BATCH_PRIO_MAX).contains(&p),
            "priority {p} out of range"
        );
        let p = p as usize;
        match self.counts[p] {
            0 => debug_assert!(false, "priority {p} not tracked"),
            1 => {
                self.counts[p] = 0;
                self.bits[p / 64] &= !(1 << (p % 64));
            }
            ref mut c => *c -= 1,
        }
    }

    /// The smallest priority present, if any.
    fn min(&self) -> Option<i32> {
        for (w, &bits) in self.bits.iter().enumerate() {
            if bits != 0 {
                return Some((w * 64 + bits.trailing_zeros() as usize) as i32);
            }
        }
        None
    }

    /// Whether any thread with priority `p` is tracked.
    fn contains(&self, p: i32) -> bool {
        (0..=BATCH_PRIO_MAX).contains(&p) && self.counts[p as usize] > 0
    }

    /// Total threads tracked across all priorities.
    fn total(&self) -> u64 {
        self.counts.iter().map(|&c| u64::from(c)).sum()
    }

    /// Priorities currently present, ascending.
    fn present(&self) -> impl Iterator<Item = i32> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &bits)| {
            let mut rest = bits;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let b = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some((w * 64 + b) as i32)
            })
        })
    }
}

/// Per-CPU queues (`struct tdq`).
struct Tdq {
    interactive: PrioRunq,
    batch: BatchRunq,
    curr: Option<Tid>,
    /// Runnable threads including the running one ("the load of a core is
    /// simply defined as the number of threads currently runnable on it").
    load: usize,
    /// Multiset of priorities of queued + running threads (for
    /// `tdq_lowpri`).
    prios: PrioSet,
    /// Next calendar-clock advance (stathz cadence).
    next_stat: Time,
    /// `false` while the CPU is hotplugged out.
    online: bool,
}

impl Tdq {
    fn new() -> Tdq {
        Tdq {
            interactive: PrioRunq::new(INT_PRIO_LEVELS as usize),
            batch: BatchRunq::new(),
            curr: None,
            load: 0,
            prios: PrioSet::new(),
            next_stat: Time::ZERO,
            online: true,
        }
    }

    fn add_prio(&mut self, p: i32) {
        self.prios.add(p);
    }

    fn remove_prio(&mut self, p: i32) {
        self.prios.remove(p);
    }

    /// The most urgent priority present (`tdq_lowpri`), or [`IDLE_PRIO`].
    fn lowpri(&self) -> i32 {
        self.prios.min().unwrap_or(IDLE_PRIO)
    }
}

/// The ULE scheduling class.
pub struct Ule {
    topo: Topology,
    p: UleParams,
    tstates: Vec<Option<UleTask>>,
    tdqs: Vec<Tdq>,
    rng: SimRng,
    /// Core 0's next periodic balance.
    next_balance: Time,
}

impl Ule {
    /// ULE with default parameters.
    pub fn new(topo: &Topology) -> Ule {
        Ule::with_params(topo, UleParams::default(), 0)
    }

    /// ULE with explicit parameters and a seed for the randomized
    /// balancing period.
    pub fn with_params(topo: &Topology, p: UleParams, seed: u64) -> Ule {
        Ule {
            topo: topo.clone(),
            p,
            tstates: Vec::new(),
            tdqs: (0..topo.nr_cpus()).map(|_| Tdq::new()).collect(),
            rng: SimRng::new(seed ^ 0xB41A_4CE0),
            next_balance: Time::ZERO,
        }
    }

    /// Access to the parameters (for ablation benches).
    pub fn params(&self) -> &UleParams {
        &self.p
    }

    fn ts(&self, tid: Tid) -> &UleTask {
        self.tstates[tid.index()].as_ref().expect("ule state")
    }

    fn ts_mut(&mut self, tid: Tid) -> &mut UleTask {
        self.tstates[tid.index()].as_mut().expect("ule state")
    }

    /// `sched_priority`: interactive threads interpolate their score into
    /// the interactive range; batch threads derive priority from recent
    /// CPU usage plus niceness.
    fn compute_prio(&mut self, tasks: &TaskTable, tid: Tid, now: Time) -> i32 {
        let nice = tasks.get(tid).nice;
        let p = self.p.clone();
        let ts = self.ts_mut(tid);
        let score = ts.interact.score(nice);
        if score < p.interact_thresh {
            // Linear interpolation: penalty 0 → highest interactive
            // priority, penalty at the threshold → lowest (§2.2).
            ((score * INT_PRIO_LEVELS as i64) / p.interact_thresh.max(1)) as i32
        } else {
            // "The priority of batch threads depends on their runtime: the
            // more a thread runs, the lower its priority. The niceness is
            // added to get a linear effect on the priority."
            let usage = ts.pct.frac(now, &p); // 0..=1024
            let usage_span = (BATCH_PRIO_LEVELS - 40) as u64; // reserve nice span
            let pri = BATCH_PRIO_MIN + (usage * usage_span / 1024) as i32 + (nice + 20);
            pri.clamp(BATCH_PRIO_MIN, BATCH_PRIO_MAX)
        }
    }

    fn is_interactive_prio(prio: i32) -> bool {
        prio < BATCH_PRIO_MIN
    }

    /// Fold the running thread's recent CPU time into its histories.
    fn account_curr(&mut self, cpu: CpuId, now: Time) {
        let Some(tid) = self.tdqs[cpu.index()].curr else {
            return;
        };
        let p = self.p.clone();
        let ts = self.ts_mut(tid);
        let delta = now.saturating_since(ts.last_acct);
        if delta.is_zero() {
            return;
        }
        ts.last_acct = now;
        ts.interact.add_run(delta, &p);
        ts.pct.add_run(now, delta, &p);
    }

    /// Put a runnable task into `cpu`'s appropriate queue.
    fn runq_add(&mut self, cpu: CpuId, tid: Tid, prio: i32) {
        let tdq = &mut self.tdqs[cpu.index()];
        if Self::is_interactive_prio(prio) {
            tdq.interactive.push(prio as usize, tid);
        } else {
            tdq.batch.push(batch_bucket(prio), tid);
        }
        tdq.add_prio(prio);
        let ts = self.ts_mut(tid);
        ts.queued_prio = Some(prio);
        ts.queued_interactive = Self::is_interactive_prio(prio);
    }

    /// Remove a queued (non-running) task from `cpu`'s queues.
    fn runq_remove(&mut self, cpu: CpuId, tid: Tid) {
        let (prio, interactive) = {
            let ts = self.ts(tid);
            (
                ts.queued_prio.expect("queued task has a recorded prio"),
                ts.queued_interactive,
            )
        };
        let tdq = &mut self.tdqs[cpu.index()];
        let found = if interactive {
            tdq.interactive.remove(prio as usize, tid)
        } else {
            tdq.batch.remove(tid)
        };
        debug_assert!(found, "{tid} not found in {cpu} runq");
        tdq.remove_prio(prio);
        self.ts_mut(tid).queued_prio = None;
    }

    /// Is the thread still cache-affine on `cpu`?
    fn affine(&self, tasks: &TaskTable, tid: Tid, now: Time) -> bool {
        let t = tasks.get(tid);
        now.saturating_since(t.last_ran) <= self.p.affinity_window
    }

    /// Steal one transferable (queued, affinity-compatible) thread from
    /// `victim` for `thief`. Interactive threads first, as FreeBSD's
    /// `runq_steal` scans the realtime queue first.
    fn steal_one(&mut self, tasks: &mut TaskTable, victim: CpuId, thief: CpuId, now: Time) -> bool {
        let candidate = {
            let tdq = &mut self.tdqs[victim.index()];
            let from_int = tdq
                .interactive
                .iter()
                .find(|&t| tasks.get(t).allowed_on(thief));
            match from_int {
                Some(t) => Some(t),
                None => tdq.batch.iter().find(|&t| tasks.get(t).allowed_on(thief)),
            }
        };
        let Some(tid) = candidate else {
            return false;
        };
        self.runq_remove(victim, tid);
        self.tdqs[victim.index()].load -= 1;
        tasks.get_mut(tid).cpu = thief;
        self.enqueue_task(tasks, thief, tid, EnqueueKind::Migrate, now);
        true
    }
}

impl Scheduler for Ule {
    fn name(&self) -> &'static str {
        "ule"
    }

    /// `sched_pickcpu` (§2.2): affinity shortcut; then look for a CPU where
    /// the thread would be the most urgent (first within the affine level,
    /// then machine-wide); finally the least-loaded CPU.
    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        if self.topo.nr_cpus() == 1 {
            return CpuId(0);
        }
        let task = tasks.get(tid);
        let last = task.last_cpu;
        let prio = self.ts(tid).prio;

        // Shortcut: idle and cache-affine last CPU.
        stats.cpus_scanned += 1;
        let affine = self.affine(tasks, tid, now);
        if task.allowed_on(last)
            && affine
            && self.tdqs[last.index()].online
            && self.tdqs[last.index()].load == 0
        {
            return last;
        }

        // Pass 1: within the affine level (the LLC of the last CPU if still
        // affine, otherwise the whole machine).
        let affine_span: Vec<CpuId> = if affine {
            self.topo.llc_cpus(last).to_vec()
        } else {
            self.topo.all_cpus().collect()
        };
        let pick_lowpri = |ule: &Ule, span: &[CpuId], stats: &mut SelectStats| -> Option<CpuId> {
            let mut best: Option<(usize, CpuId)> = None;
            for &c in span {
                stats.cpus_scanned += 1;
                if !task.allowed_on(c) || !ule.tdqs[c.index()].online {
                    continue;
                }
                if ule.tdqs[c.index()].lowpri() > prio {
                    let load = ule.tdqs[c.index()].load;
                    match best {
                        None => best = Some((load, c)),
                        Some((bl, bc)) if (load, c.0) < (bl, bc.0) => best = Some((load, c)),
                        _ => {}
                    }
                }
            }
            best.map(|(_, c)| c)
        };
        if let Some(c) = pick_lowpri(self, &affine_span, stats) {
            return c;
        }
        // Pass 2: the whole machine.
        let all: Vec<CpuId> = self.topo.all_cpus().collect();
        if let Some(c) = pick_lowpri(self, &all, stats) {
            return c;
        }
        // Pass 3: "ULE simply picks the core with the lowest number of
        // running threads on the machine".
        let mut best: Option<(usize, CpuId)> = None;
        for &c in &all {
            stats.cpus_scanned += 1;
            if !task.allowed_on(c) || !self.tdqs[c.index()].online {
                continue;
            }
            let load = self.tdqs[c.index()].load;
            match best {
                None => best = Some((load, c)),
                Some((bl, bc)) if (load, c.0) < (bl, bc.0) => best = Some((load, c)),
                _ => {}
            }
        }
        best.expect("task has no online CPU in its affinity mask").1
    }

    fn enqueue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: EnqueueKind,
        now: Time,
    ) -> Preempt {
        if kind == EnqueueKind::Wakeup {
            // `sched_wakeup`: credit the voluntary sleep and refresh the
            // classification.
            let slept = now.saturating_since(tasks.get(tid).sleep_start);
            let p = self.p.clone();
            self.ts_mut(tid).interact.add_sleep(slept, &p);
        }
        let prio = self.compute_prio(tasks, tid, now);
        self.ts_mut(tid).prio = prio;
        self.runq_add(cpu, tid, prio);
        self.tdqs[cpu.index()].load += 1;
        // "In ULE, full preemption is disabled, meaning that only kernel
        // threads can preempt others" (§2.2/§5.3).
        if tasks.get(tid).kernel_thread {
            Preempt::Yes(PreemptCause::KernelThread)
        } else {
            Preempt::No
        }
    }

    fn dequeue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        now: Time,
    ) {
        let is_curr = self.tdqs[cpu.index()].curr == Some(tid);
        if is_curr {
            self.account_curr(cpu, now);
            let prio = self.ts(tid).prio;
            let tdq = &mut self.tdqs[cpu.index()];
            tdq.curr = None;
            tdq.remove_prio(prio);
        } else {
            self.runq_remove(cpu, tid);
        }
        self.tdqs[cpu.index()].load -= 1;
    }

    fn yield_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) {
        if let Some(curr) = self.tdqs[cpu.index()].curr {
            self.put_prev_task(tasks, cpu, curr, now);
        }
    }

    fn pick_next_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        debug_assert!(self.tdqs[cpu.index()].curr.is_none());
        // "ULE first searches in the interactive runqueue (...). If the
        // interactive runqueue is empty, ULE searches in the batch
        // runqueue instead."
        let tdq = &mut self.tdqs[cpu.index()];
        let tid = tdq.interactive.pop().or_else(|| tdq.batch.pop())?;
        tdq.curr = Some(tid);
        let ts = self.ts_mut(tid);
        ts.queued_prio = None;
        ts.slice_start = now;
        ts.last_acct = now;
        // Note: the priority stays tracked in `prios` while running (the
        // port keeps the current thread in the runqueue, §3).
        Some(tid)
    }

    fn put_prev_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, tid: Tid, now: Time) {
        debug_assert_eq!(self.tdqs[cpu.index()].curr, Some(tid));
        self.account_curr(cpu, now);
        let old_prio = self.ts(tid).prio;
        let new_prio = self.compute_prio(tasks, tid, now);
        self.ts_mut(tid).prio = new_prio;
        let tdq = &mut self.tdqs[cpu.index()];
        tdq.curr = None;
        tdq.remove_prio(old_prio);
        // Re-added at the tail of its FIFO, preserving the FIFO property.
        self.runq_add(cpu, tid, new_prio);
    }

    fn task_tick(&mut self, tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt {
        self.account_curr(cpu, now);
        // Advance the batch calendar at stathz cadence (`sched_clock`).
        let stat = self.p.stat_tick;
        {
            let tdq = &mut self.tdqs[cpu.index()];
            if tdq.next_stat == Time::ZERO {
                tdq.next_stat = now + stat;
            }
            while now >= tdq.next_stat {
                tdq.batch.clock();
                tdq.next_stat += stat;
            }
        }
        // Refresh the running thread's priority/classification.
        let old_prio = self.ts(curr).prio;
        let new_prio = self.compute_prio(tasks, curr, now);
        if new_prio != old_prio {
            self.ts_mut(curr).prio = new_prio;
            let tdq = &mut self.tdqs[cpu.index()];
            tdq.remove_prio(old_prio);
            tdq.add_prio(new_prio);
        }
        // Timeslice check: the slice shrinks with the load. The counter
        // resets on expiry even when the thread is alone (`td_slice = 0`),
        // so a lone runner does not "owe" a huge overrun the moment a
        // second thread appears.
        let load = self.tdqs[cpu.index()].load;
        let slice = self.p.slice(load);
        let ts = self.ts_mut(curr);
        if now.saturating_since(ts.slice_start) >= slice {
            ts.slice_start = now;
            if load > 1 {
                return Preempt::Yes(PreemptCause::SliceExpired);
            }
        }
        Preempt::No
    }

    fn task_fork(&mut self, tasks: &TaskTable, child: Tid, parent: Option<Tid>, now: Time) {
        if child.index() >= self.tstates.len() {
            self.tstates.resize_with(child.index() + 1, || None);
        }
        // "When a thread is created, it inherits the runtime and sleeptime
        // (and thus the interactivity) of its parent."
        let p = self.p.clone();
        let interact = match parent {
            Some(par) if self.tstates.get(par.index()).is_some_and(|s| s.is_some()) => {
                Interactivity::fork_from(&self.ts(par).interact, &p)
            }
            _ => match tasks.get(child).inherit_history {
                Some((run, sleep)) => {
                    let synthetic = Interactivity {
                        runtime: run,
                        slptime: sleep,
                    };
                    Interactivity::fork_from(&synthetic, &p)
                }
                None => Interactivity::new(),
            },
        };
        self.tstates[child.index()] = Some(UleTask {
            interact,
            pct: PctCpu::new(now),
            prio: 0,
            queued_prio: None,
            queued_interactive: false,
            slice_start: now,
            last_acct: now,
        });
        let prio = self.compute_prio(tasks, child, now);
        self.ts_mut(child).prio = prio;
    }

    fn task_dead(&mut self, tasks: &TaskTable, tid: Tid, _now: Time) {
        // "When a thread dies, its runtime in the last 5 seconds is
        // returned to its parent."
        let runtime = self.ts(tid).interact.runtime;
        if let Some(par) = tasks.get(tid).parent {
            if par.index() < self.tstates.len() {
                if let Some(ps) = self.tstates[par.index()].as_mut() {
                    let p = self.p.clone();
                    ps.interact.add_run(runtime, &p);
                }
            }
        }
        self.tstates[tid.index()] = None;
    }

    /// Core 0's periodic balancer (`sched_balance`, with the paper's fix
    /// for the FreeBSD bug \[1\] so it actually runs periodically).
    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    ) {
        // An idle CPU's idle thread keeps retrying `tdq_idled` when the
        // timer interrupt wakes it, so work that becomes stealable later
        // (e.g. unpinned threads) is still picked up.
        if self.tdqs[cpu.index()].load == 0 {
            let mut stats = SelectStats::default();
            if self.idle_balance(tasks, cpu, now, &mut stats) {
                targets.push(cpu);
                return;
            }
        }
        if !self.p.periodic_balance || cpu != CpuId(0) {
            return;
        }
        if now < self.next_balance {
            return;
        }
        let span = self
            .rng
            .gen_range(self.p.balance_min.as_nanos(), self.p.balance_max.as_nanos());
        self.next_balance = now + Dur(span);

        // "a thread from the most loaded core (donor) is migrated to the
        // less loaded core (receiver). A core can only be a donor or a
        // receiver once, and the load balancer iterates until no donor or
        // receiver is found."
        let n = self.topo.nr_cpus();
        let mut used = vec![false; n];
        loop {
            let mut donor: Option<(usize, CpuId)> = None;
            let mut receiver: Option<(usize, CpuId)> = None;
            for c in self.topo.all_cpus() {
                if used[c.index()] || !self.tdqs[c.index()].online {
                    continue;
                }
                let load = self.tdqs[c.index()].load;
                match donor {
                    None => donor = Some((load, c)),
                    Some((dl, dc)) if load > dl || (load == dl && c.0 < dc.0) => {
                        donor = Some((load, c))
                    }
                    _ => {}
                }
                match receiver {
                    None => receiver = Some((load, c)),
                    Some((rl, rc)) if load < rl || (load == rl && c.0 > rc.0) => {
                        receiver = Some((load, c))
                    }
                    _ => {}
                }
            }
            let (Some((dload, dc)), Some((rload, rc))) = (donor, receiver) else {
                break;
            };
            if dc == rc || dload <= rload + 1 {
                break; // balanced enough; nothing to gain
            }
            used[dc.index()] = true;
            used[rc.index()] = true;
            if self.steal_one(tasks, dc, rc, now) {
                targets.push(rc);
            }
        }
    }

    /// Idle stealing (`tdq_idled`): try the most loaded CPU sharing a
    /// cache, then walk up the topology; steal at most one thread.
    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        let spans: [Vec<CpuId>; 2] = [
            self.topo.llc_cpus(cpu).to_vec(),
            self.topo.all_cpus().collect(),
        ];
        for span in &spans {
            let mut best: Option<(usize, CpuId)> = None;
            for &c in span {
                stats.cpus_scanned += 1;
                if c == cpu || !self.tdqs[c.index()].online {
                    continue;
                }
                let load = self.tdqs[c.index()].load;
                if load >= self.p.steal_thresh {
                    match best {
                        None => best = Some((load, c)),
                        Some((bl, _)) if load > bl => best = Some((load, c)),
                        _ => {}
                    }
                }
            }
            if let Some((_, victim)) = best {
                if self.steal_one(tasks, victim, cpu, now) {
                    return true;
                }
            }
        }
        false
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        self.tdqs[cpu.index()].load
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        let tdq = &self.tdqs[cpu.index()];
        out.extend(tdq.interactive.iter().chain(tdq.batch.iter()));
    }

    fn snapshot(&self, tasks: &TaskTable, tid: Tid) -> TaskSnapshot {
        let Some(ts) = self.tstates.get(tid.index()).and_then(|s| s.as_ref()) else {
            return TaskSnapshot::default();
        };
        let nice = tasks.get(tid).nice;
        let load = self.tdqs[tasks.get(tid).cpu.index()].load;
        TaskSnapshot {
            ule_penalty: Some(ts.interact.penalty() as u32),
            ule_score: Some(ts.interact.score(nice) as i32),
            interactive: Some(ts.interact.is_interactive(nice, &self.p)),
            prio: Some(ts.prio),
            timeslice_ns: Some(self.p.slice(load).as_nanos()),
            ..Default::default()
        }
    }

    fn audit(&mut self, _tasks: &TaskTable, cpu: CpuId, _now: Time) -> Result<(), String> {
        let tdq = &self.tdqs[cpu.index()];
        // The port convention (§3): the running thread counts in the load
        // and stays tracked in the priority multiset.
        let expect = tdq.interactive.len() + tdq.batch.len() + usize::from(tdq.curr.is_some());
        if tdq.load != expect {
            return Err(format!(
                "load {} != queued {} + running {}",
                tdq.load,
                expect - usize::from(tdq.curr.is_some()),
                usize::from(tdq.curr.is_some())
            ));
        }
        let tracked = tdq.prios.total();
        if tracked != expect as u64 {
            return Err(format!(
                "prio multiset tracks {tracked} threads, load is {expect}"
            ));
        }
        for p in tdq.prios.present() {
            if !(0..=BATCH_PRIO_MAX).contains(&p) {
                return Err(format!("tracked priority {p} out of range"));
            }
        }
        for t in tdq.interactive.iter() {
            match self.ts(t).queued_prio {
                Some(p) if Self::is_interactive_prio(p) => {}
                Some(p) => return Err(format!("{t} on interactive runq with batch prio {p}")),
                None => return Err(format!("{t} on interactive runq without a recorded prio")),
            }
        }
        for t in tdq.batch.iter() {
            match self.ts(t).queued_prio {
                Some(p) if !Self::is_interactive_prio(p) => {}
                Some(p) => return Err(format!("{t} on batch runq with interactive prio {p}")),
                None => return Err(format!("{t} on batch runq without a recorded prio")),
            }
        }
        if let Some(curr) = tdq.curr {
            let p = self.ts(curr).prio;
            if !tdq.prios.contains(p) {
                return Err(format!("running {curr}'s prio {p} missing from multiset"));
            }
        }
        Ok(())
    }

    fn cpu_offline(&mut self, cpu: CpuId) {
        self.tdqs[cpu.index()].online = false;
    }

    fn cpu_online(&mut self, cpu: CpuId) {
        self.tdqs[cpu.index()].online = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite bugfix pin: every batch priority maps into a valid
    /// bucket, the mapping is monotone, and the extremes land on the
    /// first/last bucket — i.e. `BATCH_PRIO_MAX` does not collapse out of
    /// range (the sched_4bsd-style off-by-one this guards against).
    #[test]
    fn batch_bucket_boundaries_and_monotonicity() {
        assert_eq!(batch_bucket(BATCH_PRIO_MIN), 0);
        assert_eq!(batch_bucket(BATCH_PRIO_MAX), RQ_NQS - 1);
        let mut prev = 0usize;
        for prio in BATCH_PRIO_MIN..=BATCH_PRIO_MAX {
            let b = batch_bucket(prio);
            assert!(b < RQ_NQS, "prio {prio} → bucket {b} out of range");
            assert!(b >= prev, "prio {prio} → bucket {b} < previous {prev}");
            prev = b;
        }
        // All buckets are reachable: 88 levels over 64 buckets leaves no
        // holes (⌈88/64⌉ = 2 levels per bucket at most, ⌊88/64⌋ ≥ 1 at
        // least ... verified exhaustively).
        let used: std::collections::BTreeSet<usize> = (BATCH_PRIO_MIN..=BATCH_PRIO_MAX)
            .map(batch_bucket)
            .collect();
        assert_eq!(used.len(), RQ_NQS, "every bucket must be reachable");
    }

    /// Satellite bugfix pin: removing the last thread at a priority level
    /// must clear the presence bit — a stale bit would make `min()` report
    /// an empty level and send the pick loop spinning into the livelock
    /// watchdog. Churn insert/remove right at the u64 word boundaries.
    #[test]
    fn prioset_remove_to_zero_clears_bits_across_word_boundaries() {
        let mut s = PrioSet::new();
        for &p in &[31, 32, 63, 64, 0, BATCH_PRIO_MAX] {
            // Two in, two out: the intermediate remove must keep the bit,
            // the final remove must clear it.
            s.add(p);
            s.add(p);
            assert!(s.contains(p));
            assert_eq!(s.min(), Some(p), "only {p} is tracked at this point");
            s.remove(p);
            assert!(s.contains(p), "count 2→1 must keep priority {p} present");
            s.remove(p);
            assert!(!s.contains(p), "count 1→0 must clear priority {p}");
        }
        assert_eq!(s.min(), None, "all bits cleared after churn");
        assert_eq!(s.total(), 0);

        // Neighbouring levels across a word boundary stay independent.
        s.add(63);
        s.add(64);
        s.remove(63);
        assert!(!s.contains(63));
        assert!(s.contains(64), "clearing bit 63 must not disturb bit 64");
        assert_eq!(s.min(), Some(64));
        assert_eq!(s.present().collect::<Vec<_>>(), vec![64]);
        s.remove(64);
        assert_eq!(s.min(), None);

        // Interleaved churn: presence always mirrors the counts exactly.
        for round in 0..3 {
            for p in [31, 32, 63, 64] {
                s.add(p + round);
            }
        }
        for round in 0..3 {
            for p in [31, 32, 63, 64] {
                s.remove(p + round);
            }
        }
        assert_eq!(s.total(), 0);
        assert_eq!(
            s.present().count(),
            0,
            "no stale bits after interleaved churn"
        );
    }
}
