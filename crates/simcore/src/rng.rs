//! Deterministic pseudo-random numbers.
//!
//! Every stochastic choice in the simulator (ULE's randomized balancing
//! period, workload jitter, ...) draws from a [`SimRng`] seeded from the
//! simulation config, so a given seed reproduces a bit-identical run. The
//! generator is xorshift64* — tiny, fast, and plenty good for simulation
//! jitter — with a splitmix64 seeding stage so that small seeds still
//! produce well-mixed streams.

/// A deterministic xorshift64* generator.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // splitmix64 of the seed guarantees a non-zero, well mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng {
            state: z | 1, // never zero
        }
    }

    /// Derive an independent stream, e.g. one per subsystem, so that adding
    /// draws in one subsystem does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift rejection method for unbiased bounded ints.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= lo.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 high bits -> [0, 1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut r = SimRng::new(0);
        let x = r.next_u64();
        let y = r.next_u64();
        assert_ne!(x, 0);
        assert_ne!(x, y);
    }

    #[test]
    fn gen_range_is_inclusive_and_bounded() {
        let mut r = SimRng::new(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.gen_range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_streams_are_independent_of_draw_count() {
        // The fork itself consumes one draw, but two forks with different
        // stream ids from identically-seeded parents differ.
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        let mut fa = a.fork(1);
        let mut fb = b.fork(2);
        assert_ne!(fa.next_u64(), fb.next_u64());
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_below_rough_uniformity() {
        let mut r = SimRng::new(13);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} out of range"
            );
        }
    }
}
