//! Bounded trace buffer.
//!
//! The kernel records scheduling events (switches, wakeups, migrations, ...)
//! into a [`TraceBuffer`]. Experiments that need full traces set a large
//! capacity; by default the buffer is bounded so that long simulations do not
//! exhaust memory, dropping the *oldest* events first (like a flight
//! recorder).

use std::collections::VecDeque;

/// A bounded FIFO buffer of trace records.
#[derive(Debug)]
pub struct TraceBuffer<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> TraceBuffer<T> {
    /// Buffer keeping at most `capacity` records (0 disables recording).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            buf: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    /// Record one event, evicting the oldest if at capacity.
    pub fn push(&mut self, item: T) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of records dropped due to capacity (or disabled recording).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate over retained records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Drain all retained records, oldest first.
    pub fn drain(&mut self) -> impl Iterator<Item = T> + '_ {
        self.buf.drain(..)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_when_full() {
        let mut t = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            t.push(i);
        }
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(t.dropped(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = TraceBuffer::with_capacity(0);
        t.push(1);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn drain_empties() {
        let mut t = TraceBuffer::with_capacity(4);
        t.push("a");
        t.push("b");
        assert_eq!(t.drain().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(t.is_empty());
    }
}
