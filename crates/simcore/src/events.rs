//! The simulation event queue.
//!
//! A classic calendar for discrete-event simulation: events are pushed with a
//! firing [`Time`] and popped in (time, insertion-order) order, so that events
//! scheduled for the same instant fire in FIFO order — a property the kernel
//! relies on for determinism.
//!
//! Cancellation is O(1): [`EventQueue::push`] returns an [`EventId`] and
//! [`EventQueue::cancel`] marks it dead; dead entries are skipped lazily on
//! pop. The kernel uses this to invalidate a task's pending run-completion
//! event whenever the task is preempted, migrated, or charged overhead.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Opaque handle to a scheduled event, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Time, u64)>,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A time-ordered event queue with stable same-time ordering and lazy
/// cancellation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Monotonic sequence number; doubles as the event id.
    next_seq: u64,
    /// Sorted set of cancelled ids would be overkill; a hash set suffices.
    cancelled: std::collections::HashSet<u64>,
    /// Time of the most recently popped event; pops are monotone.
    last_pop: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
            last_pop: Time::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in
    /// insertion order.
    pub fn push(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            payload,
        });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Remove and return the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            let Reverse((at, seq)) = entry.key;
            if self.cancelled.remove(&seq) {
                continue;
            }
            debug_assert!(at >= self.last_pop, "event queue went back in time");
            self.last_pop = at;
            return Some((at, entry.payload));
        }
        None
    }

    /// The firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drain dead entries from the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            let Reverse((_, seq)) = entry.key;
            if self.cancelled.contains(&seq) {
                let Reverse((_, seq)) = self.heap.pop().expect("peeked").key;
                self.cancelled.remove(&seq);
            } else {
                let Reverse((at, _)) = entry.key;
                return Some(at);
            }
        }
        None
    }

    /// Number of entries currently stored, including not-yet-skipped
    /// cancelled ones. Useful only as a rough size signal.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&mut self) -> bool {
        self.peek_time().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        q.push(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((Time(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        assert_eq!(q.pop(), Some((Time(1), "a")));
        q.cancel(a); // must not disturb later events
        q.push(Time(2), "b");
        assert_eq!(q.pop(), Some((Time(2), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        q.push(Time(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time(5)));
        assert_eq!(q.pop(), Some((Time(5), "b")));
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(Time::ZERO + Dur::millis(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }
}
