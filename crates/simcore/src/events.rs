//! The simulation event queue.
//!
//! Events are pushed with a firing [`Time`] and popped in (time,
//! insertion-order) order, so that events scheduled for the same instant
//! fire in FIFO order — a property the kernel relies on for determinism.
//!
//! Cancellation is O(1): [`EventQueue::push`] returns an [`EventId`] and
//! [`EventQueue::cancel`] marks it dead; dead entries are skipped lazily on
//! pop. The kernel uses this to invalidate a task's pending run-completion
//! event whenever the task is preempted, migrated, or charged overhead.
//!
//! Ids are generation-stamped slot indices rather than entries in a hash
//! set: every stored event owns one slot in a recycled slot table, and an
//! [`EventId`] packs `(generation, slot)`. The per-pop liveness check is a
//! single indexed load instead of a `HashSet` lookup — this queue is the
//! innermost loop of the whole simulator — and a stale id (cancel after
//! fire) simply fails its generation check.
//!
//! # Backends
//!
//! Two interchangeable backends implement the same (time, seq) total
//! order, selectable at construction with [`EventQueue::with_backend`]:
//!
//! * [`Backend::Wheel`] (default) — a hierarchical timer wheel tuned for
//!   the simulator's tick-dominated event mix: O(1) pushes into one of
//!   7 levels of 64 slots each (1 ns granularity at level 0, ×64 per
//!   level, ~73 simulated minutes of horizon; rare farther events go to a
//!   small overflow heap). Pops advance a cursor directly to the next
//!   occupied slot via per-level occupancy bitmaps, cascading coarser
//!   slots down as the cursor crosses them. Every entry descends at most
//!   once per level, so the amortized cost per event is a handful of
//!   indexed moves — no comparison-heap churn on the hot path.
//! * [`Backend::Heap`] — the classic binary-heap calendar, kept as the
//!   reference implementation for differential testing (see
//!   `crates/simcore/tests/backend_equiv.rs`) and as a fallback
//!   (`BATTLE_EVENT_QUEUE=heap` forces it process-wide, which CI uses to
//!   keep the path green).
//!
//! Both backends produce byte-identical pop sequences for any push/cancel
//! history; the scenario-level determinism digests are pinned equal in
//! `crates/experiments/tests/wheel_equiv.rs`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::time::Time;

/// Opaque handle to a scheduled event, used for cancellation.
///
/// Packs `(generation << 32) | slot`. The generation is bumped each time a
/// slot is recycled, so a handle kept after its event fired can never alias
/// a newer event (until a single slot sees 2³² reuses, which at simulator
/// event rates is out of reach).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(gen: u32, slot: u32) -> EventId {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }
}

/// Which data structure orders the events. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Hierarchical timer wheel (default; fastest for tick-heavy mixes).
    Wheel,
    /// Binary heap (reference/fallback; `BATTLE_EVENT_QUEUE=heap`).
    Heap,
}

/// Process-wide programmatic override of the default backend
/// (`0` = none, `1` = wheel, `2` = heap). Takes precedence over the
/// `BATTLE_EVENT_QUEUE` environment variable; used by differential tests.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force every subsequently constructed [`EventQueue::new`] onto `b`
/// process-wide (`None` restores env/default resolution). Intended for
/// differential tests; explicit [`EventQueue::with_backend`] construction
/// is unaffected. Racing kernels built while the override flips simply get
/// one backend or the other — safe, because the backends are
/// pop-order-identical by contract.
pub fn set_default_backend(b: Option<Backend>) {
    let v = match b {
        None => 0,
        Some(Backend::Wheel) => 1,
        Some(Backend::Heap) => 2,
    };
    BACKEND_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The backend [`EventQueue::new`] currently resolves to: the
/// [`set_default_backend`] override if set, else `BATTLE_EVENT_QUEUE`
/// (`heap` or `wheel`, read once per process), else [`Backend::Wheel`].
pub fn default_backend() -> Backend {
    match BACKEND_OVERRIDE.load(Ordering::Relaxed) {
        1 => Backend::Wheel,
        2 => Backend::Heap,
        _ => {
            static ENV: OnceLock<Backend> = OnceLock::new();
            *ENV.get_or_init(|| match std::env::var("BATTLE_EVENT_QUEUE").as_deref() {
                Ok("heap") => Backend::Heap,
                _ => Backend::Wheel,
            })
        }
    }
}

/// Liveness state of one slot in the recycled slot table.
#[derive(Debug, Clone)]
struct Slot {
    /// Current generation; an [`EventId`] is live iff its stamp matches.
    gen: u32,
    /// Set by [`EventQueue::cancel`]; checked (and the slot freed) on pop.
    cancelled: bool,
}

/// The recycled cancellation table shared by both backends.
#[derive(Debug, Default)]
struct SlotTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
}

impl SlotTable {
    /// Claim a slot for a new entry (recycling a freed one if available).
    fn acquire(&mut self) -> (u32, u32) {
        match self.free.pop() {
            Some(s) => (s, self.slots[s as usize].gen),
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                });
                ((self.slots.len() - 1) as u32, 0)
            }
        }
    }

    /// Whether the entry owning `slot` has been cancelled.
    fn cancelled(&self, slot: u32) -> bool {
        self.slots[slot as usize].cancelled
    }

    /// Recycle `slot` once its entry has been removed: bump the generation
    /// so outstanding ids go stale, clear the cancel mark. Returns whether
    /// the entry had been cancelled.
    fn release(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let was_cancelled = s.cancelled;
        s.gen = s.gen.wrapping_add(1);
        s.cancelled = false;
        self.free.push(slot);
        was_cancelled
    }
}

/// One stored event: firing time, FIFO tiebreak sequence, cancellation
/// slot, payload.
#[derive(Debug)]
struct Entry<E> {
    at: Time,
    seq: u64,
    slot: u32,
    payload: E,
}

/// Heap adapter giving [`Entry`] the min-first (time, seq) order without
/// requiring `E: Ord`.
#[derive(Debug)]
struct HeapEnt<E>(Entry<E>);

impl<E> HeapEnt<E> {
    fn key(&self) -> Reverse<(Time, u64)> {
        Reverse((self.0.at, self.0.seq))
    }
}
impl<E> PartialEq for HeapEnt<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for HeapEnt<E> {}
impl<E> PartialOrd for HeapEnt<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEnt<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

// ---------------------------------------------------------------------
// Hierarchical timer wheel
// ---------------------------------------------------------------------

/// log2 of the slots per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Bitmask extracting one level's slot index.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of levels. Level `l` buckets 64^l ns per slot, so the whole
/// wheel spans 64^7 ns ≈ 73 simulated minutes of *delta from the cursor*;
/// farther events wait in the overflow heap.
const LEVELS: usize = 7;
/// Size of the top-level window. Placement is XOR-based, so entries
/// outside the cursor's `WHEEL_SPAN`-aligned window go to the overflow
/// heap (the common case being deltas of ≥ ~73 simulated minutes).
const WHEEL_SPAN: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// The level an event at `at` belongs to when the cursor is at `cursor`:
/// the highest 6-bit digit in which the two times differ (`None` =
/// overflow). Same-or-lower digits than the cursor's are impossible for
/// future times, so each level's occupied slots always sit strictly ahead
/// of the cursor's digit (level 0: at-or-ahead), which is what lets
/// [`Wheel::candidate`] use plain `trailing_zeros`.
fn level_of(cursor: u64, at: u64) -> Option<usize> {
    let x = cursor ^ at;
    if x == 0 {
        return Some(0);
    }
    let level = (63 - x.leading_zeros()) as usize / LEVEL_BITS as usize;
    (level < LEVELS).then_some(level)
}

/// The hierarchical-wheel backend. See the module docs for the shape.
///
/// Ordering invariants:
///
/// * `cursor` never exceeds the firing time of any stored entry except
///   those in `early`.
/// * every lane entry's [`level_of`]`(cursor, at)` equals its lane's level
///   (maintained by cascading whenever the cursor advances).
/// * `staged` holds the (single-instant) contents of the level-0 slot the
///   cursor points at, in reverse-seq order so pops come off the back in
///   FIFO order.
/// * `early` (reverse-sorted) holds entries pushed *behind* the cursor:
///   legal when a caller peeks (which advances the cursor to the next
///   event) and then schedules something before that next event fires.
#[derive(Debug)]
struct Wheel<E> {
    cursor: u64,
    /// Per-level occupancy bitmap; bit `s` set iff `lanes[l*SLOTS + s]`
    /// is non-empty.
    occupied: [u64; LEVELS],
    /// `LEVELS × SLOTS` buckets, flattened.
    lanes: Vec<Vec<Entry<E>>>,
    /// Contents of the current level-0 slot, reverse-seq; pop from back.
    staged: Vec<Entry<E>>,
    /// Entries pushed before the cursor, sorted by (time, seq) descending;
    /// pop from back. Always drained before anything in the wheel.
    early: Vec<Entry<E>>,
    /// Entries outside the cursor's top-level window; re-seeded into the
    /// wheel as the cursor approaches.
    overflow: BinaryHeap<HeapEnt<E>>,
    /// Total entries stored (including cancelled-but-unskipped).
    stored: usize,
}

impl<E> Wheel<E> {
    fn new() -> Wheel<E> {
        Wheel {
            cursor: 0,
            occupied: [0; LEVELS],
            lanes: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            staged: Vec::new(),
            early: Vec::new(),
            overflow: BinaryHeap::new(),
            stored: 0,
        }
    }

    /// File a new or cascaded entry whose time is at or after the cursor.
    fn place(&mut self, e: Entry<E>) {
        debug_assert!(e.at.0 >= self.cursor);
        match level_of(self.cursor, e.at.0) {
            Some(l) => {
                debug_assert_eq!(
                    e.at.0 & !(WHEEL_SPAN - 1),
                    self.cursor & !(WHEEL_SPAN - 1),
                    "a placed entry must share the cursor's wheel window"
                );
                let slot = ((e.at.0 >> (LEVEL_BITS * l as u32)) & SLOT_MASK) as usize;
                self.occupied[l] |= 1 << slot;
                self.lanes[l * SLOTS + slot].push(e);
            }
            None => self.overflow.push(HeapEnt(e)),
        }
    }

    /// Accept a brand-new entry (which, uniquely, may be behind the
    /// cursor — see the `early` field docs).
    fn insert(&mut self, e: Entry<E>) {
        self.stored += 1;
        if e.at.0 < self.cursor {
            // Reverse-sorted insert; `early` is tiny and short-lived.
            let key = (e.at, e.seq);
            let pos = self.early.partition_point(|x| (x.at, x.seq) > key);
            self.early.insert(pos, e);
        } else if !self.staged.is_empty() && e.at.0 == self.cursor {
            // Joins the instant currently being drained: same time, larger
            // seq than everything staged, so it fires last — the front of
            // the reversed buffer.
            self.staged.insert(0, e);
        } else {
            self.place(e);
        }
    }

    /// The earliest possible next event in the wheel proper: `(time,
    /// level, slot)` where `time` is exact for level 0 and the slot's
    /// window start for coarser levels. Lower levels always precede
    /// higher ones, so the first occupied level wins.
    fn candidate(&self) -> Option<(u64, usize, usize)> {
        for l in 0..LEVELS {
            let occ = self.occupied[l];
            if occ == 0 {
                continue;
            }
            let s = occ.trailing_zeros() as u64;
            let shift = LEVEL_BITS * l as u32;
            let t = if l == 0 {
                (self.cursor & !SLOT_MASK) | s
            } else {
                let low_mask = (1u64 << (shift + LEVEL_BITS)) - 1;
                (self.cursor & !low_mask) | (s << shift)
            };
            debug_assert!(t >= self.cursor, "wheel candidate behind cursor");
            return Some((t, l, s as usize));
        }
        None
    }
}

// ---------------------------------------------------------------------
// The queue
// ---------------------------------------------------------------------

#[derive(Debug)]
enum Core<E> {
    Heap(BinaryHeap<HeapEnt<E>>),
    Wheel(Wheel<E>),
}

/// A time-ordered event queue with stable same-time ordering and lazy
/// cancellation. See the module docs for the backend story.
#[derive(Debug)]
pub struct EventQueue<E> {
    core: Core<E>,
    /// Monotonic sequence number providing same-time FIFO order (also
    /// drawn from by [`EventQueue::alloc_seq`] for externally merged
    /// event sources, e.g. the kernel's tick lane).
    next_seq: u64,
    table: SlotTable,
    /// Stored entries that are not cancelled.
    live: usize,
    /// Time of the most recently popped event; pops are monotone.
    last_pop: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue on the default backend (see [`default_backend`]).
    pub fn new() -> Self {
        Self::with_backend(default_backend())
    }

    /// An empty queue on an explicit backend.
    pub fn with_backend(backend: Backend) -> Self {
        EventQueue {
            core: match backend {
                Backend::Heap => Core::Heap(BinaryHeap::new()),
                Backend::Wheel => Core::Wheel(Wheel::new()),
            },
            next_seq: 0,
            table: SlotTable::default(),
            live: 0,
            last_pop: Time::ZERO,
        }
    }

    /// Which backend this queue runs on.
    pub fn backend(&self) -> Backend {
        match self.core {
            Core::Heap(_) => Backend::Heap,
            Core::Wheel(_) => Backend::Wheel,
        }
    }

    /// Claim the next FIFO sequence number without storing an event.
    ///
    /// For event sources kept *outside* the queue but merged with it by
    /// (time, seq) key — the kernel's per-CPU tick lane reserves its seq
    /// here at arm time, so the merged order is byte-identical to what
    /// pushing a tick event would have produced.
    pub fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in
    /// insertion order.
    pub fn push(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = self.table.acquire();
        let e = Entry {
            at,
            seq,
            slot,
            payload,
        };
        match &mut self.core {
            Core::Heap(h) => h.push(HeapEnt(e)),
            Core::Wheel(w) => w.insert(e),
        }
        self.live += 1;
        EventId::new(gen, slot)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        let slot = &mut self.table.slots[id.slot() as usize];
        if slot.gen == id.gen() && !slot.cancelled {
            slot.cancelled = true;
            self.live -= 1;
        }
    }

    /// Position the next live entry at the backend's head, dropping
    /// cancelled ones along the way, and return its (time, seq) key.
    fn ensure_head(&mut self) -> Option<(Time, u64)> {
        let EventQueue { core, table, .. } = self;
        match core {
            Core::Heap(h) => loop {
                let head = h.peek()?;
                if table.cancelled(head.0.slot) {
                    let e = h.pop().expect("peeked").0;
                    table.release(e.slot);
                } else {
                    return Some((head.0.at, head.0.seq));
                }
            },
            Core::Wheel(w) => loop {
                // Drop cancelled heads of the two pop-side buffers.
                while let Some(e) = w.early.last() {
                    if !table.cancelled(e.slot) {
                        break;
                    }
                    let e = w.early.pop().expect("peeked");
                    table.release(e.slot);
                    w.stored -= 1;
                }
                while let Some(e) = w.staged.last() {
                    if !table.cancelled(e.slot) {
                        break;
                    }
                    let e = w.staged.pop().expect("peeked");
                    table.release(e.slot);
                    w.stored -= 1;
                }
                // `early` times precede the cursor, hence everything
                // staged or still in the wheel.
                if let Some(e) = w.early.last() {
                    return Some((e.at, e.seq));
                }
                if let Some(e) = w.staged.last() {
                    return Some((e.at, e.seq));
                }
                // Refill: advance to the next occupied slot, cascading
                // coarse slots and pulling due overflow entries in.
                let cand = w.candidate();
                if let Some(o) = w.overflow.peek() {
                    let due = match cand {
                        // An overflow entry at/before the next wheel
                        // window must be filed first so it sorts into
                        // that window's slots.
                        Some((t, _, _)) => o.0.at.0 <= t,
                        None => true,
                    };
                    if due {
                        let e = w.overflow.pop().expect("peeked").0;
                        if table.cancelled(e.slot) {
                            table.release(e.slot);
                            w.stored -= 1;
                            continue;
                        }
                        if cand.is_none() {
                            // Wheel empty: leap the cursor straight to the
                            // entry so it always files as the next level-0
                            // slot. (Placement is XOR-based, so an entry
                            // just across a top-level window boundary
                            // cannot be filed from the old cursor even
                            // when its delta is within the wheel span.)
                            w.cursor = e.at.0;
                        }
                        w.place(e);
                        continue;
                    }
                }
                let (t, l, s) = cand?;
                w.cursor = t;
                w.occupied[l] &= !(1 << s);
                if l == 0 {
                    // The slot holds exactly one instant; stage it for
                    // FIFO pops (reverse so we pop from the back).
                    debug_assert!(w.staged.is_empty());
                    std::mem::swap(&mut w.staged, &mut w.lanes[s]);
                    // Insertion order is seq order except when overflow
                    // re-seeding interleaved old entries; restore it then.
                    if w.staged.windows(2).any(|p| p[0].seq > p[1].seq) {
                        w.staged.sort_unstable_by_key(|e| e.seq);
                    }
                    w.staged.reverse();
                } else {
                    // Cascade the coarse slot down one or more levels.
                    let mut v = std::mem::take(&mut w.lanes[l * SLOTS + s]);
                    for e in v.drain(..) {
                        if table.cancelled(e.slot) {
                            table.release(e.slot);
                            w.stored -= 1;
                        } else {
                            w.place(e);
                        }
                    }
                    // Hand the emptied bucket's capacity back to its lane.
                    w.lanes[l * SLOTS + s] = v;
                }
            },
        }
    }

    /// Remove and return the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.ensure_head()?;
        let EventQueue { core, table, .. } = self;
        let e = match core {
            Core::Heap(h) => h.pop().expect("head ensured").0,
            Core::Wheel(w) => {
                w.stored -= 1;
                if !w.early.is_empty() {
                    w.early.pop().expect("head ensured")
                } else {
                    w.staged.pop().expect("head ensured")
                }
            }
        };
        let was_cancelled = table.release(e.slot);
        debug_assert!(!was_cancelled, "ensure_head yielded a cancelled entry");
        debug_assert!(e.at >= self.last_pop, "event queue went back in time");
        self.last_pop = e.at;
        self.live -= 1;
        Some((e.at, e.payload))
    }

    /// The firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.ensure_head().map(|(at, _)| at)
    }

    /// The (time, seq) key of the earliest live event without removing
    /// it. The seq shares [`EventQueue::alloc_seq`]'s number space, so an
    /// external event source holding reserved seqs can merge against this
    /// key deterministically.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        self.ensure_head()
    }

    /// Number of entries currently stored, including not-yet-skipped
    /// cancelled ones. Useful only as a rough size signal.
    pub fn raw_len(&self) -> usize {
        match &self.core {
            Core::Heap(h) => h.len(),
            Core::Wheel(w) => w.stored,
        }
    }

    /// Number of live (not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    /// Run `f` against a fresh queue on each backend.
    fn on_both(f: impl Fn(EventQueue<&'static str>)) {
        f(EventQueue::with_backend(Backend::Heap));
        f(EventQueue::with_backend(Backend::Wheel));
    }

    #[test]
    fn default_is_wheel_unless_overridden() {
        assert_eq!(EventQueue::<u8>::new().backend(), default_backend());
        assert_eq!(
            EventQueue::<u8>::with_backend(Backend::Heap).backend(),
            Backend::Heap
        );
    }

    #[test]
    fn pops_in_time_order() {
        on_both(|mut q| {
            q.push(Time(30), "c");
            q.push(Time(10), "a");
            q.push(Time(20), "b");
            assert_eq!(q.pop(), Some((Time(10), "a")));
            assert_eq!(q.pop(), Some((Time(20), "b")));
            assert_eq!(q.pop(), Some((Time(30), "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn same_time_is_fifo() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            for i in 0..100 {
                q.push(Time(5), i);
            }
            for i in 0..100 {
                assert_eq!(q.pop(), Some((Time(5), i)));
            }
        }
    }

    #[test]
    fn cancellation_skips_events() {
        on_both(|mut q| {
            let a = q.push(Time(1), "a");
            q.push(Time(2), "b");
            q.cancel(a);
            assert_eq!(q.pop(), Some((Time(2), "b")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        on_both(|mut q| {
            let a = q.push(Time(1), "a");
            assert_eq!(q.pop(), Some((Time(1), "a")));
            q.cancel(a); // must not disturb later events
            q.push(Time(2), "b");
            assert_eq!(q.pop(), Some((Time(2), "b")));
        });
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        on_both(|mut q| {
            let a = q.push(Time(1), "a");
            q.push(Time(5), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Time(5)));
            assert_eq!(q.pop(), Some((Time(5), "b")));
        });
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            let a = q.push(Time::ZERO + Dur::millis(1), ());
            assert!(!q.is_empty());
            q.cancel(a);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn stale_id_cannot_cancel_a_recycled_slot() {
        on_both(|mut q| {
            let a = q.push(Time(1), "a");
            assert_eq!(q.pop(), Some((Time(1), "a")));
            // "b" reuses a's slot (single-slot table); the stale handle must
            // fail its generation check rather than kill the new event.
            let b = q.push(Time(2), "b");
            q.cancel(a);
            assert_eq!(q.pop(), Some((Time(2), "b")));
            // And a live handle still cancels normally after recycling.
            let c = q.push(Time(3), "c");
            q.cancel(c);
            q.cancel(b); // stale again: no-op
            assert_eq!(q.pop(), None);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            for round in 0..10u64 {
                for i in 0..16 {
                    q.push(Time(round * 100 + i), i);
                }
                let cancel_every_other: Vec<_> = (0..16)
                    .map(|i| q.push(Time(round * 100 + 50 + i), i))
                    .collect();
                for id in cancel_every_other.iter().step_by(2) {
                    q.cancel(*id);
                }
                while q.pop().is_some() {}
            }
            assert!(
                q.table.slots.len() <= 32,
                "slot table grew past peak occupancy: {}",
                q.table.slots.len()
            );
        }
    }

    #[test]
    fn len_counts_live_events_only() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            let a = q.push(Time(1), ());
            q.push(Time(2), ());
            assert_eq!(q.len(), 2);
            q.cancel(a);
            assert_eq!(q.len(), 1);
            assert_eq!(q.raw_len(), 2, "cancelled entry still buffered");
            q.pop();
            assert_eq!(q.len(), 0);
        }
    }

    #[test]
    fn alloc_seq_interleaves_with_pushes() {
        let mut q = EventQueue::with_backend(Backend::Wheel);
        q.push(Time(9), "x");
        let s = q.alloc_seq();
        let id = q.push(Time(9), "y");
        assert!(q.peek_key().unwrap().1 < s, "first push precedes the seq");
        q.pop();
        assert!(q.peek_key().unwrap().1 > s, "second push follows the seq");
        q.cancel(id);
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            // Beyond the 2^42 ns wheel span: simulated hours/days.
            let far = Time(WHEEL_SPAN * 3 + 17);
            let farther = Time(WHEEL_SPAN * 900 + 1);
            q.push(far, "far");
            q.push(Time(5), "near");
            let dead = q.push(farther, "cancelled");
            q.push(farther, "farther");
            q.cancel(dead);
            assert_eq!(q.pop(), Some((Time(5), "near")));
            assert_eq!(q.pop(), Some((far, "far")));
            assert_eq!(q.pop(), Some((farther, "farther")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn push_behind_a_peeked_cursor_still_pops_in_order() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time(5_000_000), "late");
            // Peeking may advance the wheel cursor to 5 ms...
            assert_eq!(q.peek_time(), Some(Time(5_000_000)));
            // ...but a driver may still schedule work before that.
            q.push(Time(1_000), "early2");
            q.push(Time(999), "early1");
            let dead = q.push(Time(998), "dead");
            q.cancel(dead);
            assert_eq!(q.pop(), Some((Time(999), "early1")));
            assert_eq!(q.peek_time(), Some(Time(1_000)));
            assert_eq!(q.pop(), Some((Time(1_000), "early2")));
            assert_eq!(q.pop(), Some((Time(5_000_000), "late")));
        }
    }

    #[test]
    fn same_instant_push_while_draining_stays_fifo() {
        for backend in [Backend::Heap, Backend::Wheel] {
            let mut q = EventQueue::with_backend(backend);
            q.push(Time(7), 0u64);
            q.push(Time(7), 1);
            assert_eq!(q.pop(), Some((Time(7), 0)));
            // Queue is mid-instant (entry 1 staged); a handler pushes more
            // work for the same instant.
            q.push(Time(7), 2);
            q.push(Time(8), 9);
            q.push(Time(7), 3);
            assert_eq!(q.pop(), Some((Time(7), 1)));
            assert_eq!(q.pop(), Some((Time(7), 2)));
            assert_eq!(q.pop(), Some((Time(7), 3)));
            assert_eq!(q.pop(), Some((Time(8), 9)));
        }
    }

    /// The wheel must produce exactly the heap's pop sequence for a messy
    /// interleaved workload (the cheap in-crate differential check; the
    /// property-based one lives in `tests/backend_equiv.rs`).
    #[test]
    fn wheel_matches_heap_on_interleaved_mix() {
        let mut heap = EventQueue::with_backend(Backend::Heap);
        let mut wheel = EventQueue::with_backend(Backend::Wheel);
        let mut rng = crate::rng::SimRng::new(0xD1FF);
        let mut ids = Vec::new();
        let mut now = 0u64;
        for step in 0..5_000u64 {
            match rng.gen_below(10) {
                0..=5 => {
                    let horizon = match rng.gen_below(4) {
                        0 => 64,             // same few ns
                        1 => 1_000_000,      // within a tick
                        2 => 50_000_000,     // tens of ms
                        _ => WHEEL_SPAN * 2, // overflow territory
                    };
                    let at = Time(now + rng.gen_below(horizon));
                    let payload = step;
                    let a = heap.push(at, payload);
                    let b = wheel.push(at, payload);
                    ids.push((a, b));
                }
                6..=7 => {
                    if !ids.is_empty() {
                        let i = rng.gen_below(ids.len() as u64) as usize;
                        let (a, b) = ids[i];
                        heap.cancel(a);
                        wheel.cancel(b);
                    }
                }
                _ => {
                    let h = heap.pop();
                    let w = wheel.pop();
                    assert_eq!(h, w, "backends diverged at step {step}");
                    if let Some((at, _)) = h {
                        now = at.0;
                    }
                }
            }
            assert_eq!(heap.len(), wheel.len());
        }
        loop {
            let h = heap.pop();
            let w = wheel.pop();
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }
}
