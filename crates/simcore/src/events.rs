//! The simulation event queue.
//!
//! A classic calendar for discrete-event simulation: events are pushed with a
//! firing [`Time`] and popped in (time, insertion-order) order, so that events
//! scheduled for the same instant fire in FIFO order — a property the kernel
//! relies on for determinism.
//!
//! Cancellation is O(1): [`EventQueue::push`] returns an [`EventId`] and
//! [`EventQueue::cancel`] marks it dead; dead entries are skipped lazily on
//! pop. The kernel uses this to invalidate a task's pending run-completion
//! event whenever the task is preempted, migrated, or charged overhead.
//!
//! Ids are generation-stamped slot indices rather than entries in a hash
//! set: every in-heap event owns one slot in a recycled slot table, and an
//! [`EventId`] packs `(generation, slot)`. The per-pop liveness check is a
//! single indexed load instead of a `HashSet` lookup — this queue is the
//! innermost loop of the whole simulator — and a stale id (cancel after
//! fire) simply fails its generation check.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Opaque handle to a scheduled event, used for cancellation.
///
/// Packs `(generation << 32) | slot`. The generation is bumped each time a
/// slot is recycled, so a handle kept after its event fired can never alias
/// a newer event (until a single slot sees 2³² reuses, which at simulator
/// event rates is out of reach).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

impl EventId {
    fn new(gen: u32, slot: u32) -> EventId {
        EventId((u64::from(gen) << 32) | u64::from(slot))
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn slot(self) -> u32 {
        self.0 as u32
    }
}

/// Liveness state of one slot in the recycled slot table.
#[derive(Debug, Clone)]
struct Slot {
    /// Current generation; an [`EventId`] is live iff its stamp matches.
    gen: u32,
    /// Set by [`EventQueue::cancel`]; checked (and the slot freed) on pop.
    cancelled: bool,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Time, u64)>,
    /// Index of the slot this in-heap event owns.
    slot: u32,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A time-ordered event queue with stable same-time ordering and lazy
/// cancellation.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Monotonic sequence number providing same-time FIFO order.
    next_seq: u64,
    /// One slot per in-heap event; freed and generation-bumped on pop.
    slots: Vec<Slot>,
    /// Indices of slots not currently owned by an in-heap event.
    free: Vec<u32>,
    /// Heap entries that are not cancelled.
    live: usize,
    /// Time of the most recently popped event; pops are monotone.
    last_pop: Time,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            last_pop: Time::ZERO,
        }
    }

    /// Schedule `payload` to fire at `at`. Events at equal times fire in
    /// insertion order.
    pub fn push(&mut self, at: Time, payload: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                self.slots.push(Slot {
                    gen: 0,
                    cancelled: false,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            slot,
            payload,
        });
        self.live += 1;
        EventId::new(self.slots[slot as usize].gen, slot)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        let slot = &mut self.slots[id.slot() as usize];
        if slot.gen == id.gen() && !slot.cancelled {
            slot.cancelled = true;
            self.live -= 1;
        }
    }

    /// Recycle `slot` once its heap entry has been removed: bump the
    /// generation so outstanding ids go stale, clear the cancel mark.
    fn release_slot(&mut self, slot: u32) -> bool {
        let s = &mut self.slots[slot as usize];
        let was_cancelled = s.cancelled;
        s.gen = s.gen.wrapping_add(1);
        s.cancelled = false;
        self.free.push(slot);
        was_cancelled
    }

    /// Remove and return the earliest live event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(entry) = self.heap.pop() {
            let cancelled = self.release_slot(entry.slot);
            if cancelled {
                continue;
            }
            let Reverse((at, _)) = entry.key;
            debug_assert!(at >= self.last_pop, "event queue went back in time");
            self.last_pop = at;
            self.live -= 1;
            return Some((at, entry.payload));
        }
        None
    }

    /// The firing time of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drain dead entries from the top so the peek is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.slots[entry.slot as usize].cancelled {
                let slot = self.heap.pop().expect("peeked").slot;
                self.release_slot(slot);
            } else {
                let Reverse((at, _)) = entry.key;
                return Some(at);
            }
        }
        None
    }

    /// Number of entries currently stored, including not-yet-skipped
    /// cancelled ones. Useful only as a rough size signal.
    pub fn raw_len(&self) -> usize {
        self.heap.len()
    }

    /// Number of live (not cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Dur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time(30), "c");
        q.push(Time(10), "a");
        q.push(Time(20), "b");
        assert_eq!(q.pop(), Some((Time(10), "a")));
        assert_eq!(q.pop(), Some((Time(20), "b")));
        assert_eq!(q.pop(), Some((Time(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Time(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        q.push(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((Time(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        assert_eq!(q.pop(), Some((Time(1), "a")));
        q.cancel(a); // must not disturb later events
        q.push(Time(2), "b");
        assert_eq!(q.pop(), Some((Time(2), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        q.push(Time(5), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Time(5)));
        assert_eq!(q.pop(), Some((Time(5), "b")));
    }

    #[test]
    fn is_empty_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(Time::ZERO + Dur::millis(1), ());
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }

    #[test]
    fn stale_id_cannot_cancel_a_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), "a");
        assert_eq!(q.pop(), Some((Time(1), "a")));
        // "b" reuses a's slot (single-slot table); the stale handle must
        // fail its generation check rather than kill the new event.
        let b = q.push(Time(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((Time(2), "b")));
        // And a live handle still cancels normally after recycling.
        let c = q.push(Time(3), "c");
        q.cancel(c);
        q.cancel(b); // stale again: no-op
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn slots_are_recycled_not_leaked() {
        let mut q = EventQueue::new();
        for round in 0..10u64 {
            for i in 0..16 {
                q.push(Time(round * 100 + i), i);
            }
            let cancel_every_other: Vec<_> = (0..16)
                .map(|i| q.push(Time(round * 100 + 50 + i), i))
                .collect();
            for id in cancel_every_other.iter().step_by(2) {
                q.cancel(*id);
            }
            while q.pop().is_some() {}
        }
        assert!(
            q.slots.len() <= 32,
            "slot table grew past peak occupancy: {}",
            q.slots.len()
        );
    }

    #[test]
    fn len_counts_live_events_only() {
        let mut q = EventQueue::new();
        let a = q.push(Time(1), ());
        q.push(Time(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.raw_len(), 2, "cancelled entry still buffered");
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
