//! Tiny streaming hash used by the determinism tests.
//!
//! The kernel feeds every trace event into an [`Fnv1a`] hasher; two runs with
//! the same seed must produce the same digest. FNV-1a is not cryptographic —
//! it only needs to be sensitive to any divergence in the event stream.

/// Streaming 64-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// Fresh hasher.
    pub fn new() -> Self {
        Fnv1a {
            state: Self::OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a `u64` (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Absorb a `u32` (little-endian).
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Current digest.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("") = offset basis; FNV-1a("a") is a standard vector.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn order_sensitivity() {
        let mut a = Fnv1a::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv1a::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
