//! Simulated time.
//!
//! All simulation time is expressed in integer nanoseconds since simulation
//! start. Two newtypes keep instants and durations apart at the type level:
//! [`Time`] (an instant) and [`Dur`] (a span). Arithmetic between them is
//! defined only in the combinations that make sense (`Time + Dur = Time`,
//! `Time - Time = Dur`, ...), which catches unit bugs at compile time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Dur(pub u64);

impl Time {
    /// The simulation epoch (t = 0).
    pub const ZERO: Time = Time(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Nanoseconds since simulation start.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    #[inline]
    pub fn checked_add(self, d: Dur) -> Option<Time> {
        self.0.checked_add(d.0).map(Time)
    }
}

impl Dur {
    /// Zero-length span.
    pub const ZERO: Dur = Dur(0);
    /// Largest representable span.
    pub const MAX: Dur = Dur(u64::MAX);

    /// Span of `n` nanoseconds.
    #[inline]
    pub const fn nanos(n: u64) -> Dur {
        Dur(n)
    }

    /// Span of `n` microseconds.
    #[inline]
    pub const fn micros(n: u64) -> Dur {
        Dur(n * 1_000)
    }

    /// Span of `n` milliseconds.
    #[inline]
    pub const fn millis(n: u64) -> Dur {
        Dur(n * 1_000_000)
    }

    /// Span of `n` seconds.
    #[inline]
    pub const fn secs(n: u64) -> Dur {
        Dur(n * 1_000_000_000)
    }

    /// Span of `s` seconds given as a float; rounds to the nearest nanosecond.
    #[inline]
    pub fn secs_f64(s: f64) -> Dur {
        debug_assert!(s >= 0.0, "durations are non-negative");
        Dur((s * 1e9).round() as u64)
    }

    /// Nanoseconds in this span.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds in this span (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds in this span (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds in this span, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    #[inline]
    pub fn saturating_mul(self, k: u64) -> Dur {
        Dur(self.0.saturating_mul(k))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign<Dur> for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Div<Dur> for Dur {
    type Output = u64;
    #[inline]
    fn div(self, rhs: Dur) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem<Dur> for Dur {
    type Output = Dur;
    #[inline]
    fn rem(self, rhs: Dur) -> Dur {
        Dur(self.0 % rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(Dur::nanos(7).as_nanos(), 7);
        assert_eq!(Dur::micros(3).as_nanos(), 3_000);
        assert_eq!(Dur::millis(2).as_nanos(), 2_000_000);
        assert_eq!(Dur::secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Dur::secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn time_dur_arithmetic() {
        let t = Time::ZERO + Dur::millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!(t - Time::ZERO, Dur::millis(5));
        assert_eq!((t + Dur::millis(5)) - t, Dur::millis(5));
        assert_eq!(t - Dur::millis(5), Time::ZERO);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = Time(100);
        let b = Time(50);
        assert_eq!(a.saturating_since(b), Dur(50));
        assert_eq!(b.saturating_since(a), Dur::ZERO);
    }

    #[test]
    fn div_and_rem() {
        assert_eq!(Dur::millis(10) / Dur::millis(3), 3);
        assert_eq!(Dur::millis(10) % Dur::millis(3), Dur::millis(1));
        assert_eq!(Dur::millis(10) / 2, Dur::millis(5));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Dur::nanos(12)), "12ns");
        assert_eq!(format!("{}", Dur::micros(12)), "12.000us");
        assert_eq!(format!("{}", Dur::millis(12)), "12.000ms");
        assert_eq!(format!("{}", Dur::secs(12)), "12.000s");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(Time::MAX.checked_add(Dur::nanos(1)), None);
        assert_eq!(Time(1).checked_add(Dur::nanos(1)), Some(Time(2)));
    }
}
