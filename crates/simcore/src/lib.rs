//! Discrete-event simulation substrate.
//!
//! This crate provides the building blocks shared by every other crate in the
//! workspace: a simulated nanosecond clock ([`Time`], [`Dur`]), an event queue
//! with amortized-O(1) scheduling on a hierarchical timer wheel and O(1)
//! cancellation ([`EventQueue`], with a binary-heap fallback [`Backend`] for
//! differential testing), a fully deterministic pseudo-random number
//! generator ([`SimRng`]), and small tracing/hashing helpers used by the
//! determinism tests.
//!
//! Nothing in this crate knows about scheduling; it is a generic simulation
//! core kept deliberately small and heavily tested.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod hash;
pub mod rng;
pub mod time;
pub mod trace;

pub use events::{default_backend, set_default_backend, Backend, EventId, EventQueue};
pub use hash::Fnv1a;
pub use rng::SimRng;
pub use time::{Dur, Time};
pub use trace::TraceBuffer;
