//! Differential property tests: the timer-wheel and binary-heap backends
//! of [`EventQueue`] must be observably identical — same pop sequence,
//! same lengths, same peeked keys — under arbitrary interleavings of
//! pushes (near-term and far-future), pops, cancellations, sequence
//! burns, and peeks. The scenario-level counterpart lives in
//! `crates/experiments/tests/wheel_equiv.rs`.

use proptest::prelude::*;
use simcore::{Backend, EventId, EventQueue, Time};

/// One step of the differential driver.
#[derive(Debug, Clone)]
enum Op {
    /// Push at `now + delta`. Near-term deltas exercise the level-0/1
    /// lanes; far-future ones land in the overflow heap and come back
    /// through cursor leaps.
    Push(u64),
    /// Pop one event from both queues; advances `now` to the popped time.
    Pop,
    /// Cancel the live id at index `i % live.len()` in both queues
    /// (no-op when nothing is live; stale ids exercise generation checks).
    Cancel(usize),
    /// Burn a sequence number, as the kernel's batched tick lane does.
    AllocSeq,
    /// Peek the head key — forces wheel cascades without consuming, and
    /// can strand the cursor ahead of later same-time pushes.
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u64..200_000).prop_map(Op::Push),
        1 => (0u64..(1 << 44)).prop_map(Op::Push),
        4 => Just(Op::Pop),
        2 => any::<usize>().prop_map(Op::Cancel),
        1 => Just(Op::AllocSeq),
        2 => Just(Op::Peek),
    ]
}

proptest! {
    /// Whatever the op sequence, heap and wheel agree step for step.
    #[test]
    fn wheel_and_heap_are_observably_identical(
        ops in prop::collection::vec(op_strategy(), 1..400),
    ) {
        let mut heap = EventQueue::with_backend(Backend::Heap);
        let mut wheel = EventQueue::with_backend(Backend::Wheel);
        prop_assert_eq!(heap.backend(), Backend::Heap);
        prop_assert_eq!(wheel.backend(), Backend::Wheel);

        let mut now = 0u64;
        let mut live: Vec<(EventId, EventId)> = Vec::new();
        let mut payload = 0u32;
        for op in ops {
            match op {
                Op::Push(delta) => {
                    let at = Time(now.saturating_add(delta));
                    let a = heap.push(at, payload);
                    let b = wheel.push(at, payload);
                    live.push((a, b));
                    payload += 1;
                }
                Op::Pop => {
                    let a = heap.pop();
                    let b = wheel.pop();
                    prop_assert_eq!(a, b, "pop mismatch");
                    if let Some((at, _)) = a {
                        now = at.0;
                    }
                }
                Op::Cancel(i) => {
                    if !live.is_empty() {
                        let (a, b) = live.swap_remove(i % live.len());
                        heap.cancel(a);
                        wheel.cancel(b);
                    }
                }
                Op::AllocSeq => {
                    prop_assert_eq!(heap.alloc_seq(), wheel.alloc_seq());
                }
                Op::Peek => {
                    prop_assert_eq!(heap.peek_key(), wheel.peek_key());
                }
            }
            prop_assert_eq!(heap.len(), wheel.len(), "live count diverged");
            prop_assert_eq!(heap.is_empty(), wheel.is_empty());
        }

        // Drain to the end: the tails must match event for event.
        loop {
            let a = heap.pop();
            let b = wheel.pop();
            prop_assert_eq!(a, b, "drain mismatch");
            if a.is_none() {
                break;
            }
        }
    }
}
