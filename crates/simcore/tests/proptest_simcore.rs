//! Property tests of the simulation substrate.

use proptest::prelude::*;
use simcore::{Dur, EventQueue, SimRng, Time};

proptest! {
    /// Events always pop in non-decreasing time order, whatever the
    /// insertion order, and same-time events keep FIFO order.
    #[test]
    fn event_queue_is_time_ordered(times in prop::collection::vec(0u64..10_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time(t), i);
        }
        let mut last: Option<(Time, usize)> = None;
        let mut popped = 0;
        while let Some((at, idx)) = q.pop() {
            popped += 1;
            prop_assert_eq!(Time(times[idx]), at, "event payload matches its time");
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt, "time ordering violated");
                if at == lt {
                    prop_assert!(idx > lidx, "FIFO violated for equal times");
                }
            }
            last = Some((at, idx));
        }
        prop_assert_eq!(popped, times.len());
    }

    /// Cancellation removes exactly the cancelled events.
    #[test]
    fn event_queue_cancellation(times in prop::collection::vec(0u64..1000, 1..100),
                                cancel_mask in prop::collection::vec(any::<bool>(), 1..100)) {
        let mut q = EventQueue::new();
        let ids: Vec<_> = times.iter().enumerate().map(|(i, &t)| q.push(Time(t), i)).collect();
        let mut expect = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        let mut got = Vec::new();
        while let Some((_, idx)) = q.pop() {
            got.push(idx);
        }
        got.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// gen_range stays in bounds for arbitrary (lo, hi).
    #[test]
    fn rng_range_in_bounds(seed: u64, lo in 0u64..1_000_000, span in 0u64..1_000_000) {
        let hi = lo + span;
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            let v = rng.gen_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// Time/Dur arithmetic round-trips.
    #[test]
    fn time_arithmetic_round_trip(a in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t = Time(a);
        let dur = Dur(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!(t.saturating_since(t + dur), Dur::ZERO);
    }
}
