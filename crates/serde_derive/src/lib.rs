//! Vendored minimal `serde_derive` stand-in.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of serde's derive surface it actually uses:
//!
//! * `#[derive(Serialize)]` on named-field structs, tuple/newtype structs
//!   and fieldless enums (no generics, no `#[serde(...)]` attributes);
//! * `#[derive(Deserialize)]`, which expands to nothing — no code in this
//!   workspace ever deserializes.
//!
//! The generated impl produces a [`serde::Value`] tree; rendering to JSON
//! text lives in the vendored `serde_json` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (see module docs for the supported shapes).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = ident_at(&tokens, i, "expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&tokens, i, "expected a type name");
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde derive does not support generic types");
        }
    }

    let body = match kind.as_str() {
        "struct" => struct_body(&tokens, i),
        "enum" => enum_body(&tokens, i, &name),
        other => panic!("cannot derive Serialize for `{other}` items"),
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated impl must parse")
}

/// Derive `serde::Deserialize`: accepted for API compatibility, expands to
/// nothing because the workspace never deserializes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn ident_at(tokens: &[TokenTree], i: usize, msg: &str) -> String {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("{msg}, found {other:?}"),
    }
}

fn struct_body(tokens: &[TokenTree], i: usize) -> String {
    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let fields = named_field_names(&g.stream().into_iter().collect::<Vec<_>>());
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                          ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = tuple_field_count(&g.stream().into_iter().collect::<Vec<_>>());
            match n {
                0 => "::serde::Value::Null".to_string(),
                // Newtypes serialize transparently, as in real serde.
                1 => "::serde::Serialize::serialize_value(&self.0)".to_string(),
                _ => {
                    let elems: Vec<String> = (0..n)
                        .map(|k| format!("::serde::Serialize::serialize_value(&self.{k})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
                }
            }
        }
        _ => "::serde::Value::Null".to_string(), // unit struct
    }
}

/// Field names of a named-field struct body, skipping attributes and
/// visibility, splitting on commas outside `<...>` (groups are atomic in a
/// token stream, so only angle brackets need explicit depth tracking).
fn named_field_names(toks: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        j = skip_attrs_and_vis(toks, j);
        if j >= toks.len() {
            break;
        }
        match &toks[j] {
            TokenTree::Ident(id) => names.push(id.to_string()),
            other => panic!("expected a field name, found {other:?}"),
        }
        j += 1;
        let mut angle = 0i32;
        while j < toks.len() {
            if let TokenTree::Punct(p) = &toks[j] {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        j += 1;
                        break;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }
    names
}

fn tuple_field_count(toks: &[TokenTree]) -> usize {
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => n += 1,
                _ => {}
            }
        }
    }
    // A trailing comma would overcount by one; none of the vendored call
    // sites use one, and an extra `self.N` would fail to compile loudly.
    n
}

fn enum_body(tokens: &[TokenTree], i: usize, name: &str) -> String {
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        panic!("expected an enum body");
    };
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut arms = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        j = skip_attrs_and_vis(&toks, j);
        if j >= toks.len() {
            break;
        }
        let variant = ident_at(&toks, j, "expected a variant name");
        j += 1;
        if let Some(TokenTree::Group(_)) = toks.get(j) {
            panic!("vendored serde derive supports only fieldless enum variants");
        }
        if let Some(TokenTree::Punct(p)) = toks.get(j) {
            if p.as_char() == ',' {
                j += 1;
            }
        }
        arms.push(format!(
            "{name}::{variant} => ::serde::Value::Str(::std::string::String::from(\"{variant}\"))"
        ));
    }
    format!("match self {{ {} }}", arms.join(", "))
}
