//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of serde's surface it actually uses:
//! a [`Serialize`] trait that lowers a value into an in-memory JSON-like
//! [`Value`] tree, plus derive macros (re-exported from the vendored
//! `serde_derive`) for named-field structs, tuple/newtype structs and
//! fieldless enums. Rendering a [`Value`] to JSON text lives in the
//! vendored `serde_json` crate.
//!
//! Nothing in the workspace deserializes, so `Deserialize` exists only as
//! a no-op derive macro.

#![forbid(unsafe_code)]

// Let the `::serde::` paths emitted by the derive macro resolve when the
// derive is used inside this crate itself (e.g. in its tests).
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A floating-point number (non-finite values render as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order (struct field order) is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside a `Str`, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (`Int`/`UInt`/`Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// Non-negative integer value, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The elements of an `Array`, if any.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Types that can lower themselves into a [`Value`] tree.
pub trait Serialize {
    /// Produce the JSON value representing `self`.
    fn serialize_value(&self) -> Value;
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
uint_impls!(u8, u16, u32, u64, usize);

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
int_impls!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn serialize_value(&self) -> Value {
        if *self <= u64::MAX as u128 {
            Value::UInt(*self as u64)
        } else {
            Value::Float(*self as f64)
        }
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
    )*};
}
tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_lower_to_expected_variants() {
        assert_eq!(7u32.serialize_value(), Value::UInt(7));
        assert_eq!((-3i32).serialize_value(), Value::Int(-3));
        assert_eq!(true.serialize_value(), Value::Bool(true));
        assert_eq!(None::<u8>.serialize_value(), Value::Null);
        assert_eq!(
            (1u32, 2.5f64).serialize_value(),
            Value::Array(vec![Value::UInt(1), Value::Float(2.5)])
        );
    }

    #[derive(Serialize)]
    struct Named {
        a: u32,
        b: Vec<(f64, f64)>,
    }

    #[derive(Serialize)]
    struct Newtype(u64);

    #[derive(Serialize)]
    enum Kind {
        Alpha,
        #[allow(dead_code)]
        Beta,
    }

    #[test]
    fn derive_covers_the_shapes_the_workspace_uses() {
        let v = Named {
            a: 1,
            b: vec![(0.0, 1.0)],
        }
        .serialize_value();
        match v {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "a");
                assert_eq!(fields[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
        assert_eq!(Newtype(9).serialize_value(), Value::UInt(9));
        assert_eq!(Kind::Alpha.serialize_value(), Value::Str("Alpha".into()));
    }
}
