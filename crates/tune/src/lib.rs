//! Deterministic parameter search for `battle tune`.
//!
//! Searches a scheduler's declared [`ParamSpace`](sched_api::params) for a
//! vector that beats the stock defaults on a caller-supplied objective. Two
//! phases share one evaluation budget:
//!
//! 1. **Global**: seeded cross-entropy search. Each generation samples a
//!    batch of candidates from a per-dimension gaussian in the unit cube,
//!    scores them, and refits mean/sigma on the elites (smoothed, with the
//!    incumbent mixed in so the distribution never forgets the best point).
//! 2. **Local**: one-dimensional coordinate descent on the incumbent with a
//!    halving step, polishing the global phase's answer.
//!
//! Everything is deterministic: candidates come from a [`SimRng`] stream
//! seeded by [`SearchCfg::seed`], batches are handed to the evaluation
//! callback in a fixed order, and ties never replace the incumbent. The
//! callback may fan batches out across threads (`battle tune` uses the
//! supervised runner) as long as it returns scores in the order given —
//! the search itself is then byte-identical for any thread count.
//!
//! Scores are "higher is better"; non-finite scores mean the candidate
//! failed (diverged, livelocked, panicked) and lose to every finite score.
//! The stock default vector is always evaluated first, so the incumbent
//! can never be worse than stock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sched_api::params::{Dim, ParamVector};
use simcore::SimRng;
use std::collections::HashMap;

/// Search-budget knobs. The defaults suit a smoke run; real tuning raises
/// `budget`.
#[derive(Debug, Clone)]
pub struct SearchCfg {
    /// Total candidate evaluations, including the stock default.
    pub budget: usize,
    /// RNG seed for candidate sampling.
    pub seed: u64,
    /// Candidates per global-phase generation.
    pub batch: usize,
    /// Elites refitting the sampling distribution each generation.
    pub elite: usize,
    /// Fraction of the budget spent in the global phase (rest: descent).
    pub global_frac: f64,
    /// Initial per-dimension sigma, in unit-cube coordinates.
    pub init_sigma: f64,
    /// Elite-refit smoothing: `new = alpha * elite_fit + (1-alpha) * old`.
    pub smoothing: f64,
}

impl Default for SearchCfg {
    fn default() -> Self {
        SearchCfg {
            budget: 64,
            seed: 1,
            batch: 8,
            elite: 3,
            global_frac: 0.6,
            init_sigma: 0.25,
            smoothing: 0.7,
        }
    }
}

/// One evaluation in the search trajectory (the tuned-vs-stock plot's
/// x-axis is `eval`, the y-axis `best`).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TrajPoint {
    /// 1-based evaluation index (1 is always the stock default).
    pub eval: usize,
    /// This candidate's score (`-inf` encodes a failed run).
    pub score: f64,
    /// Best score seen up to and including this evaluation.
    pub best: f64,
}

/// The outcome of [`search`].
#[derive(Debug, Clone, serde::Serialize)]
pub struct SearchResult {
    /// Best vector found (the stock default if nothing beat it).
    pub incumbent: ParamVector,
    /// The incumbent's score.
    pub incumbent_score: f64,
    /// The stock default vector's score (evaluation #1).
    pub stock_score: f64,
    /// Evaluations actually spent (≤ budget; dedup never re-scores).
    pub evals: usize,
    /// Per-evaluation (score, best-so-far) history, in evaluation order.
    pub trajectory: Vec<TrajPoint>,
}

/// Standard-normal draw (Box–Muller) from the deterministic stream.
fn gaussian(rng: &mut SimRng) -> f64 {
    let u1 = rng.gen_f64().max(f64::MIN_POSITIVE);
    let u2 = rng.gen_f64();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Shared search state: dedup cache, incumbent, trajectory.
struct State<'d> {
    dims: &'d [Dim],
    cache: HashMap<Vec<u64>, f64>,
    evals: usize,
    best: (ParamVector, f64),
    trajectory: Vec<TrajPoint>,
}

impl<'d> State<'d> {
    /// Score `want` (already quantized) vectors, consulting the dedup
    /// cache; only cache misses reach `eval` and consume budget. Returns
    /// one score per input, in input order.
    fn eval_batch<F>(&mut self, want: &[ParamVector], eval: &mut F) -> Vec<f64>
    where
        F: FnMut(&[ParamVector]) -> Vec<f64>,
    {
        let fresh: Vec<ParamVector> = want
            .iter()
            .filter(|v| !self.cache.contains_key(&v.bits_key()))
            .cloned()
            .collect();
        if !fresh.is_empty() {
            let scores = eval(&fresh);
            assert_eq!(
                scores.len(),
                fresh.len(),
                "objective must return one score per candidate"
            );
            for (v, s) in fresh.iter().zip(scores) {
                let s = if s.is_finite() { s } else { f64::NEG_INFINITY };
                self.cache.insert(v.bits_key(), s);
                self.evals += 1;
                if s > self.best.1 {
                    self.best = (v.clone(), s);
                }
                self.trajectory.push(TrajPoint {
                    eval: self.evals,
                    score: s,
                    best: self.best.1,
                });
            }
        }
        want.iter().map(|v| self.cache[&v.bits_key()]).collect()
    }

    /// Sample up to `want` fresh candidates from the gaussian
    /// `(mean, sigma)` in unit space. Gives up after a bounded number of
    /// draws so tiny (e.g. all-integer) spaces terminate once exhausted.
    fn sample(
        &self,
        want: usize,
        mean: &[f64],
        sigma: &[f64],
        rng: &mut SimRng,
    ) -> Vec<ParamVector> {
        let mut out: Vec<ParamVector> = Vec::with_capacity(want);
        let mut seen: Vec<Vec<u64>> = Vec::with_capacity(want);
        for _ in 0..want.saturating_mul(20) {
            if out.len() == want {
                break;
            }
            let units: Vec<f64> = mean
                .iter()
                .zip(sigma)
                .map(|(&m, &s)| (m + s * gaussian(rng)).clamp(0.0, 1.0))
                .collect();
            let v = ParamVector::from_units(&units, self.dims);
            let key = v.bits_key();
            if self.cache.contains_key(&key) || seen.contains(&key) {
                continue;
            }
            seen.push(key);
            out.push(v);
        }
        out
    }
}

/// Run the two-phase search over `dims`, spending at most `cfg.budget`
/// calls of the objective. `eval` receives a batch of candidate vectors
/// (all quantized, all in bounds) and must return one score per vector in
/// the same order; it is free to evaluate the batch in parallel.
pub fn search<F>(dims: &[Dim], cfg: &SearchCfg, mut eval: F) -> SearchResult
where
    F: FnMut(&[ParamVector]) -> Vec<f64>,
{
    let mut st = State {
        dims,
        cache: HashMap::new(),
        evals: 0,
        best: (ParamVector::defaults(dims), f64::NEG_INFINITY),
        trajectory: Vec::new(),
    };
    let stock = ParamVector::defaults(dims);
    let stock_score = st.eval_batch(std::slice::from_ref(&stock), &mut eval)[0];
    // A failed stock run still leaves the defaults as the incumbent.
    st.best = (stock.clone(), stock_score);

    if !dims.is_empty() && cfg.budget > 1 {
        let mut rng = SimRng::new(cfg.seed);
        global_phase(&mut st, cfg, &mut rng, &mut eval);
        descent_phase(&mut st, cfg, &mut eval);
    }

    SearchResult {
        incumbent: st.best.0,
        incumbent_score: st.best.1,
        stock_score,
        evals: st.evals,
        trajectory: st.trajectory,
    }
}

/// Phase 1: cross-entropy global search with elite refit.
fn global_phase<F>(st: &mut State, cfg: &SearchCfg, rng: &mut SimRng, eval: &mut F)
where
    F: FnMut(&[ParamVector]) -> Vec<f64>,
{
    let n = st.dims.len();
    let global_budget = ((cfg.budget as f64) * cfg.global_frac.clamp(0.0, 1.0)).round() as usize;
    let mut mean = st.best.0.to_units(st.dims);
    let mut sigma = vec![cfg.init_sigma.max(0.02); n];
    while st.evals < global_budget.min(cfg.budget) {
        let want = cfg.batch.max(1).min(cfg.budget - st.evals);
        let cands = st.sample(want, &mean, &sigma, rng);
        if cands.is_empty() {
            return; // space exhausted at this distribution
        }
        let scores = st.eval_batch(&cands, eval);
        // Elite pool: this generation plus the incumbent, best first.
        // The stable sort keeps earlier candidates ahead on ties, so the
        // refit is deterministic.
        let mut pool: Vec<(Vec<f64>, f64)> = cands
            .iter()
            .zip(&scores)
            .map(|(v, &s)| (v.to_units(st.dims), s))
            .collect();
        pool.push((st.best.0.to_units(st.dims), st.best.1));
        pool.sort_by(|a, b| b.1.total_cmp(&a.1));
        let elites = &pool[..cfg.elite.max(1).min(pool.len())];
        let alpha = cfg.smoothing.clamp(0.0, 1.0);
        for d in 0..n {
            let m: f64 = elites.iter().map(|(u, _)| u[d]).sum::<f64>() / elites.len() as f64;
            let var: f64 =
                elites.iter().map(|(u, _)| (u[d] - m).powi(2)).sum::<f64>() / elites.len() as f64;
            mean[d] = alpha * m + (1.0 - alpha) * mean[d];
            sigma[d] = (alpha * var.sqrt() + (1.0 - alpha) * sigma[d]).max(0.02);
        }
    }
}

/// Phase 2: one-dimensional descent on the incumbent with a halving step.
fn descent_phase<F>(st: &mut State, cfg: &SearchCfg, eval: &mut F)
where
    F: FnMut(&[ParamVector]) -> Vec<f64>,
{
    let n = st.dims.len();
    let mut step = 0.25_f64;
    let mut units = st.best.0.to_units(st.dims);
    while st.evals < cfg.budget && step >= 1.0 / 1024.0 {
        let mut improved = false;
        'dims: for d in 0..n {
            for dir in [1.0_f64, -1.0] {
                if st.evals >= cfg.budget {
                    break 'dims;
                }
                let mut u = units.clone();
                u[d] = (u[d] + dir * step).clamp(0.0, 1.0);
                let v = ParamVector::from_units(&u, st.dims);
                // Quantization may collapse the step onto a point already
                // scored; the cache answers without spending budget.
                let before = st.best.1;
                let s = st.eval_batch(std::slice::from_ref(&v), eval)[0];
                if s > before {
                    units = st.best.0.to_units(st.dims);
                    improved = true;
                }
            }
        }
        if !improved {
            step *= 0.5;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::Dur;

    fn space() -> Vec<Dim> {
        vec![
            Dim::linear("a", 0.0, 10.0, 1.0),
            Dim::linear("b", 0.0, 10.0, 1.0),
            Dim::duration("slice", Dur::micros(100), Dur::millis(100), Dur::millis(3)),
        ]
    }

    /// Smooth objective peaking away from the default on the linear dims.
    fn sphere(batch: &[ParamVector]) -> Vec<f64> {
        batch
            .iter()
            .map(|v| -((v.0[0] - 7.0).powi(2) + (v.0[1] - 7.0).powi(2)))
            .collect()
    }

    #[test]
    fn finds_the_peak_of_a_smooth_objective() {
        let dims = space();
        let cfg = SearchCfg {
            budget: 200,
            seed: 42,
            ..SearchCfg::default()
        };
        let r = search(&dims, &cfg, sphere);
        assert!(r.incumbent_score > r.stock_score);
        assert!(
            (r.incumbent.0[0] - 7.0).abs() < 1.0,
            "a = {}",
            r.incumbent.0[0]
        );
        assert!(
            (r.incumbent.0[1] - 7.0).abs() < 1.0,
            "b = {}",
            r.incumbent.0[1]
        );
    }

    #[test]
    fn same_seed_same_everything() {
        let dims = space();
        let cfg = SearchCfg {
            budget: 60,
            seed: 7,
            ..SearchCfg::default()
        };
        let a = search(&dims, &cfg, sphere);
        let b = search(&dims, &cfg, sphere);
        assert_eq!(a.incumbent, b.incumbent);
        assert_eq!(a.trajectory, b.trajectory);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn budget_is_respected_and_stock_goes_first() {
        let dims = space();
        let cfg = SearchCfg {
            budget: 25,
            seed: 3,
            ..SearchCfg::default()
        };
        let mut calls = 0usize;
        let r = search(&dims, &cfg, |b| {
            calls += b.len();
            sphere(b)
        });
        assert_eq!(calls, r.evals);
        assert!(r.evals <= cfg.budget);
        assert_eq!(r.trajectory[0].eval, 1);
        assert_eq!(r.trajectory[0].score, r.stock_score);
        // Every scored candidate was unique: trajectory indices are 1..=evals.
        for (i, t) in r.trajectory.iter().enumerate() {
            assert_eq!(t.eval, i + 1);
        }
    }

    #[test]
    fn incumbent_never_worse_than_stock() {
        // Objective where the default is the global optimum: the search
        // must come home empty-handed with the stock vector intact.
        let dims = space();
        let stock = ParamVector::defaults(&dims);
        let cfg = SearchCfg {
            budget: 40,
            seed: 11,
            ..SearchCfg::default()
        };
        let s0 = stock.clone();
        let r = search(&dims, &cfg, move |batch| {
            batch
                .iter()
                .map(|v| {
                    let d: f64 = v.0.iter().zip(&s0.0).map(|(a, b)| (a - b).abs()).sum();
                    -d
                })
                .collect()
        });
        assert_eq!(r.incumbent, stock);
        assert_eq!(r.incumbent_score, r.stock_score);
    }

    #[test]
    fn failed_candidates_lose_to_any_finite_score() {
        // Everything but the default diverges (NaN): incumbent stays stock.
        let dims = space();
        let stock = ParamVector::defaults(&dims);
        let cfg = SearchCfg {
            budget: 30,
            seed: 5,
            ..SearchCfg::default()
        };
        let s0 = stock.clone();
        let r = search(&dims, &cfg, move |batch| {
            batch
                .iter()
                .map(|v| if *v == s0 { 0.5 } else { f64::NAN })
                .collect()
        });
        assert_eq!(r.incumbent, stock);
        assert_eq!(r.incumbent_score, 0.5);
        assert!(r
            .trajectory
            .iter()
            .skip(1)
            .all(|t| t.score == f64::NEG_INFINITY));
    }

    #[test]
    fn empty_space_evaluates_stock_once() {
        let cfg = SearchCfg::default();
        let r = search(&[], &cfg, |b| b.iter().map(|_| 1.0).collect());
        assert_eq!(r.evals, 1);
        assert_eq!(r.incumbent, ParamVector(Vec::new()));
        assert_eq!(r.incumbent_score, 1.0);
    }

    #[test]
    fn integer_space_terminates_when_exhausted() {
        // 3 × 3 grid: 9 distinct points. Budget far above that; dedup plus
        // bounded sampling must stop the search rather than spin.
        let dims = vec![Dim::integer("x", 0, 2, 0), Dim::integer("y", 0, 2, 0)];
        let cfg = SearchCfg {
            budget: 500,
            seed: 9,
            ..SearchCfg::default()
        };
        let r = search(&dims, &cfg, |batch| {
            batch.iter().map(|v| v.0[0] + v.0[1]).collect()
        });
        assert!(r.evals <= 9, "re-evaluated a cached point: {}", r.evals);
        assert_eq!(r.incumbent_score, 4.0); // (2, 2)
    }
}
