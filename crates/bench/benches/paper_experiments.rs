//! One benchmark per table/figure of the paper (reduced scale).
//!
//! Each benchmark runs the same driver the `battle` CLI uses to regenerate
//! the corresponding result, so `cargo bench` exercises every reproduction
//! path end-to-end and tracks simulator performance over time.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig1, fig34, fig6, fig7, fig9, run_entry, RunCfg, Sched};
use topology::Topology;

fn cfg(scale: f64) -> RunCfg {
    RunCfg { scale, seed: 42 }
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_api_mapping", |b| {
        b.iter(|| experiments::table1::report().len())
    });
}

fn bench_fig1_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_table2");
    g.sample_size(10);
    // Figure 1(a)/(b) and Table 2 come from the same runs.
    g.bench_function("fibo_sysbench_cfs", |b| {
        b.iter(|| fig1::run(Sched::Cfs, &cfg(0.02)).sysbench_tx_per_s)
    });
    g.bench_function("fibo_sysbench_ule", |b| {
        b.iter(|| fig1::run(Sched::Ule, &cfg(0.02)).sysbench_tx_per_s)
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("penalty_traces", |b| {
        b.iter(|| experiments::fig2::run(&cfg(0.02)).fibo_penalty.points.len())
    });
    g.finish();
}

fn bench_fig34(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig34");
    g.sample_size(10);
    g.bench_function("single_app_starvation", |b| {
        b.iter(|| {
            let f = fig34::run(&cfg(0.02));
            (f.interactive_count, f.background_count)
        })
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // Single-core suite: representative members of each family keep the
    // bench short while covering every workload archetype.
    let topo = Topology::single_core();
    let suite = workloads::suite();
    let mut g = c.benchmark_group("fig5_single_core");
    g.sample_size(10);
    for name in ["Gzip", "scimark2-(3)", "Apache", "MG", "Sysbench", "ferret"] {
        let entry = suite.iter().find(|e| e.name == name).expect("entry");
        g.bench_function(format!("{name}_both_scheds"), |b| {
            b.iter(|| {
                let c1 = run_entry(entry, Sched::Cfs, &topo, &cfg(0.02), false).perf;
                let u1 = run_entry(entry, Sched::Ule, &topo, &cfg(0.02), false).perf;
                (c1, u1)
            })
        });
    }
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_rebalance");
    g.sample_size(10);
    g.bench_function("unpin_512_cfs", |b| {
        b.iter(|| fig6::run(Sched::Cfs, &cfg(0.1)).migrated_in_200ms)
    });
    g.bench_function("unpin_512_ule", |b| {
        b.iter(|| fig6::run(Sched::Ule, &cfg(0.1)).on_core0_after_unpin)
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_cray");
    g.sample_size(10);
    g.bench_function("cray_placement_both", |b| {
        b.iter(|| {
            let u = fig7::run(Sched::Ule, &cfg(0.3));
            let c1 = fig7::run(Sched::Cfs, &cfg(0.3));
            (u.all_runnable_s, c1.all_runnable_s)
        })
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    // Multicore suite: representative subset on the 32-core machine.
    let topo = Topology::opteron_6172();
    let suite = workloads::suite();
    let mut g = c.benchmark_group("fig8_multicore");
    g.sample_size(10);
    for name in ["MG", "EP", "Sysbench"] {
        let entry = suite.iter().find(|e| e.name == name).expect("entry");
        g.bench_function(format!("{name}_both_scheds"), |b| {
            b.iter(|| {
                let c1 = run_entry(entry, Sched::Cfs, &topo, &cfg(0.05), true).perf;
                let u1 = run_entry(entry, Sched::Ule, &topo, &cfg(0.05), true).perf;
                (c1, u1)
            })
        });
    }
    // The hackbench scheduler stress-test (Figure 8's extra columns).
    let extra = workloads::multicore_extra();
    let hb = extra
        .iter()
        .find(|e| e.name == "Hackb-10")
        .expect("hackbench");
    g.bench_function("Hackb-10_both_scheds", |b| {
        b.iter(|| {
            let c1 = run_entry(hb, Sched::Cfs, &topo, &cfg(0.05), true).perf;
            let u1 = run_entry(hb, Sched::Ule, &topo, &cfg(0.05), true).perf;
            (c1, u1)
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_multiapp");
    g.sample_size(10);
    g.bench_function("four_pairs_both_scheds", |b| {
        b.iter(|| fig9::run(&cfg(0.02)).cells.len())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1_table2,
    bench_fig2,
    bench_fig34,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9
);
criterion_main!(benches);
