//! Micro-benchmarks of the scheduler hot paths and simulation substrate.

use cfs::Cfs;
use criterion::{criterion_group, criterion_main, Criterion};
use kernel::{cpu_hog, AppSpec, Kernel, SimConfig, ThreadSpec};
use sched_api::{EnqueueKind, GroupId, Scheduler, Task, TaskState, TaskTable};
use simcore::{Dur, EventQueue, SimRng, Time};
use topology::{CpuId, Topology};
use ule::interactivity::Interactivity;
use ule::Ule;

/// Event-queue push/pop throughput (the simulator's innermost loop).
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Time(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
    // The kernel cancels a pending completion on every preemption and
    // migration, so cancel + skip-on-pop is as hot as push/pop itself.
    c.bench_function("event_queue_push_cancel_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..1000u64)
                .map(|i| q.push(Time(i * 7919 % 100_000), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0u64;
            while q.pop().is_some() {
                n += 1;
            }
            n
        })
    });
    // Steady-state slot recycling: a bounded queue living through many
    // push/cancel/pop generations (the shape a long simulation produces).
    c.bench_function("event_queue_recycle_64x100", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut t = 0u64;
            let mut acc = 0u64;
            for _ in 0..100 {
                let ids: Vec<_> = (0..64u64).map(|i| q.push(Time(t + i), i)).collect();
                for id in ids.iter().step_by(3) {
                    q.cancel(*id);
                }
                while let Some((at, _)) = q.pop() {
                    acc = acc.wrapping_add(at.0);
                }
                t += 64;
            }
            acc
        })
    });
}

/// The tick-dominated mix the kernel actually produces: 48 staggered
/// per-CPU tick chains re-armed on every pop, plus a short-lived
/// completion event per tick with half of them cancelled before firing.
/// Runs on both backends so a regression in either shows up side by side
/// (the wheel is the default; the heap is the differential fallback).
fn bench_event_queue_tick_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_tick_mix");
    for (name, backend) in [
        ("wheel", simcore::Backend::Wheel),
        ("heap", simcore::Backend::Heap),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                const NCPU: u64 = 48;
                let mut q = EventQueue::with_backend(backend);
                for cpu in 0..NCPU {
                    q.push(Time(1_000_000 + cpu * 21_000), cpu);
                }
                let mut last = None;
                let mut acc = 0u64;
                for n in 0..20_000u64 {
                    let Some((at, who)) = q.pop() else {
                        unreachable!("tick chains never drain")
                    };
                    acc = acc.wrapping_add(at.0 ^ who);
                    if who < NCPU {
                        q.push(at + Dur::millis(1), who);
                        let id = q.push(at + Dur::micros(37), NCPU + n);
                        if let Some(prev) = last.replace(id) {
                            if n % 2 == 0 {
                                q.cancel(prev);
                            }
                        }
                    }
                }
                acc
            })
        });
    }
    g.finish();
}

/// CFS periodic `balance_tick` with the caller-provided target buffer: the
/// per-tick path the kernel drives on every CPU every millisecond. Past the
/// first iteration the buffers are warm, so this measures the steady-state
/// allocation-free cost.
fn bench_balance_tick(c: &mut Criterion) {
    let topo = Topology::opteron_6172();
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    // Pile work on CPU 0 so the balancer has something to look at.
    for i in 0..64 {
        let tid = tasks.insert_with(|t| Task::new(t, format!("t{i}"), GroupId(1)));
        cfs.task_fork(&tasks, tid, None, now);
        let t = tasks.get_mut(tid);
        t.cpu = CpuId(0);
        t.state = TaskState::Runnable;
        t.on_rq = true;
        cfs.enqueue_task(&mut tasks, CpuId(0), tid, EnqueueKind::New, now);
    }
    c.bench_function("cfs_balance_tick_32cpu", |b| {
        let mut targets = Vec::new();
        let mut t = now;
        b.iter(|| {
            t += Dur::millis(1);
            let mut moved = 0usize;
            for cpu in topo.all_cpus() {
                targets.clear();
                cfs.balance_tick(&mut tasks, cpu, t, &mut targets);
                moved += targets.len();
            }
            moved
        })
    });
}

/// PELT decay math.
fn bench_pelt(c: &mut Criterion) {
    c.bench_function("pelt_update_1k", |b| {
        b.iter(|| {
            let mut p = cfs::pelt::Pelt::new_zero(Time::ZERO);
            let mut t = Time::ZERO;
            for i in 0..1000 {
                t += Dur::micros(800);
                p.update(t, i % 3 != 0);
            }
            p.avg()
        })
    });
}

/// ULE's interactivity scoring (penalty + window decay).
fn bench_interactivity(c: &mut Criterion) {
    let params = ule::params::UleParams::default();
    c.bench_function("ule_interact_update_1k", |b| {
        b.iter(|| {
            let mut i = Interactivity::new();
            for k in 0..1000u64 {
                if k % 3 == 0 {
                    i.add_sleep(Dur::millis(2), &params);
                } else {
                    i.add_run(Dur::millis(1), &params);
                }
            }
            i.penalty()
        })
    });
}

/// A full simulated second of a busy 32-core machine under each scheduler:
/// measures end-to-end simulator throughput (events/sec).
fn bench_busy_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("busy_machine_second");
    g.sample_size(10);
    let build = |sched: Box<dyn Scheduler>| {
        let topo = Topology::opteron_6172();
        let mut k = Kernel::new(topo, SimConfig::with_seed(1), sched);
        let threads = (0..64)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(10), Dur::millis(3))))
            .collect();
        k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
        k
    };
    g.bench_function("cfs", |b| {
        b.iter(|| {
            let topo = Topology::opteron_6172();
            let mut k = build(Box::new(Cfs::new(&topo)));
            k.run_until(Time::ZERO + Dur::secs(1));
            k.counters().ctx_switches
        })
    });
    g.bench_function("ule", |b| {
        b.iter(|| {
            let topo = Topology::opteron_6172();
            let mut k = build(Box::new(Ule::new(&topo)));
            k.run_until(Time::ZERO + Dur::secs(1));
            k.counters().ctx_switches
        })
    });
    g.finish();
}

/// Placement cost: one wakeup-placement decision on a loaded machine.
fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("wakeup_placement");
    // Preload a machine, then repeatedly exercise select_task_rq through
    // a sleeping/waking ping task.
    let setup = |sched: Box<dyn Scheduler>| {
        let topo = Topology::opteron_6172();
        let mut k = Kernel::new(topo, SimConfig::with_seed(1), sched);
        let mut threads: Vec<ThreadSpec> = (0..48)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(60), Dur::millis(5))))
            .collect();
        threads.push(ThreadSpec::new(
            "ping",
            kernel::from_fn(|_ctx| kernel::Action::Sleep(Dur::micros(200))),
        ));
        k.queue_app(Time::ZERO, AppSpec::new("bg", threads));
        k
    };
    g.bench_function("cfs_100ms_of_pings", |b| {
        let topo = Topology::opteron_6172();
        let mut k = setup(Box::new(Cfs::new(&topo)));
        b.iter(|| {
            let t = k.now() + Dur::millis(100);
            k.run_until(t);
            k.counters().wakeups
        })
    });
    g.bench_function("ule_100ms_of_pings", |b| {
        let topo = Topology::opteron_6172();
        let mut k = setup(Box::new(Ule::new(&topo)));
        b.iter(|| {
            let t = k.now() + Dur::millis(100);
            k.run_until(t);
            k.counters().placement_scans
        })
    });
    g.finish();
}

/// RNG throughput (sanity; it must never be a bottleneck).
fn bench_rng(c: &mut Criterion) {
    c.bench_function("simrng_1k_draws", |b| {
        let mut rng = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.gen_below(1000));
            }
            acc
        })
    });
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_event_queue_tick_mix,
    bench_balance_tick,
    bench_pelt,
    bench_interactivity,
    bench_busy_second,
    bench_placement,
    bench_rng
);
criterion_main!(micro);
