//! Micro-benchmarks of the scheduler hot paths and simulation substrate.

use cfs::Cfs;
use criterion::{criterion_group, criterion_main, Criterion};
use kernel::{cpu_hog, AppSpec, Kernel, SimConfig, ThreadSpec};
use sched_api::Scheduler;
use simcore::{Dur, EventQueue, SimRng, Time};
use topology::Topology;
use ule::interactivity::Interactivity;
use ule::Ule;

/// Event-queue push/pop throughput (the simulator's innermost loop).
fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(Time(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        })
    });
}

/// PELT decay math.
fn bench_pelt(c: &mut Criterion) {
    c.bench_function("pelt_update_1k", |b| {
        b.iter(|| {
            let mut p = cfs::pelt::Pelt::new_zero(Time::ZERO);
            let mut t = Time::ZERO;
            for i in 0..1000 {
                t += Dur::micros(800);
                p.update(t, i % 3 != 0);
            }
            p.avg()
        })
    });
}

/// ULE's interactivity scoring (penalty + window decay).
fn bench_interactivity(c: &mut Criterion) {
    let params = ule::params::UleParams::default();
    c.bench_function("ule_interact_update_1k", |b| {
        b.iter(|| {
            let mut i = Interactivity::new();
            for k in 0..1000u64 {
                if k % 3 == 0 {
                    i.add_sleep(Dur::millis(2), &params);
                } else {
                    i.add_run(Dur::millis(1), &params);
                }
            }
            i.penalty()
        })
    });
}

/// A full simulated second of a busy 32-core machine under each scheduler:
/// measures end-to-end simulator throughput (events/sec).
fn bench_busy_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("busy_machine_second");
    g.sample_size(10);
    let build = |sched: Box<dyn Scheduler>| {
        let topo = Topology::opteron_6172();
        let mut k = Kernel::new(topo, SimConfig::with_seed(1), sched);
        let threads = (0..64)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(10), Dur::millis(3))))
            .collect();
        k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
        k
    };
    g.bench_function("cfs", |b| {
        b.iter(|| {
            let topo = Topology::opteron_6172();
            let mut k = build(Box::new(Cfs::new(&topo)));
            k.run_until(Time::ZERO + Dur::secs(1));
            k.counters().ctx_switches
        })
    });
    g.bench_function("ule", |b| {
        b.iter(|| {
            let topo = Topology::opteron_6172();
            let mut k = build(Box::new(Ule::new(&topo)));
            k.run_until(Time::ZERO + Dur::secs(1));
            k.counters().ctx_switches
        })
    });
    g.finish();
}

/// Placement cost: one wakeup-placement decision on a loaded machine.
fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("wakeup_placement");
    // Preload a machine, then repeatedly exercise select_task_rq through
    // a sleeping/waking ping task.
    let setup = |sched: Box<dyn Scheduler>| {
        let topo = Topology::opteron_6172();
        let mut k = Kernel::new(topo, SimConfig::with_seed(1), sched);
        let mut threads: Vec<ThreadSpec> = (0..48)
            .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::secs(60), Dur::millis(5))))
            .collect();
        threads.push(ThreadSpec::new(
            "ping",
            kernel::from_fn(|_ctx| kernel::Action::Sleep(Dur::micros(200))),
        ));
        k.queue_app(Time::ZERO, AppSpec::new("bg", threads));
        k
    };
    g.bench_function("cfs_100ms_of_pings", |b| {
        let topo = Topology::opteron_6172();
        let mut k = setup(Box::new(Cfs::new(&topo)));
        b.iter(|| {
            let t = k.now() + Dur::millis(100);
            k.run_until(t);
            k.counters().wakeups
        })
    });
    g.bench_function("ule_100ms_of_pings", |b| {
        let topo = Topology::opteron_6172();
        let mut k = setup(Box::new(Ule::new(&topo)));
        b.iter(|| {
            let t = k.now() + Dur::millis(100);
            k.run_until(t);
            k.counters().placement_scans
        })
    });
    g.finish();
}

/// RNG throughput (sanity; it must never be a bottleneck).
fn bench_rng(c: &mut Criterion) {
    c.bench_function("simrng_1k_draws", |b| {
        let mut rng = SimRng::new(42);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(rng.gen_below(1000));
            }
            acc
        })
    });
}

criterion_group!(
    micro,
    bench_event_queue,
    bench_pelt,
    bench_interactivity,
    bench_busy_second,
    bench_placement,
    bench_rng
);
criterion_main!(micro);
