//! Criterion benchmark harness.
//!
//! Two suites:
//!
//! * `paper_experiments` — one benchmark per table/figure of the paper,
//!   running the corresponding experiment driver at a reduced scale. These
//!   keep the regeneration paths hot and measure simulator throughput; the
//!   full paper-sized regenerations are produced by the `battle` binary
//!   (`cargo run --release -p experiments --bin battle -- all`).
//! * `scheduler_micro` — micro-benchmarks of the scheduler hot paths
//!   (enqueue/pick/put, placement scans, balancing passes) and of the
//!   simulation substrate (event queue, PELT math, interactivity scoring).

pub use experiments;
