//! High-level public API for the "Battle of the Schedulers" reproduction.
//!
//! This facade ties the substrates together the way the paper's methodology
//! does: pick a machine, pick a scheduler (the *only* variable), run
//! workloads, compare. For figure-level drivers use the `experiments`
//! crate; for scheduler internals use `cfs` / `ule` directly.
//!
//! ```
//! use battle_core::{Machine, SchedulerKind, Simulation};
//! use simcore::Dur;
//!
//! // Run a CPU hog against a mostly-sleeping app on one core under both
//! // schedulers and compare how much CPU the hog got.
//! let hog_share = |kind: SchedulerKind| {
//!     let mut sim = Simulation::new(Machine::SingleCore, kind, 42);
//!     let hog = sim.spawn_app(workloads::synthetic::fibo(Dur::millis(500)));
//!     sim.run_for(Dur::millis(400));
//!     sim.app_cpu_time(hog).as_secs_f64()
//! };
//! assert!(hog_share(SchedulerKind::Cfs) > 0.3);
//! assert!(hog_share(SchedulerKind::Ule) > 0.3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cfs::Cfs;
use kernel::{AppId, AppSpec, Kernel, SimConfig};
use sched_api::Scheduler;
use simcore::Dur;
use topology::Topology;
use ule::Ule;

/// The machines evaluated in the paper, plus custom topologies.
#[derive(Debug, Clone)]
pub enum Machine {
    /// One core (the §5 per-core experiments).
    SingleCore,
    /// The 32-core AMD Opteron 6172 (4 NUMA nodes × 8 cores).
    Opteron6172,
    /// The 8-thread Intel i7-3770 desktop.
    CoreI7_3770,
    /// `n` cores sharing one LLC.
    Flat(u32),
    /// Any explicit topology.
    Custom(Topology),
}

impl Machine {
    /// The topology of this machine.
    pub fn topology(&self) -> Topology {
        match self {
            Machine::SingleCore => Topology::single_core(),
            Machine::Opteron6172 => Topology::opteron_6172(),
            Machine::CoreI7_3770 => Topology::core_i7_3770(),
            Machine::Flat(n) => Topology::flat(*n),
            Machine::Custom(t) => t.clone(),
        }
    }
}

/// The two schedulers under comparison (plus a hook for custom classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Linux's Completely Fair Scheduler.
    Cfs,
    /// FreeBSD's ULE, as ported in the paper.
    Ule,
}

impl SchedulerKind {
    /// Construct the scheduling class for `topo`.
    pub fn build(self, topo: &Topology, seed: u64) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Cfs => Box::new(Cfs::new(topo)),
            SchedulerKind::Ule => Box::new(Ule::with_params(
                topo,
                ule::params::UleParams::default(),
                seed,
            )),
        }
    }
}

/// A running simulation: a simulated kernel plus convenience accessors.
pub struct Simulation {
    kernel: Kernel,
}

impl Simulation {
    /// A simulation of `machine` driven by `scheduler`, deterministic in
    /// `seed`.
    pub fn new(machine: Machine, scheduler: SchedulerKind, seed: u64) -> Simulation {
        let topo = machine.topology();
        let class = scheduler.build(&topo, seed);
        Simulation {
            kernel: Kernel::new(topo, SimConfig::with_seed(seed), class),
        }
    }

    /// A simulation with a custom scheduling class (see
    /// `examples/custom_scheduler.rs`).
    pub fn with_scheduler(machine: Machine, class: Box<dyn Scheduler>, seed: u64) -> Simulation {
        Simulation {
            kernel: Kernel::new(machine.topology(), SimConfig::with_seed(seed), class),
        }
    }

    /// Start an application now.
    pub fn spawn_app(&mut self, spec: AppSpec) -> AppId {
        let now = self.kernel.now();
        self.kernel.queue_app(now, spec)
    }

    /// Start an application after a delay.
    pub fn spawn_app_at(&mut self, delay: Dur, spec: AppSpec) -> AppId {
        let at = self.kernel.now() + delay;
        self.kernel.queue_app(at, spec)
    }

    /// Advance simulated time by `d`.
    pub fn run_for(&mut self, d: Dur) {
        let until = self.kernel.now() + d;
        self.kernel.run_until(until);
    }

    /// Run until every non-daemon app finished (true) or `limit` elapsed.
    pub fn run_to_completion(&mut self, limit: Dur) -> bool {
        let until = self.kernel.now() + limit;
        self.kernel.run_until_apps_done(until)
    }

    /// Total CPU time consumed by an app's threads so far.
    pub fn app_cpu_time(&self, app: AppId) -> Dur {
        self.kernel
            .app_tasks(app)
            .iter()
            .map(|&t| self.kernel.task_runtime(t))
            .fold(Dur::ZERO, |a, b| a + b)
    }

    /// Wall-clock completion time of an app, if it finished.
    pub fn app_elapsed(&self, app: AppId) -> Option<Dur> {
        self.kernel.app(app).elapsed()
    }

    /// Operations per second of an app (throughput workloads).
    pub fn app_ops_per_sec(&self, app: AppId) -> f64 {
        self.kernel.app(app).ops_per_sec(self.kernel.now())
    }

    /// Direct access to the underlying kernel for advanced queries
    /// (per-core runqueue lengths, scheduler snapshots, counters, ...).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access (creating sync objects for custom workloads).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }
}

/// Convenience: run `spec_for` under both schedulers to completion and
/// return `(cfs_elapsed, ule_elapsed)`.
pub fn compare_elapsed(
    machine: Machine,
    seed: u64,
    limit: Dur,
    mut spec_for: impl FnMut(&mut Kernel) -> AppSpec,
) -> (Option<Dur>, Option<Dur>) {
    let mut run = |kind| {
        let mut sim = Simulation::new(machine.clone(), kind, seed);
        let spec = spec_for(sim.kernel_mut());
        let app = sim.spawn_app(spec);
        sim.run_to_completion(limit);
        sim.app_elapsed(app)
    };
    (run(SchedulerKind::Cfs), run(SchedulerKind::Ule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{cpu_hog, ThreadSpec};

    #[test]
    fn simulation_runs_both_schedulers() {
        for kind in [SchedulerKind::Cfs, SchedulerKind::Ule] {
            let mut sim = Simulation::new(Machine::Flat(2), kind, 7);
            let app = sim.spawn_app(AppSpec::new(
                "t",
                vec![
                    ThreadSpec::new("a", cpu_hog(Dur::millis(20), Dur::millis(5))),
                    ThreadSpec::new("b", cpu_hog(Dur::millis(20), Dur::millis(5))),
                ],
            ));
            assert!(sim.run_to_completion(Dur::secs(5)));
            let e = sim.app_elapsed(app).unwrap();
            assert!(e >= Dur::millis(20) && e < Dur::millis(60), "{kind:?}: {e}");
            assert!(sim.app_cpu_time(app) >= Dur::millis(40));
        }
    }

    #[test]
    fn compare_elapsed_returns_both() {
        let (c, u) = compare_elapsed(Machine::SingleCore, 3, Dur::secs(5), |_k| {
            AppSpec::new(
                "hog",
                vec![ThreadSpec::new(
                    "h",
                    cpu_hog(Dur::millis(30), Dur::millis(5)),
                )],
            )
        });
        assert!(c.is_some() && u.is_some());
    }

    #[test]
    fn machines_have_expected_sizes() {
        assert_eq!(Machine::SingleCore.topology().nr_cpus(), 1);
        assert_eq!(Machine::Opteron6172.topology().nr_cpus(), 32);
        assert_eq!(Machine::CoreI7_3770.topology().nr_cpus(), 8);
        assert_eq!(Machine::Flat(5).topology().nr_cpus(), 5);
    }
}
