//! Property tests of CFS's building blocks.

use cfs::entity::{CfsRq, EntKey, Entity};
use cfs::pelt::{decay_load, Pelt, RqLoad};
use proptest::prelude::*;
use sched_api::{weights, Tid};
use simcore::{Dur, Time};

proptest! {
    /// min_vruntime never decreases, under arbitrary insert/remove orders.
    #[test]
    fn min_vruntime_monotone(ops in prop::collection::vec((any::<bool>(), 0u64..1_000_000), 1..200)) {
        let mut rq = CfsRq::default();
        let mut queued: Vec<(u64, u32)> = Vec::new();
        let mut next = 0u32;
        let mut last_min = 0u64;
        for (insert, v) in ops {
            if insert || queued.is_empty() {
                rq.insert(EntKey::Task(Tid(next)), v, 1024);
                queued.push((v, next));
                next += 1;
            } else {
                let (v, id) = queued.swap_remove(v as usize % queued.len());
                rq.remove(EntKey::Task(Tid(id)), v, 1024);
            }
            rq.refresh_min_vruntime(None);
            prop_assert!(rq.min_vruntime >= last_min, "min_vruntime went backward");
            last_min = rq.min_vruntime;
        }
    }

    /// The tree's weight accounting matches the queued set exactly.
    #[test]
    fn rq_weight_conservation(weights_in in prop::collection::vec(1u64..90_000, 1..100)) {
        let mut rq = CfsRq::default();
        let mut total = 0u64;
        for (i, &w) in weights_in.iter().enumerate() {
            rq.insert(EntKey::Task(Tid(i as u32)), i as u64, w);
            total += w;
        }
        prop_assert_eq!(rq.weight_sum, total);
        for (i, &w) in weights_in.iter().enumerate() {
            rq.remove(EntKey::Task(Tid(i as u32)), i as u64, w);
            total -= w;
            prop_assert_eq!(rq.weight_sum, total);
        }
        prop_assert!(rq.is_empty());
    }

    /// vruntime progression is inversely proportional to weight: for any
    /// delta, a heavier entity advances no faster than a lighter one.
    #[test]
    fn vruntime_inverse_weight(nice_a in -20i32..=19, nice_b in -20i32..=19, ms in 1u64..10_000) {
        let wa = weights::nice_to_weight(nice_a);
        let wb = weights::nice_to_weight(nice_b);
        let ea = Entity::new(wa, Time::ZERO);
        let eb = Entity::new(wb, Time::ZERO);
        let d = Dur::millis(ms);
        let (va, vb) = (ea.calc_delta_fair(d), eb.calc_delta_fair(d));
        if wa >= wb {
            prop_assert!(va <= vb, "heavier weight must accrue vruntime no faster");
        }
    }

    /// PELT's average is always within [0, 1024] and decay never increases
    /// a value.
    #[test]
    fn pelt_bounds(steps in prop::collection::vec((any::<bool>(), 1u64..50), 1..200)) {
        let mut p = Pelt::new_zero(Time::ZERO);
        let mut t = Time::ZERO;
        for (runnable, ms) in steps {
            t += Dur::millis(ms);
            p.update(t, runnable);
            prop_assert!(p.avg() <= 1024, "avg {} out of range", p.avg());
        }
    }

    /// decay_load is monotone in both arguments.
    #[test]
    fn decay_monotone(val in 0u64..1_000_000, n in 0u64..200) {
        prop_assert!(decay_load(val, n) <= val);
        prop_assert!(decay_load(val, n + 1) <= decay_load(val, n));
    }

    /// RqLoad converges toward its target and stays non-negative.
    #[test]
    fn rq_load_tracks_target(target in 0u64..2_000_000, ms in 100u64..2_000) {
        let mut l = RqLoad::default();
        l.update(Time::ZERO + Dur::millis(ms), target);
        // After enough time the average is between 0 and the target.
        prop_assert!(l.avg() <= target);
        // Long exposure converges close to the target.
        l.update(Time::ZERO + Dur::millis(ms) + Dur::secs(2), target);
        let err = target.abs_diff(l.avg());
        prop_assert!(err <= target / 64 + 1, "err {err} target {target}");
    }
}
