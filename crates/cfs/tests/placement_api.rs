//! Direct tests of CFS placement through the scheduling-class API
//! (no simulated kernel): fork spreading, wake affinity, wide wakeups.

use cfs::Cfs;
use sched_api::{
    DequeueKind, EnqueueKind, GroupId, Scheduler, SelectStats, Task, TaskState, TaskTable, Tid,
    WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

fn mk_task(tasks: &mut TaskTable, cfs: &mut Cfs, name: &str, now: Time) -> Tid {
    let tid = tasks.insert_with(|t| Task::new(t, name, GroupId(1)));
    cfs.task_fork(tasks, tid, None, now);
    tid
}

/// Place a new task, enqueue it where the scheduler says, mark it running
/// state bookkeeping minimally.
fn place_new(tasks: &mut TaskTable, cfs: &mut Cfs, tid: Tid, now: Time) -> CpuId {
    let mut stats = SelectStats::default();
    let cpu = cfs.select_task_rq(tasks, tid, WakeKind::New, CpuId(0), now, &mut stats);
    let t = tasks.get_mut(tid);
    t.cpu = cpu;
    t.state = TaskState::Runnable;
    t.on_rq = true;
    cfs.enqueue_task(tasks, cpu, tid, EnqueueKind::New, now);
    cpu
}

#[test]
fn forked_tasks_spread_over_idle_cpus() {
    let topo = Topology::flat(4);
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let mut used = std::collections::HashSet::new();
    for i in 0..4 {
        let tid = mk_task(&mut tasks, &mut cfs, &format!("t{i}"), now);
        let cpu = place_new(&mut tasks, &mut cfs, tid, now);
        used.insert(cpu);
    }
    assert_eq!(used.len(), 4, "4 fresh tasks must land on 4 distinct CPUs");
    for c in topo.all_cpus() {
        assert_eq!(cfs.nr_queued(c), 1);
    }
}

#[test]
fn select_counts_scanned_cpus() {
    let topo = Topology::flat(8);
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let tid = mk_task(&mut tasks, &mut cfs, "t", now);
    let mut stats = SelectStats::default();
    cfs.select_task_rq(&tasks, tid, WakeKind::New, CpuId(0), now, &mut stats);
    assert!(
        stats.cpus_scanned >= 8,
        "fork placement scans the machine: {}",
        stats.cpus_scanned
    );
}

#[test]
fn pick_put_round_trip_preserves_accounting() {
    let topo = Topology::single_core();
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let a = mk_task(&mut tasks, &mut cfs, "a", now);
    let b = mk_task(&mut tasks, &mut cfs, "b", now);
    for &t in &[a, b] {
        let tt = tasks.get_mut(t);
        tt.cpu = CpuId(0);
        tt.state = TaskState::Runnable;
        cfs.enqueue_task(&mut tasks, CpuId(0), t, EnqueueKind::New, now);
    }
    assert_eq!(cfs.nr_queued(CpuId(0)), 2);

    let picked = cfs.pick_next_task(&mut tasks, CpuId(0), now).unwrap();
    assert_eq!(cfs.nr_queued(CpuId(0)), 2, "running task stays counted");
    assert_eq!(cfs.queued_tids(CpuId(0)).len(), 1);

    let later = now + Dur::millis(10);
    cfs.put_prev_task(&mut tasks, CpuId(0), picked, later);
    assert_eq!(cfs.queued_tids(CpuId(0)).len(), 2);

    // After running 10ms, the previous task's vruntime exceeds the
    // waiter's, so the waiter is picked next.
    let next = cfs.pick_next_task(&mut tasks, CpuId(0), later).unwrap();
    assert_ne!(next, picked, "fairness: the other task runs next");
}

#[test]
fn sleep_and_wake_keeps_task_affine_when_quiet() {
    let topo = Topology::flat(4);
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let tid = mk_task(&mut tasks, &mut cfs, "t", now);
    let cpu = place_new(&mut tasks, &mut cfs, tid, now);
    // Run it briefly, then sleep.
    let picked = cfs.pick_next_task(&mut tasks, cpu, now).unwrap();
    assert_eq!(picked, tid);
    tasks.get_mut(tid).last_cpu = cpu;
    let t1 = now + Dur::millis(5);
    cfs.dequeue_task(&mut tasks, cpu, tid, DequeueKind::Sleep, t1);
    {
        let t = tasks.get_mut(tid);
        t.state = TaskState::Sleeping;
        t.sleep_start = t1;
        t.on_rq = false;
    }
    // Wake on an idle machine: it returns to (or near) its previous CPU.
    let t2 = t1 + Dur::millis(50);
    let mut stats = SelectStats::default();
    let target = cfs.select_task_rq(
        &tasks,
        tid,
        WakeKind::Wakeup { waker: None },
        cpu,
        t2,
        &mut stats,
    );
    assert_eq!(target, cpu, "quiet machine: stay where the cache is");
}

#[test]
fn cgroup_weight_splits_between_apps() {
    // Two groups with 1 and 3 runnable tasks on one CPU: picking
    // repeatedly over a simulated run must alternate between groups more
    // evenly than between threads.
    let topo = Topology::single_core();
    let mut cfs = Cfs::new(&topo);
    let mut tasks = TaskTable::new();
    let now = Time::ZERO;
    let solo = tasks.insert_with(|t| Task::new(t, "solo", GroupId(1)));
    cfs.task_fork(&tasks, solo, None, now);
    let mut many = Vec::new();
    for i in 0..3 {
        let m = tasks.insert_with(|t| Task::new(t, format!("m{i}"), GroupId(2)));
        cfs.task_fork(&tasks, m, None, now);
        many.push(m);
    }
    for &t in std::iter::once(&solo).chain(many.iter()) {
        let tt = tasks.get_mut(t);
        tt.cpu = CpuId(0);
        tt.state = TaskState::Runnable;
        cfs.enqueue_task(&mut tasks, CpuId(0), t, EnqueueKind::New, now);
    }
    // Simulate 1ms-at-a-time picks for 400 steps.
    let mut t = now;
    let mut solo_runs = 0;
    for _ in 0..400 {
        let picked = cfs.pick_next_task(&mut tasks, CpuId(0), t).unwrap();
        t += Dur::millis(1);
        if picked == solo {
            solo_runs += 1;
        }
        cfs.put_prev_task(&mut tasks, CpuId(0), picked, t);
    }
    let share = solo_runs as f64 / 400.0;
    assert!(
        (0.35..=0.65).contains(&share),
        "the solo app should get ~half the CPU, got {share:.2}"
    );
}
