//! CFS integration tests: run the class under the simulated kernel and
//! check the §2.1 properties (fairness, cgroup fairness, no starvation,
//! wakeup preemption, load balancing).

use cfs::{params::CfsParams, Cfs};
use kernel::{cpu_hog, spinner, Action, AppSpec, Kernel, SimConfig, ThreadSpec};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

fn cfs_kernel(topo: Topology) -> Kernel {
    let sched = Box::new(Cfs::new(&topo));
    Kernel::new(topo, SimConfig::frictionless(7), sched)
}

#[test]
fn two_equal_hogs_share_fairly() {
    let mut k = cfs_kernel(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "pair",
            vec![
                ThreadSpec::new("a", cpu_hog(Dur::secs(2), Dur::millis(20))),
                ThreadSpec::new("b", cpu_hog(Dur::secs(2), Dur::millis(20))),
            ],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(1));
    let tids = k.app_tasks(app);
    let ra = k.task_runtime(tids[0]).as_secs_f64();
    let rb = k.task_runtime(tids[1]).as_secs_f64();
    assert!((ra - rb).abs() < 0.10, "unfair split: {ra:.3} vs {rb:.3}");
    assert!((ra + rb - 1.0).abs() < 0.05, "core not saturated");
}

#[test]
fn nice_levels_bias_cpu_shares() {
    let mut k = cfs_kernel(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "prio",
            vec![
                ThreadSpec::new("fav", cpu_hog(Dur::secs(5), Dur::millis(20))).nice(-5),
                ThreadSpec::new("unfav", cpu_hog(Dur::secs(5), Dur::millis(20))).nice(5),
            ],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(2));
    let tids = k.app_tasks(app);
    let fav = k.task_runtime(tids[0]).as_secs_f64();
    let unfav = k.task_runtime(tids[1]).as_secs_f64();
    // weight(-5)/weight(5) = 3121/335 ≈ 9.3; shares should be heavily skewed.
    assert!(
        fav / unfav > 4.0,
        "nice -5 should dominate nice 5: {fav:.3} vs {unfav:.3}"
    );
}

#[test]
fn cgroups_make_fairness_per_application() {
    // One single-threaded app vs one 4-threaded app on one core: with
    // cgroups each *application* gets ~50% (the paper's fibo/sysbench
    // observation in Figure 1a).
    let mut k = cfs_kernel(Topology::single_core());
    let solo = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "solo",
            vec![ThreadSpec::new(
                "solo",
                cpu_hog(Dur::secs(5), Dur::millis(20)),
            )],
        ),
    );
    let many = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "many",
            (0..4)
                .map(|i| ThreadSpec::new(format!("m{i}"), cpu_hog(Dur::secs(5), Dur::millis(20))))
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(2));
    let solo_rt: f64 = k
        .app_tasks(solo)
        .iter()
        .map(|&t| k.task_runtime(t).as_secs_f64())
        .sum();
    let many_rt: f64 = k
        .app_tasks(many)
        .iter()
        .map(|&t| k.task_runtime(t).as_secs_f64())
        .sum();
    let share = solo_rt / (solo_rt + many_rt);
    assert!(
        (0.40..=0.60).contains(&share),
        "single-thread app should get ~half the core, got {share:.2}"
    );
}

#[test]
fn without_cgroups_fairness_is_per_thread() {
    let topo = Topology::single_core();
    let p = CfsParams {
        cgroups: false,
        ..Default::default()
    };
    let sched = Box::new(Cfs::with_params(&topo, p));
    let mut k = Kernel::new(topo, SimConfig::frictionless(7), sched);
    let solo = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "solo",
            vec![ThreadSpec::new(
                "solo",
                cpu_hog(Dur::secs(5), Dur::millis(20)),
            )],
        ),
    );
    let many = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "many",
            (0..4)
                .map(|i| ThreadSpec::new(format!("m{i}"), cpu_hog(Dur::secs(5), Dur::millis(20))))
                .collect(),
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(2));
    let solo_rt: f64 = k
        .app_tasks(solo)
        .iter()
        .map(|&t| k.task_runtime(t).as_secs_f64())
        .sum();
    let many_rt: f64 = k
        .app_tasks(many)
        .iter()
        .map(|&t| k.task_runtime(t).as_secs_f64())
        .sum();
    let share = solo_rt / (solo_rt + many_rt);
    assert!(
        (0.13..=0.27).contains(&share),
        "pre-2.6.38 behaviour: 1 of 5 equal threads ≈ 20%, got {share:.2}"
    );
}

#[test]
fn cfs_never_starves_a_hog_under_sleepers() {
    // 20 mostly-sleeping threads + 1 hog on one core: under CFS the hog
    // keeps making progress (the anti-starvation contrast to ULE in §5.1).
    let mut k = cfs_kernel(Topology::single_core());
    let sleepers = (0..20)
        .map(|i| {
            ThreadSpec::new(
                format!("sleepy{i}"),
                kernel::from_fn(move |_ctx| Action::Run(Dur::micros(300))),
            )
            .with_history(Dur::ZERO, Dur::secs(2))
        }) // keep builder form
        .collect::<Vec<_>>();
    // Make them sleepers: run briefly then sleep.
    let sleepers: Vec<ThreadSpec> = sleepers
        .into_iter()
        .enumerate()
        .map(|(i, _)| {
            ThreadSpec::new(
                format!("sleepy{i}"),
                kernel::from_fn(move |_ctx| {
                    // 0.3ms run, 1ms sleep, forever.
                    if i % 2 == 0 {
                        Action::Run(Dur::micros(300))
                    } else {
                        Action::Sleep(Dur::millis(1))
                    }
                }),
            )
        })
        .collect();
    let _sleep_app = k.queue_app(Time::ZERO, AppSpec::new("sleepers", sleepers));
    let hog_app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new(
                "hog",
                cpu_hog(Dur::secs(10), Dur::millis(10)),
            )],
        ),
    );
    k.run_until(Time::ZERO + Dur::secs(2));
    let hog_rt = k.task_runtime(k.app_tasks(hog_app)[0]);
    assert!(
        hog_rt > Dur::millis(300),
        "hog starved under CFS: only {hog_rt}"
    );
}

#[test]
fn waking_sleeper_preempts_quickly() {
    // A hog runs; a sleeper wakes after 100ms. With the sleeper-first
    // placement + 1ms wakeup granularity, the sleeper should run almost
    // immediately rather than waiting out the hog's slice.
    let mut k = cfs_kernel(Topology::single_core());
    let _hog = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new(
                "hog",
                cpu_hog(Dur::secs(5), Dur::millis(40)),
            )],
        ),
    );
    let napper = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "napper",
            vec![ThreadSpec::new(
                "napper",
                kernel::from_fn({
                    let mut state = 0u32;
                    let mut due = Time::ZERO;
                    move |ctx| {
                        state += 1;
                        match state {
                            1 => {
                                due = ctx.now + Dur::millis(100);
                                Action::Sleep(Dur::millis(100))
                            }
                            2 => Action::RecordLatency(ctx.now.saturating_since(due)),
                            3 => Action::Run(Dur::millis(1)),
                            _ => Action::Exit,
                        }
                    }
                }),
            )],
        ),
    );
    k.run_until(Time::ZERO + Dur::millis(400));
    assert!(k.app(napper).finished.is_some(), "napper must finish");
    let latency = k.app(napper).avg_latency().expect("one sample");
    assert!(
        latency <= Dur::millis(2),
        "wakeup-preemption latency too high: {latency}"
    );
}

#[test]
fn forked_threads_spread_across_cores() {
    let mut k = cfs_kernel(Topology::flat(4));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "par",
            (0..4)
                .map(|i| {
                    ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::millis(100), Dur::millis(10)))
                })
                .collect(),
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    let elapsed = k.app(app).elapsed().unwrap();
    assert!(
        elapsed < Dur::millis(140),
        "4 threads on 4 cores should run in parallel, took {elapsed}"
    );
}

#[test]
fn unpinned_spinners_rebalance_quickly() {
    // Mini Figure 6: 64 spinners pinned to core 0 of an 8-core machine,
    // unpinned at 100ms. CFS should spread them within a few hundred ms
    // (bulk migrations of up to 32 tasks).
    let topo = Topology::flat(8);
    let mut k = cfs_kernel(topo);
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin",
            (0..64)
                .map(|i| {
                    ThreadSpec::new(format!("s{i}"), spinner(Dur::millis(4))).pinned(vec![CpuId(0)])
                })
                .collect(),
        ),
    );
    k.queue_unpin(Time::ZERO + Dur::millis(100), app);
    k.run_until(Time::ZERO + Dur::millis(600));
    let counts: Vec<usize> = (0..8).map(|c| k.nr_queued(CpuId(c))).collect();
    let total: usize = counts.iter().sum();
    assert_eq!(total, 64, "no spinner lost: {counts:?}");
    let max = *counts.iter().max().unwrap();
    let min = *counts.iter().min().unwrap();
    assert!(
        max - min <= 4,
        "CFS should roughly even out spinners quickly: {counts:?}"
    );
}

#[test]
fn numa_imbalance_tolerated() {
    // Paper §6.1: "CFS never achieves perfect load balance" across NUMA
    // nodes because imbalances below 25% are tolerated. With 66 spinners on
    // a 32-core 4-node machine (perfect would be 16.5 per node), node
    // counts may differ but within the tolerance band.
    let topo = Topology::opteron_6172();
    let mut k = cfs_kernel(topo);
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin",
            (0..66)
                .map(|i| {
                    ThreadSpec::new(format!("s{i}"), spinner(Dur::millis(4))).pinned(vec![CpuId(0)])
                })
                .collect(),
        ),
    );
    k.queue_unpin(Time::ZERO + Dur::millis(50), app);
    k.run_until(Time::ZERO + Dur::secs(2));
    let total: usize = (0..32).map(|c| k.nr_queued(CpuId(c))).sum();
    assert_eq!(total, 66);
    // Every node must have received a decent share of the work.
    for n in 0..4 {
        let node_count: usize = k
            .topology()
            .node(n)
            .iter()
            .map(|c| k.nr_queued(*c))
            .sum::<usize>();
        assert!(
            node_count >= 8,
            "node {n} left nearly idle: {node_count}/66"
        );
    }
}
