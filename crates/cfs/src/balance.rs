//! Hierarchical load balancing.
//!
//! §2.1: "Load balancing also happens periodically. Every 4ms every core
//! tries to steal work from other cores. This load balancing takes into
//! account the topology of the machine (...). When a core decides to steal
//! work from another core, it tries to even out the load between the two
//! cores by stealing as many as 32 threads. Cores also immediately call the
//! periodic load balancer when they become idle." Between NUMA nodes, "if
//! the load difference between the nodes is small (less than 25% in
//! practice), then no load balancing is performed."

use sched_api::{DequeueKind, EnqueueKind, Scheduler, SelectStats, TaskTable};
use simcore::Time;
use topology::CpuId;

use crate::Cfs;

impl Cfs {
    /// Periodic balancing opportunity on `cpu`'s tick: walk its domains,
    /// balance each whose interval expired (if this CPU is the designated
    /// balancer of its group). Appends the destination CPU to `out` once
    /// per task migrated, so the kernel can reschedule it.
    pub(crate) fn periodic_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        out: &mut Vec<CpuId>,
    ) {
        for di in 0..self.domains[cpu.index()].len() {
            {
                let ds = &mut self.domains[cpu.index()][di];
                if now < ds.next_balance {
                    continue;
                }
                ds.next_balance = now + ds.interval;
            }
            if !self.should_we_balance(cpu, di) {
                continue;
            }
            let moved = self.load_balance(tasks, cpu, di, now);
            for _ in 0..moved {
                out.push(cpu);
            }
        }
    }

    /// Newidle balancing: the CPU just went idle and tries to pull work
    /// immediately, walking its domains from closest to farthest.
    pub(crate) fn newidle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        for di in 0..self.domains[cpu.index()].len() {
            // Linux does not set SD_BALANCE_NEWIDLE on NUMA domains: a
            // newly idle CPU only pulls from within its node; cross-node
            // imbalance is left to the (25%-tolerant) periodic balancer.
            if self.domains[cpu.index()][di].dom.level == topology::Level::Machine
                && self.topo.nr_nodes() > 1
            {
                break;
            }
            stats.cpus_scanned += self.domains[cpu.index()][di].dom.span.len() as u32;
            if self.load_balance(tasks, cpu, di, now) > 0 {
                return true;
            }
        }
        false
    }

    /// Only one CPU per group balances a domain: the first idle CPU of the
    /// local group, or the group's first CPU if none is idle
    /// (`should_we_balance`).
    fn should_we_balance(&self, cpu: CpuId, di: usize) -> bool {
        let dom = &self.domains[cpu.index()][di].dom;
        let local = dom
            .groups
            .iter()
            .find(|g| g.contains(&cpu))
            .expect("cpu in its own domain");
        // Offline CPUs neither balance nor count as idle candidates.
        for &c in local {
            if !self.cpus[c.index()].online {
                continue;
            }
            if self.cpus[c.index()].h_nr == 0 {
                return c == cpu;
            }
        }
        local.iter().find(|c| self.cpus[c.index()].online) == Some(&cpu)
    }

    /// One balancing pass of domain `di` with `dst` as the pulling CPU.
    /// Returns the number of tasks migrated.
    ///
    /// The domain's group list is detached for the duration of the pass so
    /// the body can walk it while mutating per-CPU state; nothing below
    /// reads `dom.groups`, and it goes straight back, so the detour is
    /// invisible outside this function. (The alternative — cloning the
    /// nested group vectors on every pass — dominated the tick path.)
    fn load_balance(&mut self, tasks: &mut TaskTable, dst: CpuId, di: usize, now: Time) -> usize {
        let groups = std::mem::take(&mut self.domains[dst.index()][di].dom.groups);
        let moved = self.load_balance_groups(tasks, dst, di, now, &groups);
        self.domains[dst.index()][di].dom.groups = groups;
        moved
    }

    fn load_balance_groups(
        &mut self,
        tasks: &mut TaskTable,
        dst: CpuId,
        di: usize,
        now: Time,
        groups: &[Vec<CpuId>],
    ) -> usize {
        let (pct, nr_failed) = {
            let ds = &self.domains[dst.index()][di];
            (ds.imbalance_pct, ds.nr_failed)
        };
        // Bring every involved CPU's load average up to date and gather the
        // per-group statistics in the same sweep (each CPU's refresh only
        // affects its own load, so fusing the passes is exact). This runs
        // on the tick path, so it must not allocate.
        let mut local_avg = 0u64;
        let mut busiest: Option<(usize, u64)> = None;
        for (i, g) in groups.iter().enumerate() {
            let mut load = 0u64;
            let mut nr = 0usize;
            for &c in g {
                self.refresh_load(c, now);
                load += self.cpu_load(c);
                nr += self.cpus[c.index()].h_nr;
            }
            let avg = load * 1024 / g.len() as u64;
            // Groups partition the domain span, so `dst` names the local
            // group exactly once; the rest compete for busiest.
            if g.contains(&dst) {
                local_avg = avg;
            } else if nr > 0 {
                match busiest {
                    Some((_, b)) if avg <= b => {}
                    _ => busiest = Some((i, avg)),
                }
            }
        }
        let Some((bi, busiest_avg)) = busiest else {
            return 0;
        };
        // The imbalance threshold: e.g. 125 between NUMA nodes means the
        // busiest group must exceed the local group by 25 % to bother.
        if busiest_avg * 100 <= local_avg * pct {
            return 0;
        }
        // Busiest CPU inside the busiest group, preferring load then queue
        // length (a spinner-storm CPU wins both ways).
        let src = groups[bi]
            .iter()
            .copied()
            .max_by_key(|c| (self.cpu_load(*c), self.cpus[c.index()].h_nr))
            .expect("nonempty group");
        if self.cpus[src.index()].h_nr <= 1 {
            self.domains[dst.index()][di].nr_failed += 1;
            return 0;
        }

        // Even out the pair: move up to half the load difference, capped at
        // 32 tasks per pass.
        let imbalance = self.cpu_load(src).saturating_sub(self.cpu_load(dst)) / 2;
        let mut moved = 0usize;
        let mut moved_load = 0u64;
        // Steal from the tail of the source rq (largest vruntime first);
        // the candidate list lives in a reused scratch buffer because this
        // runs on the tick path.
        let mut candidates = std::mem::take(&mut self.scratch_tids);
        candidates.clear();
        self.queued_tids_into(src, &mut candidates);
        candidates.reverse();
        for tid in candidates.drain(..) {
            if moved >= self.p.max_migrate || moved_load >= imbalance {
                break;
            }
            // Never more tasks than would invert the queue-length balance.
            if self.cpus[src.index()].h_nr <= self.cpus[dst.index()].h_nr + 1 {
                break;
            }
            let task = tasks.get(tid);
            if !task.allowed_on(dst) {
                continue;
            }
            // Cache-hot tasks resist migration until balancing has failed
            // repeatedly (`task_hot` + `cache_nice_tries`).
            let hot = now.saturating_since(task.last_ran) < self.p.migration_cost;
            if hot && nr_failed <= self.p.cache_nice_tries {
                continue;
            }
            let w_moved = self.tent(tid).ent.weight;
            self.dequeue_task(tasks, src, tid, DequeueKind::Migrate, now);
            tasks.get_mut(tid).cpu = dst;
            self.enqueue_task(tasks, dst, tid, EnqueueKind::Migrate, now);
            moved += 1;
            moved_load += w_moved;
        }
        self.scratch_tids = candidates;
        let ds = &mut self.domains[dst.index()][di];
        if moved == 0 {
            ds.nr_failed += 1;
        } else {
            ds.nr_failed = 0;
        }
        moved
    }
}
