//! Scheduling entities and the time-ordered runqueue.
//!
//! CFS queues *entities* — tasks or cgroup nodes — ordered by virtual
//! runtime. Linux uses a red-black tree; we use a `BTreeSet` keyed by
//! `(vruntime, entity)` which provides the same O(log n) leftmost-first
//! semantics and deterministic tie-breaking.

use std::collections::BTreeSet;

use sched_api::{GroupId, Tid};
use simcore::{Dur, Time};

use crate::pelt::Pelt;

/// Key identifying an entity in a runqueue tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EntKey {
    /// A task entity.
    Task(Tid),
    /// A cgroup entity (one per group per CPU).
    Group(GroupId),
}

/// Common entity state (vruntime, weight, load).
#[derive(Debug, Clone)]
pub struct Entity {
    /// Load weight (from nice for tasks; computed shares for groups).
    pub weight: u64,
    /// Virtual runtime in ns. Absolute while the entity is queued or
    /// running; stored *relative to its rq's `min_vruntime`* while dequeued
    /// so it transfers across CPUs (Linux renormalises the same way).
    pub vruntime: u64,
    /// When the entity last started executing (for `update_curr`).
    pub exec_start: Time,
    /// Total execution time of the entity.
    pub sum_exec: Dur,
    /// Decaying runnable average.
    pub pelt: Pelt,
    /// This entity's last pushed contribution to its CPU's load sum.
    pub load_contrib: u64,
}

impl Entity {
    /// Entity with the given weight; PELT starts at max so new tasks are
    /// immediately visible to the balancer (as in Linux).
    pub fn new(weight: u64, now: Time) -> Entity {
        Entity {
            weight,
            vruntime: 0,
            exec_start: now,
            sum_exec: Dur::ZERO,
            pelt: Pelt::new_max(now),
            load_contrib: 0,
        }
    }

    /// vruntime delta for `delta` of real execution at this weight:
    /// `delta × NICE_0_LOAD / weight` (the shared helper keeps the nice-0
    /// fast path bit-identical to the exact division for all weights).
    pub fn calc_delta_fair(&self, delta: Dur) -> u64 {
        sched_api::weights::calc_delta_fair(delta.as_nanos(), self.weight)
    }
}

/// One CFS runqueue: a vruntime-ordered tree plus `min_vruntime` tracking.
#[derive(Debug, Default)]
pub struct CfsRq {
    tree: BTreeSet<(u64, EntKey)>,
    /// Monotonic lower bound on the vruntime of entities in this rq.
    pub min_vruntime: u64,
    /// The entity currently executing out of this rq (removed from the
    /// tree while it runs, as in Linux's `set_next_entity`).
    pub curr: Option<EntKey>,
    /// Sum of queued weights, including the running entity.
    pub weight_sum: u64,
    /// Number of entities, including the running one.
    pub nr: usize,
}

impl CfsRq {
    /// Insert an entity (by key/vruntime/weight) into the tree.
    pub fn insert(&mut self, key: EntKey, vruntime: u64, weight: u64) {
        let fresh = self.tree.insert((vruntime, key));
        debug_assert!(fresh, "{key:?} already queued");
        self.weight_sum += weight;
        self.nr += 1;
    }

    /// Remove a queued (non-running) entity.
    pub fn remove(&mut self, key: EntKey, vruntime: u64, weight: u64) {
        let had = self.tree.remove(&(vruntime, key));
        debug_assert!(had, "{key:?} not queued at {vruntime}");
        self.weight_sum -= weight;
        self.nr -= 1;
    }

    /// The entity with the smallest vruntime, if any.
    pub fn leftmost(&self) -> Option<(u64, EntKey)> {
        self.tree.first().copied()
    }

    /// The largest queued vruntime (the paper's fork placement rule reads
    /// "the maximum vruntime of the threads waiting in the runqueue").
    pub fn max_vruntime(&self) -> Option<u64> {
        self.tree.last().map(|&(v, _)| v)
    }

    /// Take the leftmost entity out of the tree and make it `curr`.
    /// The caller accounts weight: the running entity stays counted.
    pub fn pick(&mut self) -> Option<(u64, EntKey)> {
        debug_assert!(self.curr.is_none(), "pick with running entity");
        let e = self.tree.pop_first()?;
        self.curr = Some(e.1);
        Some(e)
    }

    /// Reinsert the running entity after it stops running.
    pub fn put_prev(&mut self, key: EntKey, vruntime: u64) {
        debug_assert_eq!(self.curr, Some(key));
        self.curr = None;
        let fresh = self.tree.insert((vruntime, key));
        debug_assert!(fresh);
    }

    /// The running entity leaves the rq entirely (sleep/exit/migration).
    pub fn clear_curr(&mut self, key: EntKey, weight: u64) {
        debug_assert_eq!(self.curr, Some(key));
        self.curr = None;
        self.weight_sum -= weight;
        self.nr -= 1;
    }

    /// `true` if no entities are queued or running here.
    pub fn is_empty(&self) -> bool {
        self.nr == 0
    }

    /// Advance `min_vruntime` monotonically toward the smallest live
    /// vruntime (running entity's vruntime passed by the caller).
    pub fn refresh_min_vruntime(&mut self, curr_vruntime: Option<u64>) {
        let left = self.leftmost().map(|(v, _)| v);
        let candidate = match (curr_vruntime, left) {
            (Some(c), Some(l)) => Some(c.min(l)),
            (Some(c), None) => Some(c),
            (None, l) => l,
        };
        if let Some(c) = candidate {
            self.min_vruntime = self.min_vruntime.max(c);
        }
    }

    /// Iterate over queued entities in vruntime order.
    pub fn iter(&self) -> impl Iterator<Item = &(u64, EntKey)> {
        self.tree.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> EntKey {
        EntKey::Task(Tid(i))
    }

    #[test]
    fn leftmost_order_and_ties() {
        let mut rq = CfsRq::default();
        rq.insert(t(3), 100, 1024);
        rq.insert(t(1), 50, 1024);
        rq.insert(t(2), 50, 1024);
        assert_eq!(rq.leftmost(), Some((50, t(1)))); // tid breaks the tie
        assert_eq!(rq.max_vruntime(), Some(100));
        assert_eq!(rq.nr, 3);
        assert_eq!(rq.weight_sum, 3 * 1024);
    }

    #[test]
    fn pick_and_put_prev_round_trip() {
        let mut rq = CfsRq::default();
        rq.insert(t(1), 10, 1024);
        rq.insert(t(2), 20, 512);
        let (v, k) = rq.pick().unwrap();
        assert_eq!((v, k), (10, t(1)));
        assert_eq!(rq.curr, Some(t(1)));
        assert_eq!(rq.nr, 2, "running entity stays counted");
        rq.put_prev(t(1), 35);
        assert_eq!(rq.leftmost(), Some((20, t(2))));
        assert_eq!(rq.curr, None);
    }

    #[test]
    fn clear_curr_removes_from_accounting() {
        let mut rq = CfsRq::default();
        rq.insert(t(1), 10, 1024);
        rq.pick().unwrap();
        rq.clear_curr(t(1), 1024);
        assert!(rq.is_empty());
        assert_eq!(rq.weight_sum, 0);
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let mut rq = CfsRq::default();
        rq.insert(t(1), 100, 1024);
        rq.refresh_min_vruntime(None);
        assert_eq!(rq.min_vruntime, 100);
        rq.insert(t(2), 50, 1024);
        rq.refresh_min_vruntime(None);
        assert_eq!(rq.min_vruntime, 100, "never goes backward");
        rq.remove(t(2), 50, 1024);
        rq.remove(t(1), 100, 1024);
        rq.insert(t(3), 500, 1024);
        rq.refresh_min_vruntime(None);
        assert_eq!(rq.min_vruntime, 500);
    }

    #[test]
    fn calc_delta_fair_scales_inverse_to_weight() {
        let now = Time::ZERO;
        let heavy = Entity::new(2048, now);
        let light = Entity::new(512, now);
        let d = Dur::millis(10);
        assert_eq!(heavy.calc_delta_fair(d) * 4, light.calc_delta_fair(d));
    }
}
