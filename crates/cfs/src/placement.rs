//! Thread placement: `select_task_rq_fair`.
//!
//! §2.1 of the paper: "The scheduler first decides which cores are suitable
//! to host the thread. ... if CFS detects a 1-to-many producer-consumer
//! pattern, then it spreads out the consumer threads as much as possible
//! (...). In a 1-to-1 communication pattern, CFS restricts the list of
//! suitable cores to cores sharing a cache with the thread that initiated
//! the wakeup. Then, among all suitable cores, CFS chooses the core with the
//! lowest load."
//!
//! This module implements Linux's `wake_wide` flip heuristic, the
//! `wake_affine` waker-vs-prev choice, `select_idle_sibling` within the LLC,
//! and idlest-CPU search for forks and wide wakeups.

use sched_api::{SelectStats, TaskTable, Tid, WakeKind};
use simcore::{Dur, Time};
use topology::CpuId;

use crate::Cfs;

impl Cfs {
    /// Entry point used by `select_task_rq`.
    pub(crate) fn select_cpu(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        kind: WakeKind,
        waking_cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        match kind {
            WakeKind::New => self.find_idlest(tasks, tid, now, stats),
            WakeKind::Wakeup { waker } => {
                let prev = tasks.get(tid).last_cpu;
                let wide = match waker {
                    Some(w) if tasks.contains(w) => {
                        self.record_wakee(w, tid, now);
                        self.wake_wide(w, tid, waking_cpu)
                    }
                    _ => false,
                };
                if wide {
                    // 1-to-many pattern: spread over the whole machine.
                    return self.find_idlest(tasks, tid, now, stats);
                }
                // 1-to-1 pattern: stay near the waker if its CPU is not
                // more loaded than where the wakee slept. The comparison
                // uses instantaneous runnable weight (as Linux's
                // wake_affine effectively counts the running waker), so a
                // CPU that just became busy is not mistaken for idle.
                let task = tasks.get(tid);
                let target = if task.allowed_on(waking_cpu)
                    && self.cpus[waking_cpu.index()].online
                    && (self.cpus[waking_cpu.index()].tw_sum < self.cpus[prev.index()].tw_sum
                        || !self.cpus[prev.index()].online)
                {
                    waking_cpu
                } else if task.allowed_on(prev) && self.cpus[prev.index()].online {
                    prev
                } else {
                    self.first_allowed(tasks, tid)
                };
                self.select_idle_sibling(tasks, tid, target, stats)
            }
        }
    }

    /// Load of a CPU as seen by placement and balancing: the decaying
    /// runqueue load average (refresh with [`Cfs::refresh_load`] first).
    pub(crate) fn cpu_load(&self, cpu: CpuId) -> u64 {
        self.cpus[cpu.index()].load.avg()
    }

    /// Bring a CPU's load average up to `now`.
    pub(crate) fn refresh_load(&mut self, cpu: CpuId, now: Time) {
        let c = &mut self.cpus[cpu.index()];
        let tw = c.tw_sum;
        c.load.update(now, tw);
    }

    fn first_allowed(&self, tasks: &TaskTable, tid: Tid) -> CpuId {
        let task = tasks.get(tid);
        self.topo
            .all_cpus()
            .find(|&c| task.allowed_on(c) && self.cpus[c.index()].online)
            .expect("task with no online CPU in its affinity mask")
    }

    /// Track whether `waker` keeps waking the same task or many different
    /// ones (`record_wakee`): flips decay by half every second.
    pub(crate) fn record_wakee(&mut self, waker: Tid, wakee: Tid, now: Time) {
        let te = self.tent_mut(waker);
        while now.saturating_since(te.wakee_decay) >= Dur::secs(1) {
            te.wakee_flips /= 2;
            te.wakee_decay += Dur::secs(1);
            if te.wakee_flips == 0 {
                te.wakee_decay = now;
                break;
            }
        }
        if te.last_wakee != Some(wakee) {
            te.last_wakee = Some(wakee);
            te.wakee_flips += 1;
        }
    }

    /// Linux's `wake_wide`: detect 1-to-many producer/consumer wakeups.
    pub(crate) fn wake_wide(&self, waker: Tid, wakee: Tid, waking_cpu: CpuId) -> bool {
        let factor = self.topo.llc_cpus(waking_cpu).len() as u32;
        let mut master = self.tent(waker).wakee_flips;
        let mut slave = self.tent(wakee).wakee_flips;
        if master < slave {
            std::mem::swap(&mut master, &mut slave);
        }
        slave >= factor && master >= slave.saturating_mul(factor)
    }

    /// Linux's `select_idle_sibling`: prefer `target` if idle, otherwise an
    /// idle CPU sharing `target`'s LLC, otherwise `target` itself.
    pub(crate) fn select_idle_sibling(
        &self,
        tasks: &TaskTable,
        tid: Tid,
        target: CpuId,
        stats: &mut SelectStats,
    ) -> CpuId {
        let task = tasks.get(tid);
        stats.cpus_scanned += 1;
        let ok = |c: CpuId| task.allowed_on(c) && self.cpus[c.index()].online;
        if ok(target) && self.cpus[target.index()].h_nr == 0 {
            return target;
        }
        for &c in self.topo.llc_cpus(target) {
            stats.cpus_scanned += 1;
            if c != target && ok(c) && self.cpus[c.index()].h_nr == 0 {
                return c;
            }
        }
        if ok(target) {
            target
        } else {
            self.first_allowed(tasks, tid)
        }
    }

    /// Lowest-load CPU among the allowed ones (fork placement and wide
    /// wakeups; `find_idlest_group`/`find_idlest_cpu` collapsed onto the
    /// flat CPU set).
    pub(crate) fn find_idlest(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        let task = tasks.get(tid);
        // Linux's find_idlest_cpu compares load averages only; the blocked
        // residue of sleeping tasks blurs the comparison, which is exactly
        // how CFS ends up doubling threads onto one core (§6.3).
        let mut best: Option<(u64, CpuId)> = None;
        let all: Vec<CpuId> = self.topo.all_cpus().collect();
        for c in all {
            if !task.allowed_on(c) || !self.cpus[c.index()].online {
                continue;
            }
            self.refresh_load(c, now);
            stats.cpus_scanned += 1;
            let key = (self.cpu_load(c), c);
            match best {
                None => best = Some(key),
                Some(b) if (key.0, key.1 .0) < (b.0, b.1 .0) => best = Some(key),
                _ => {}
            }
        }
        best.expect("task with empty affinity mask").1
    }
}
