//! The Completely Fair Scheduler, as described in §2.1 of the paper
//! (Linux 4.9 semantics).
//!
//! * **Per-core scheduling** — weighted fair queueing over *vruntime*:
//!   each entity's virtual runtime advances at `wall_time × 1024 / weight`;
//!   the entity with the smallest vruntime runs next. Since Linux 2.6.38
//!   fairness is arbitrated *between applications*: threads live in cgroup
//!   runqueues, and a per-(group, cpu) *group entity* competes in the root
//!   runqueue with a weight derived from the group's shares.
//! * **Starvation avoidance** — every thread runs within a scheduling
//!   period (48 ms, stretched to 6 ms × n beyond 8 threads); new threads
//!   start at the maximum waiting vruntime; waking threads are clamped to
//!   `min_vruntime − bonus` so long sleepers run first.
//! * **Wakeup preemption** — a waking thread preempts the current one only
//!   if its vruntime is more than 1 ms behind (cache friendliness).
//! * **Load balancing** — per-entity decaying load averages (PELT), hier-
//!   archical sched-domains balanced every 4 ms, up to 32 tasks migrated
//!   per pass, and a 25 % imbalance tolerance between NUMA nodes.
//!
//! The load-balancing and thread-placement halves live in [`balance`] and
//! [`placement`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod entity;
pub mod params;
pub mod pelt;
pub mod placement;

use sched_api::{
    weights, DequeueKind, EnqueueKind, GroupId, Preempt, PreemptCause, Scheduler, SelectStats,
    TaskSnapshot, TaskTable, Tid, WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Domain, Level, Topology};

use entity::{CfsRq, EntKey, Entity};
use params::CfsParams;
use pelt::RqLoad;

/// Per-task CFS state (`struct sched_entity` for a task).
pub(crate) struct TaskEnt {
    pub(crate) ent: Entity,
    /// Effective cgroup (ROOT when cgroups are disabled).
    pub(crate) group: GroupId,
    /// Wakeup-pattern detection for `wake_wide` (1-to-many producers).
    pub(crate) wakee_flips: u32,
    pub(crate) wakee_decay: Time,
    pub(crate) last_wakee: Option<Tid>,
    /// `sum_exec` snapshot when the task was last picked (slice tracking).
    pub(crate) slice_start_exec: Dur,
}

/// Per-(group, cpu) state: the group's runqueue of tasks on that CPU plus
/// the group entity competing in the root runqueue.
pub(crate) struct GroupCpu {
    pub(crate) ge: Entity,
    pub(crate) rq: CfsRq,
    /// Σ task weights queued on this CPU (including a running one).
    pub(crate) queued_weight: u64,
    /// Whether the group entity is accounted in the root rq.
    pub(crate) active: bool,
}

/// Per-group state.
pub(crate) struct Group {
    pub(crate) per_cpu: Vec<GroupCpu>,
    /// Σ task weights across all CPUs (for share distribution).
    pub(crate) total_weight: u64,
    pub(crate) shares: u64,
}

/// Per-CPU state.
pub(crate) struct CpuRq {
    pub(crate) root: CfsRq,
    pub(crate) curr: Option<Tid>,
    /// Total runnable tasks on the CPU, including the running one.
    pub(crate) h_nr: usize,
    /// Instantaneous Σ of runnable task weights (including the running
    /// task), the target the load average tracks.
    pub(crate) tw_sum: u64,
    /// Decaying runqueue load average (`cfs_rq->avg.load_avg`).
    pub(crate) load: RqLoad,
    /// `false` while the CPU is hotplugged out: placement and balancing
    /// must not put tasks here.
    pub(crate) online: bool,
}

/// Per-CPU, per-domain balancing state.
pub(crate) struct DomState {
    pub(crate) dom: Domain,
    pub(crate) next_balance: Time,
    pub(crate) interval: Dur,
    pub(crate) nr_failed: u32,
    pub(crate) imbalance_pct: u64,
}

/// The CFS scheduling class.
pub struct Cfs {
    pub(crate) topo: Topology,
    pub(crate) p: CfsParams,
    pub(crate) tents: Vec<Option<TaskEnt>>,
    pub(crate) groups: Vec<Group>,
    pub(crate) cpus: Vec<CpuRq>,
    pub(crate) domains: Vec<Vec<DomState>>,
    /// Reused migration-candidate buffer (`load_balance` runs every few
    /// ticks; re-collecting the source rq into a fresh `Vec` each time was
    /// measurable in the event loop).
    pub(crate) scratch_tids: Vec<Tid>,
    /// Per-CPU `min_vruntime` observed by the last [`Scheduler::audit`]
    /// call, for the monotonicity invariant.
    pub(crate) last_audit_min: Vec<u64>,
}

impl Cfs {
    /// CFS with default parameters on `topo`.
    pub fn new(topo: &Topology) -> Cfs {
        Cfs::with_params(topo, CfsParams::default())
    }

    /// CFS with explicit parameters.
    pub fn with_params(topo: &Topology, p: CfsParams) -> Cfs {
        let ncpu = topo.nr_cpus();
        let numa = topo.nr_nodes() > 1;
        let domains = topo
            .all_cpus()
            .map(|cpu| {
                topo.domains(cpu)
                    .into_iter()
                    .enumerate()
                    .map(|(lvl, dom)| {
                        let interval =
                            Dur(p.balance_interval.as_nanos() * p.interval_scaling.pow(lvl as u32));
                        let pct = if numa && dom.level == Level::Machine {
                            p.imbalance_pct_numa
                        } else {
                            p.imbalance_pct_llc
                        };
                        DomState {
                            dom,
                            next_balance: Time::ZERO,
                            interval,
                            nr_failed: 0,
                            imbalance_pct: pct,
                        }
                    })
                    .collect()
            })
            .collect();
        Cfs {
            topo: topo.clone(),
            p,
            tents: Vec::new(),
            groups: Vec::new(),
            cpus: (0..ncpu)
                .map(|_| CpuRq {
                    root: CfsRq::default(),
                    curr: None,
                    h_nr: 0,
                    tw_sum: 0,
                    load: RqLoad::default(),
                    online: true,
                })
                .collect(),
            domains,
            scratch_tids: Vec::new(),
            last_audit_min: vec![0; ncpu],
        }
    }

    /// Access to the parameters (for ablation benches).
    pub fn params(&self) -> &CfsParams {
        &self.p
    }

    pub(crate) fn eff_group(&self, tasks: &TaskTable, tid: Tid) -> GroupId {
        if self.p.cgroups {
            tasks.get(tid).group
        } else {
            GroupId::ROOT
        }
    }

    pub(crate) fn ensure_group(&mut self, g: GroupId, now: Time) {
        let ncpu = self.cpus.len();
        while self.groups.len() <= g.index() {
            let shares = self.p.group_shares;
            self.groups.push(Group {
                per_cpu: (0..ncpu)
                    .map(|_| GroupCpu {
                        ge: Entity::new(shares, now),
                        rq: CfsRq::default(),
                        queued_weight: 0,
                        active: false,
                    })
                    .collect(),
                total_weight: 0,
                shares,
            });
        }
    }

    /// `min_vruntime` of the rq that holds group `g`'s tasks on `cpu`.
    pub(crate) fn rq_min_of(&self, g: GroupId, cpu: CpuId) -> u64 {
        if g == GroupId::ROOT {
            self.cpus[cpu.index()].root.min_vruntime
        } else if g.index() < self.groups.len() {
            self.groups[g.index()].per_cpu[cpu.index()].rq.min_vruntime
        } else {
            0
        }
    }

    pub(crate) fn tent(&self, tid: Tid) -> &TaskEnt {
        self.tents[tid.index()].as_ref().expect("cfs entity")
    }

    pub(crate) fn tent_mut(&mut self, tid: Tid) -> &mut TaskEnt {
        self.tents[tid.index()].as_mut().expect("cfs entity")
    }

    /// Recompute the group entity's weight on `cpu` from the share split
    /// (`shares × local_weight / total_weight`), adjusting the root rq's
    /// weight sum if the entity is accounted there.
    pub(crate) fn update_group_weight(&mut self, g: GroupId, cpu: CpuId) {
        if g == GroupId::ROOT {
            return;
        }
        let grp = &mut self.groups[g.index()];
        let gc = &mut grp.per_cpu[cpu.index()];
        let new = if grp.total_weight == 0 || gc.queued_weight == 0 {
            2
        } else {
            (grp.shares * gc.queued_weight / grp.total_weight).max(2)
        };
        let old = gc.ge.weight;
        if new != old {
            gc.ge.weight = new;
            if gc.active {
                let root = &mut self.cpus[cpu.index()].root;
                root.weight_sum = (root.weight_sum + new).saturating_sub(old);
            }
        }
    }

    /// Bring the running task's vruntime, PELT load and the min_vruntimes
    /// up to date (`update_curr`).
    pub(crate) fn update_curr(&mut self, cpu: CpuId, now: Time) {
        let Some(tid) = self.cpus[cpu.index()].curr else {
            return;
        };
        let g = self.tent(tid).group;
        let te = self.tent_mut(tid);
        let delta = now.saturating_since(te.ent.exec_start);
        te.ent.exec_start = now;
        if !delta.is_zero() {
            te.ent.sum_exec += delta;
            te.ent.vruntime += te.ent.calc_delta_fair(delta);
        }
        te.ent.pelt.update(now, true);
        te.ent.load_contrib = te.ent.pelt.load(te.ent.weight);
        let task_v = te.ent.vruntime;
        let c = &mut self.cpus[cpu.index()];
        let tw = c.tw_sum;
        c.load.update(now, tw);

        if g == GroupId::ROOT {
            c.root.refresh_min_vruntime(Some(task_v));
        } else {
            let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
            if !delta.is_zero() {
                gc.ge.vruntime += gc.ge.calc_delta_fair(delta);
                gc.ge.sum_exec += delta;
            }
            gc.rq.refresh_min_vruntime(Some(task_v));
            let ge_v = gc.ge.vruntime;
            self.cpus[cpu.index()].root.refresh_min_vruntime(Some(ge_v));
        }
    }

    /// The ideal slice of the running task: `period(h_nr)` × its share of
    /// the weights along the hierarchy.
    pub(crate) fn sched_slice(&self, cpu: CpuId, tid: Tid) -> Dur {
        let c = &self.cpus[cpu.index()];
        let period = self.p.period(c.h_nr.max(1));
        let te = self.tent(tid);
        // `x * num / den`, dropping to 64-bit division when the product
        // fits (it almost always does: period × weight ≲ 2^50); the u128
        // divide is a libcall and this runs on every tick.
        fn mul_div(x: u128, num: u64, den: u64) -> u128 {
            let prod = x * num as u128;
            if prod >> 64 == 0 {
                (prod as u64 / den) as u128
            } else {
                prod / den as u128
            }
        }
        let mut slice = period.as_nanos() as u128;
        if te.group == GroupId::ROOT {
            slice = mul_div(slice, te.ent.weight, c.root.weight_sum.max(1));
        } else {
            let gc = &self.groups[te.group.index()].per_cpu[cpu.index()];
            slice = mul_div(slice, te.ent.weight, gc.rq.weight_sum.max(1));
            slice = mul_div(slice, gc.ge.weight, c.root.weight_sum.max(1));
        }
        Dur(slice as u64).max(Dur::millis(1))
    }

    /// Wakeup-preemption test (`check_preempt_wakeup`): compare at the
    /// deepest common level of the hierarchy; preempt when the waking
    /// entity's vruntime is more than the (virtual) wakeup granularity
    /// behind the running one.
    fn should_preempt_on_wakeup(&self, cpu: CpuId, woken: Tid) -> bool {
        let Some(curr) = self.cpus[cpu.index()].curr else {
            return true;
        };
        if curr == woken {
            return false;
        }
        let cw = self.tent(curr);
        let ww = self.tent(woken);
        let (curr_v, woken_v, gran_w) = if cw.group == ww.group {
            (cw.ent.vruntime, ww.ent.vruntime, ww.ent.weight)
        } else {
            // Compare the root-level entities (group entity or root task).
            let cv = if cw.group == GroupId::ROOT {
                cw.ent.vruntime
            } else {
                self.groups[cw.group.index()].per_cpu[cpu.index()]
                    .ge
                    .vruntime
            };
            let (wv, wgw) = if ww.group == GroupId::ROOT {
                (ww.ent.vruntime, ww.ent.weight)
            } else {
                let gc = &self.groups[ww.group.index()].per_cpu[cpu.index()];
                (gc.ge.vruntime, gc.ge.weight)
            };
            (cv, wv, wgw)
        };
        if woken_v >= curr_v {
            return false;
        }
        let gran_v = self.p.wakeup_granularity.as_nanos() * 1024 / gran_w.max(1);
        curr_v - woken_v > gran_v
    }
}

impl Scheduler for Cfs {
    fn name(&self) -> &'static str {
        "cfs"
    }

    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        kind: WakeKind,
        waking_cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        self.select_cpu(tasks, tid, kind, waking_cpu, now, stats)
    }

    fn enqueue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        kind: EnqueueKind,
        now: Time,
    ) -> Preempt {
        let g = self.eff_group(tasks, tid);
        self.ensure_group(g, now);
        self.update_curr(cpu, now);

        // PELT: time since the entity was last updated was sleep for
        // wakeups, runnable otherwise.
        let te = self.tent_mut(tid);
        te.ent.pelt.update(now, kind != EnqueueKind::Wakeup);
        te.ent.load_contrib = te.ent.pelt.load(te.ent.weight);
        let w = te.ent.weight;

        // Virtual-runtime placement (§2.1).
        let rq_min = if g == GroupId::ROOT {
            self.cpus[cpu.index()].root.min_vruntime
        } else {
            self.groups[g.index()].per_cpu[cpu.index()].rq.min_vruntime
        };
        let stored = self.tent(tid).ent.vruntime;
        let v = match kind {
            EnqueueKind::New => {
                // "the thread starts with a vruntime equal to the maximum
                // vruntime of the threads waiting in the runqueue".
                let rq_max = if g == GroupId::ROOT {
                    self.cpus[cpu.index()].root.max_vruntime()
                } else {
                    self.groups[g.index()].per_cpu[cpu.index()]
                        .rq
                        .max_vruntime()
                };
                rq_max.unwrap_or(rq_min).max(rq_min)
            }
            EnqueueKind::Wakeup => {
                // "its vruntime is updated to be at least equal to the
                // minimum vruntime", with the sleeper bonus applied.
                // `stored` is absolute in the scale of the rq the task
                // slept on; rebase if it wakes on another CPU.
                let last = tasks.get(tid).last_cpu;
                let abs = if last == cpu {
                    stored as i128
                } else {
                    stored as i128 - self.rq_min_of(g, last) as i128 + rq_min as i128
                };
                let floor = rq_min.saturating_sub(self.p.sleeper_bonus.as_nanos());
                if abs <= floor as i128 {
                    floor
                } else {
                    abs as u64
                }
            }
            EnqueueKind::Migrate | EnqueueKind::Requeue => {
                // `stored` is a *signed* offset relative to the source
                // rq's min_vruntime (see the renormalisation in
                // `dequeue_task`): a task parked at the wakeup floor sits
                // *below* min_vruntime, making the offset negative. Rebase
                // in signed arithmetic and clamp at this rq's sleeper
                // floor; a plain unsigned wrap would sort the entity to
                // the far right of the tree and drag min_vruntime with it.
                let abs = (stored as i64 as i128) + rq_min as i128;
                let floor = rq_min.saturating_sub(self.p.sleeper_bonus.as_nanos());
                if abs <= floor as i128 {
                    floor
                } else {
                    abs as u64
                }
            }
        };
        self.tent_mut(tid).ent.vruntime = v;

        if g == GroupId::ROOT {
            self.cpus[cpu.index()].root.insert(EntKey::Task(tid), v, w);
        } else {
            let grp = &mut self.groups[g.index()];
            let gc = &mut grp.per_cpu[cpu.index()];
            let was_active = gc.active;
            gc.rq.insert(EntKey::Task(tid), v, w);
            gc.queued_weight += w;
            grp.total_weight += w;
            self.update_group_weight(g, cpu);
            if !was_active {
                // Activate the group entity in the root rq.
                let root_min = self.cpus[cpu.index()].root.min_vruntime;
                let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
                let floor = root_min.saturating_sub(self.p.sleeper_bonus.as_nanos());
                gc.ge.vruntime = gc.ge.vruntime.max(floor);
                gc.active = true;
                let (gev, gew) = (gc.ge.vruntime, gc.ge.weight);
                self.cpus[cpu.index()]
                    .root
                    .insert(EntKey::Group(g), gev, gew);
            }
        }
        // Load attach (Linux attach_entity_load_avg): new and migrated
        // entities add their decayed average immediately. A wakeup on the
        // same CPU re-uses the *blocked* residue still present in the rq
        // average; a wakeup elsewhere moves the residue across.
        let contrib = self.tent(tid).ent.load_contrib.max(2);
        let last = tasks.get(tid).last_cpu;
        match kind {
            EnqueueKind::Wakeup if last == cpu => {}
            EnqueueKind::Wakeup => {
                self.cpus[last.index()].load.detach(contrib);
                self.cpus[cpu.index()].load.attach(contrib);
            }
            _ => self.cpus[cpu.index()].load.attach(contrib),
        }
        let c = &mut self.cpus[cpu.index()];
        let tw = c.tw_sum;
        c.load.update(now, tw);
        c.h_nr += 1;
        c.tw_sum += w;

        if kind == EnqueueKind::Wakeup && self.should_preempt_on_wakeup(cpu, tid) {
            Preempt::Yes(PreemptCause::Wakeup)
        } else {
            Preempt::No
        }
    }

    fn dequeue_task(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        now: Time,
    ) {
        let g = self.eff_group(tasks, tid);
        self.update_curr(cpu, now);
        let is_curr = self.cpus[cpu.index()].curr == Some(tid);
        let te = self.tent_mut(tid);
        te.ent.pelt.update(now, true);
        te.ent.load_contrib = te.ent.pelt.load(te.ent.weight);
        let w = te.ent.weight;
        let v = te.ent.vruntime;

        // Only migrations renormalise vruntime to a relative value; sleep
        // keeps it absolute so the sleeper-bonus floor has effect (Linux
        // renormalises in `migrate_task_rq_fair` only).
        let renorm = _kind == DequeueKind::Migrate;
        if g == GroupId::ROOT {
            let root = &mut self.cpus[cpu.index()].root;
            if is_curr {
                root.clear_curr(EntKey::Task(tid), w);
            } else {
                root.remove(EntKey::Task(tid), v, w);
            }
            let rq_min = root.min_vruntime;
            if renorm {
                self.tent_mut(tid).ent.vruntime = v.wrapping_sub(rq_min);
            }
        } else {
            {
                let grp = &mut self.groups[g.index()];
                let gc = &mut grp.per_cpu[cpu.index()];
                if is_curr {
                    gc.rq.clear_curr(EntKey::Task(tid), w);
                } else {
                    gc.rq.remove(EntKey::Task(tid), v, w);
                }
                gc.queued_weight -= w;
                grp.total_weight -= w;
            }
            let (grq_min, now_empty, gev, gew) = {
                let gc = &self.groups[g.index()].per_cpu[cpu.index()];
                (
                    gc.rq.min_vruntime,
                    gc.rq.is_empty(),
                    gc.ge.vruntime,
                    gc.ge.weight,
                )
            };
            if renorm {
                self.tent_mut(tid).ent.vruntime = v.wrapping_sub(grq_min);
            }

            if is_curr {
                // The group entity was the root rq's running entity.
                if now_empty {
                    let root = &mut self.cpus[cpu.index()].root;
                    root.clear_curr(EntKey::Group(g), gew);
                    let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
                    gc.active = false; // ge vruntime stays absolute
                } else {
                    // Still has queued siblings: requeue the group entity.
                    self.cpus[cpu.index()].root.put_prev(EntKey::Group(g), gev);
                }
            } else if now_empty {
                let root = &mut self.cpus[cpu.index()].root;
                root.remove(EntKey::Group(g), gev, gew);
                let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
                gc.active = false; // ge vruntime stays absolute
            }
            self.update_group_weight(g, cpu);
        }
        // Blocked load: a sleeping entity's contribution stays in the rq
        // average and decays there (Linux keeps blocked load attached);
        // only migration/exit removes it immediately.
        if _kind != DequeueKind::Sleep {
            let contrib = self.tent(tid).ent.load_contrib.max(2);
            self.cpus[cpu.index()].load.detach(contrib);
        }
        let c = &mut self.cpus[cpu.index()];
        let tw = c.tw_sum;
        c.load.update(now, tw);
        c.h_nr -= 1;
        c.tw_sum = c.tw_sum.saturating_sub(w);
        if is_curr {
            c.curr = None;
        }
    }

    fn yield_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) {
        if let Some(curr) = self.cpus[cpu.index()].curr {
            self.put_prev_task(tasks, cpu, curr, now);
        }
    }

    fn pick_next_task(&mut self, tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        debug_assert!(self.cpus[cpu.index()].curr.is_none());
        let (_, key) = self.cpus[cpu.index()].root.pick()?;
        let tid = match key {
            EntKey::Task(t) => t,
            EntKey::Group(g) => {
                let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
                let (_, tk) = gc.rq.pick().expect("active group entity with empty rq");
                match tk {
                    EntKey::Task(t) => t,
                    EntKey::Group(_) => unreachable!("two-level hierarchy"),
                }
            }
        };
        let te = self.tent_mut(tid);
        te.ent.exec_start = now;
        te.slice_start_exec = te.ent.sum_exec;
        self.cpus[cpu.index()].curr = Some(tid);
        debug_assert_eq!(tasks.get(tid).cpu, cpu);
        Some(tid)
    }

    fn put_prev_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, tid: Tid, now: Time) {
        debug_assert_eq!(self.cpus[cpu.index()].curr, Some(tid));
        self.update_curr(cpu, now);
        let g = self.tent(tid).group;
        let v = self.tent(tid).ent.vruntime;
        if g == GroupId::ROOT {
            self.cpus[cpu.index()].root.put_prev(EntKey::Task(tid), v);
        } else {
            let gc = &mut self.groups[g.index()].per_cpu[cpu.index()];
            gc.rq.put_prev(EntKey::Task(tid), v);
            let gev = gc.ge.vruntime;
            self.cpus[cpu.index()].root.put_prev(EntKey::Group(g), gev);
        }
        self.cpus[cpu.index()].curr = None;
    }

    fn task_tick(&mut self, _tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt {
        self.update_curr(cpu, now);
        let c = &self.cpus[cpu.index()];
        if c.h_nr <= 1 {
            return Preempt::No;
        }
        let ideal = self.sched_slice(cpu, curr);
        let te = self.tent(curr);
        let delta_exec = te.ent.sum_exec - te.slice_start_exec;
        if delta_exec > ideal {
            return Preempt::Yes(PreemptCause::SliceExpired);
        }
        // Secondary check from `check_preempt_tick`: don't let curr run far
        // ahead of the leftmost waiter in its own rq.
        if delta_exec > self.p.min_granularity {
            let leftmost = if te.group == GroupId::ROOT {
                c.root.leftmost()
            } else {
                self.groups[te.group.index()].per_cpu[cpu.index()]
                    .rq
                    .leftmost()
            };
            if let Some((lv, _)) = leftmost {
                if te.ent.vruntime > lv && te.ent.vruntime - lv > ideal.as_nanos() {
                    return Preempt::Yes(PreemptCause::Fairness);
                }
            }
        }
        Preempt::No
    }

    fn task_fork(&mut self, tasks: &TaskTable, child: Tid, _parent: Option<Tid>, now: Time) {
        let t = tasks.get(child);
        let weight = weights::nice_to_weight(t.nice);
        if child.index() >= self.tents.len() {
            self.tents.resize_with(child.index() + 1, || None);
        }
        let group = if self.p.cgroups {
            t.group
        } else {
            GroupId::ROOT
        };
        self.tents[child.index()] = Some(TaskEnt {
            ent: Entity::new(weight, now),
            group,
            wakee_flips: 0,
            wakee_decay: now,
            last_wakee: None,
            slice_start_exec: Dur::ZERO,
        });
    }

    fn task_dead(&mut self, _tasks: &TaskTable, tid: Tid, _now: Time) {
        self.tents[tid.index()] = None;
    }

    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    ) {
        self.periodic_balance(tasks, cpu, now, targets);
    }

    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        self.newidle_balance(tasks, cpu, now, stats)
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        self.cpus[cpu.index()].h_nr
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        for &(_, key) in self.cpus[cpu.index()].root.iter() {
            match key {
                EntKey::Task(t) => out.push(t),
                EntKey::Group(g) => {
                    for &(_, tk) in self.groups[g.index()].per_cpu[cpu.index()].rq.iter() {
                        if let EntKey::Task(t) = tk {
                            out.push(t);
                        }
                    }
                }
            }
        }
        // The running task's group entity is out of the root tree, but its
        // queued siblings are reachable only through that group's rq.
        if let Some(EntKey::Group(g)) = self.cpus[cpu.index()].root.curr {
            for &(_, tk) in self.groups[g.index()].per_cpu[cpu.index()].rq.iter() {
                if let EntKey::Task(t) = tk {
                    out.push(t);
                }
            }
        }
    }

    fn snapshot(&self, tasks: &TaskTable, tid: Tid) -> TaskSnapshot {
        let Some(te) = self.tents.get(tid.index()).and_then(|e| e.as_ref()) else {
            return TaskSnapshot::default();
        };
        TaskSnapshot {
            vruntime_ns: Some(te.ent.vruntime),
            load: Some(te.ent.pelt.avg()),
            prio: Some(weights::nice_to_prio(tasks.get(tid).nice)),
            timeslice_ns: None,
            ..Default::default()
        }
    }

    fn audit(&mut self, _tasks: &TaskTable, cpu: CpuId, _now: Time) -> Result<(), String> {
        let c = &self.cpus[cpu.index()];

        // min_vruntime must never go backward (the fairness clock).
        let min = c.root.min_vruntime;
        let last = self.last_audit_min[cpu.index()];
        if min < last {
            return Err(format!("root min_vruntime went backward: {last} -> {min}"));
        }
        self.last_audit_min[cpu.index()] = min;

        // The hierarchy's task count must agree with h_nr, and the running
        // task must be represented as the rq's curr entity at each level.
        let ent_tasks = |key: EntKey| -> usize {
            match key {
                EntKey::Task(_) => 1,
                EntKey::Group(g) => self.groups[g.index()].per_cpu[cpu.index()].rq.nr,
            }
        };
        let mut n = 0usize;
        for &(_, key) in c.root.iter() {
            if let EntKey::Group(g) = key {
                let gc = &self.groups[g.index()].per_cpu[cpu.index()];
                if gc.rq.curr.is_some() {
                    return Err(format!("queued group entity {g:?} has a running child"));
                }
            }
            n += ent_tasks(key);
        }
        if let Some(key) = c.root.curr {
            n += ent_tasks(key);
        }
        if n != c.h_nr {
            return Err(format!(
                "h_nr accounting drifted: h_nr={} but hierarchy holds {n} task(s)",
                c.h_nr
            ));
        }
        match (c.curr, c.root.curr) {
            (None, None) => {}
            (None, Some(k)) => return Err(format!("no running task but root curr is {k:?}")),
            (Some(t), None) => return Err(format!("{t} runs but no root curr entity is set")),
            (Some(t), Some(EntKey::Task(rt))) => {
                if t != rt {
                    return Err(format!("running {t} but root curr is {rt}"));
                }
            }
            (Some(t), Some(EntKey::Group(g))) => {
                let gc = &self.groups[g.index()].per_cpu[cpu.index()];
                if gc.rq.curr != Some(EntKey::Task(t)) {
                    return Err(format!(
                        "running {t} but group {g:?} curr is {:?}",
                        gc.rq.curr
                    ));
                }
            }
        }
        Ok(())
    }

    fn cpu_offline(&mut self, cpu: CpuId) {
        self.cpus[cpu.index()].online = false;
    }

    fn cpu_online(&mut self, cpu: CpuId) {
        self.cpus[cpu.index()].online = true;
    }
}
