//! Per-entity load tracking (PELT).
//!
//! CFS's load metric — "the load of a thread corresponds to the average CPU
//! utilization of a thread ... weighted by the thread's priority" (§2.1) —
//! is a geometrically decaying average of the time an entity was runnable.
//! This module implements the standard PELT series: time is divided into
//! 1024 µs periods, each period's contribution decays by `y` with
//! `y^32 = 0.5`, so `LOAD_AVG_MAX = Σ y^i · 1024 ≈ 47742`.

#[cfg(test)]
use simcore::Dur;
use simcore::Time;

/// PELT period length (1024 µs ≈ 1 ms, as in Linux).
pub const PERIOD_NS: u64 = 1_048_576;

/// Maximum attainable decayed sum (entity runnable forever).
pub const LOAD_AVG_MAX: u64 = 47742;

/// `y^k * 2^32` for k in 0..32, from Linux's `runnable_avg_yN_inv`.
const YN_INV: [u64; 32] = [
    0xffffffff, 0xfa83b2da, 0xf5257d14, 0xefe4b99a, 0xeac0c6e6, 0xe5b906e6, 0xe0ccdeeb, 0xdbfbb796,
    0xd744fcc9, 0xd2a81d91, 0xce248c14, 0xc9b9bd85, 0xc5672a10, 0xc12c4cc9, 0xbd08a39e, 0xb8fbaf46,
    0xb504f333, 0xb123f581, 0xad583ee9, 0xa9a15ab4, 0xa5fed6a9, 0xa2704302, 0x9ef5325f, 0x9b8d39b9,
    0x9837f050, 0x94f4efa8, 0x91c3d373, 0x8ea4398a, 0x8b95c1e3, 0x88980e80, 0x85aac367, 0x82cd8698,
];

/// Decay `val` by `n` PELT periods: `val * y^n`.
pub fn decay_load(mut val: u64, mut n: u64) -> u64 {
    if n > 2000 {
        // y^2000 is far below 1; everything has decayed away.
        return 0;
    }
    // Halve for every full 32-period span (y^32 = 1/2).
    while n >= 32 {
        val >>= 1;
        n -= 32;
    }
    ((val as u128 * YN_INV[n as usize] as u128) >> 32) as u64
}

/// Decaying runnable-time average of one scheduling entity.
#[derive(Debug, Clone, Default)]
pub struct Pelt {
    /// Last time the series was brought up to date.
    last_update: Time,
    /// Decayed runnable sum, in the same units as `LOAD_AVG_MAX`.
    sum: u64,
    /// Leftover nanoseconds inside the current period.
    period_frac: u64,
}

impl Pelt {
    /// A series starting fully loaded (Linux initialises new tasks at max
    /// load so they are seen by the balancer immediately).
    pub fn new_max(now: Time) -> Pelt {
        Pelt {
            last_update: now,
            sum: LOAD_AVG_MAX,
            period_frac: 0,
        }
    }

    /// A series starting at zero.
    pub fn new_zero(now: Time) -> Pelt {
        Pelt {
            last_update: now,
            sum: 0,
            period_frac: 0,
        }
    }

    /// Advance the series to `now`, with the entity having been runnable
    /// (running or waiting) the whole interval iff `runnable`.
    pub fn update(&mut self, now: Time, runnable: bool) {
        let delta = now.saturating_since(self.last_update).as_nanos();
        if delta == 0 {
            return;
        }
        self.last_update = now;
        let total = self.period_frac + delta;
        let full_periods = total / PERIOD_NS;
        self.period_frac = total % PERIOD_NS;
        if full_periods == 0 {
            if runnable {
                // Contribution accrues within the open period; we fold it in
                // lazily at the next boundary. Approximate by adding the raw
                // fraction scaled down to period units.
                self.sum = (self.sum + delta * 1024 / PERIOD_NS).min(LOAD_AVG_MAX);
            }
            return;
        }
        // Decay the old sum across the elapsed periods, then add the new
        // contributions (a fully runnable span of n periods contributes
        // 1024 * (y + y^2 + ... + y^n) = 1024 * series(n)).
        self.sum = decay_load(self.sum, full_periods);
        if runnable {
            self.sum = (self.sum + contrib(full_periods)).min(LOAD_AVG_MAX);
        }
    }

    /// Average in `[0, 1024]`: the fraction of recent time spent runnable.
    pub fn avg(&self) -> u64 {
        self.sum * 1024 / LOAD_AVG_MAX
    }

    /// Load contribution: `avg × weight / 1024`.
    pub fn load(&self, weight: u64) -> u64 {
        self.sum * weight / LOAD_AVG_MAX
    }
}

/// Runqueue-level load average (`cfs_rq->avg.load_avg`): a decaying series
/// that tracks the *sum of runnable weights* on a CPU. Unlike per-entity
/// PELT, this accrues while tasks sit queued, so a CPU with a long runqueue
/// is visible to the balancer even if its tasks rarely run individually.
#[derive(Debug, Clone, Default)]
pub struct RqLoad {
    last: Time,
    avg: u64,
    /// Leftover nanoseconds below one period (so frequent sub-period
    /// updates still accumulate).
    frac: u64,
}

impl RqLoad {
    /// Advance the series toward `target` (the current Σ of runnable
    /// weights) over the time since the last update, using the PELT decay
    /// constant (half-life of 32 periods ≈ 32 ms).
    pub fn update(&mut self, now: Time, target: u64) {
        let delta = now.saturating_since(self.last).as_nanos();
        self.last = now;
        let total = self.frac + delta;
        let periods = total / PERIOD_NS;
        self.frac = total % PERIOD_NS;
        if periods == 0 {
            return;
        }
        // avg approaches target geometrically: avg' = target − (target −
        // avg)·y^p, computed separately for the rising/falling branch to
        // stay in unsigned arithmetic.
        if self.avg <= target {
            self.avg = target - decay_load(target - self.avg, periods);
        } else {
            self.avg = target + decay_load(self.avg - target, periods);
        }
    }

    /// The current average.
    pub fn avg(&self) -> u64 {
        self.avg
    }

    /// Immediately add an attaching entity's weight (Linux adds the new
    /// entity's `load_avg` to `cfs_rq->avg` on enqueue rather than waiting
    /// for the series to ramp).
    pub fn attach(&mut self, w: u64) {
        self.avg += w;
    }

    /// Immediately subtract a detaching entity's weight.
    pub fn detach(&mut self, w: u64) {
        self.avg = self.avg.saturating_sub(w);
    }
}

/// `1024 * Σ_{i=1..n} y^i` — the runnable contribution of `n` fully
/// runnable periods.
fn contrib(n: u64) -> u64 {
    if n >= 345 {
        // The series has effectively converged to LOAD_AVG_MAX.
        return LOAD_AVG_MAX;
    }
    // Σ_{i=1..n} y^i = (LOAD_AVG_MAX/1024 scaled) — compute by decaying the
    // full series: sum(n) = MAX - decay(MAX, n) - 1024 (the current period).
    LOAD_AVG_MAX - decay_load(LOAD_AVG_MAX, n) - 1024 + decay_load(1024, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_halves_every_32_periods() {
        assert_eq!(decay_load(1024, 0), 1023); // 0xffffffff rounds down
        let d32 = decay_load(1024, 32);
        assert!((511..=512).contains(&d32), "got {d32}");
        assert_eq!(decay_load(1024, 3000), 0);
    }

    #[test]
    fn always_runnable_converges_to_max() {
        let mut p = Pelt::new_zero(Time::ZERO);
        let mut t = Time::ZERO;
        for _ in 0..1000 {
            t += Dur::millis(1);
            p.update(t, true);
        }
        assert!(p.avg() > 1000, "avg {} should be near 1024", p.avg());
    }

    #[test]
    fn sleeper_decays_toward_zero() {
        let mut p = Pelt::new_max(Time::ZERO);
        let t = Time::ZERO + Dur::millis(500);
        p.update(t, false);
        assert!(p.avg() < 5, "avg {} should be near 0", p.avg());
    }

    #[test]
    fn fifty_percent_duty_cycle_lands_midway() {
        let mut p = Pelt::new_zero(Time::ZERO);
        let mut t = Time::ZERO;
        for _ in 0..2000 {
            t += Dur::millis(1);
            p.update(t, true);
            t += Dur::millis(1);
            p.update(t, false);
        }
        let avg = p.avg();
        assert!(
            (300..=700).contains(&avg),
            "50% duty cycle should land mid-range, got {avg}"
        );
    }

    #[test]
    fn load_scales_by_weight() {
        let mut p = Pelt::new_max(Time::ZERO);
        p.update(Time::ZERO + Dur::millis(1), true);
        let l1024 = p.load(1024);
        let l512 = p.load(512);
        assert!(l1024 >= 2 * l512 - 2 && l1024 <= 2 * l512 + 2);
    }

    #[test]
    fn new_max_is_visible_to_balancer() {
        let p = Pelt::new_max(Time::ZERO);
        assert_eq!(p.avg(), 1024);
        assert_eq!(p.load(1024), LOAD_AVG_MAX * 1024 / LOAD_AVG_MAX);
    }
}
