//! CFS tunables, with the values the paper reports for Linux 4.9.

use sched_api::params::{Dim, ParamSpace, ParamVector};
use simcore::Dur;

/// CFS configuration. Defaults follow §2.1 of the paper.
#[derive(Debug, Clone)]
pub struct CfsParams {
    /// Scheduling period for up to [`CfsParams::nr_latency`] runnable
    /// threads: "for a core executing fewer than 8 threads the default time
    /// period is 48ms".
    pub sched_latency: Dur,
    /// Threads beyond which the period grows linearly: "6 ∗ number of
    /// threads ms" — the per-thread minimum slice.
    pub min_granularity: Dur,
    /// Runnable-thread count at which the period starts stretching.
    pub nr_latency: usize,
    /// Wakeup preemption granularity: "if the difference is not significant
    /// (less than 1ms), the current running thread is not preempted".
    pub wakeup_granularity: Dur,
    /// Sleeper placement bonus: a waking thread's vruntime is clamped to at
    /// least `min_vruntime − sleeper_bonus` (GENTLE_FAIR_SLEEPERS), so
    /// "threads that sleep a lot are scheduled first".
    pub sleeper_bonus: Dur,
    /// Base periodic balancing interval: "every 4ms every core tries to
    /// steal work from other cores".
    pub balance_interval: Dur,
    /// Interval multiplier per domain level above the lowest (balancing is
    /// less frequent between remote cores).
    pub interval_scaling: u64,
    /// Imbalance threshold inside a node (Linux `imbalance_pct` 117 ≈ small
    /// tolerance; we use 110 for intra-LLC domains).
    pub imbalance_pct_llc: u64,
    /// Imbalance threshold between NUMA nodes: "if the load difference
    /// between the nodes is small (less than 25% in practice), then no load
    /// balancing is performed".
    pub imbalance_pct_numa: u64,
    /// Maximum tasks migrated in one balancing pass: "stealing as many as
    /// 32 threads".
    pub max_migrate: usize,
    /// Tasks that ran within this span are considered cache-hot and resist
    /// migration (Linux `sysctl_sched_migration_cost`).
    pub migration_cost: Dur,
    /// Failed-balance attempts after which cache-hotness is overridden.
    pub cache_nice_tries: u32,
    /// Default cgroup shares (`NICE_0_LOAD`): every application group gets
    /// an equal share, which is what makes CFS fair *between applications*.
    pub group_shares: u64,
    /// Enable the per-application cgroup hierarchy (Linux ≥ 2.6.38
    /// behaviour described in §2.1). Disabling reverts to per-thread
    /// fairness, used by the ablation benches.
    pub cgroups: bool,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            sched_latency: Dur::millis(48),
            min_granularity: Dur::millis(6),
            nr_latency: 8,
            wakeup_granularity: Dur::millis(1),
            sleeper_bonus: Dur::millis(24),
            balance_interval: Dur::millis(4),
            interval_scaling: 2,
            imbalance_pct_llc: 110,
            imbalance_pct_numa: 125,
            max_migrate: 32,
            migration_cost: Dur::micros(500),
            cache_nice_tries: 1,
            group_shares: 1024,
            cgroups: true,
        }
    }
}

impl CfsParams {
    /// The scheduling period for `nr` runnable threads (§2.1): 48 ms up to
    /// 8 threads, then 6 ms × nr.
    pub fn period(&self, nr: usize) -> Dur {
        if nr <= self.nr_latency {
            self.sched_latency
        } else {
            self.min_granularity.saturating_mul(nr as u64)
        }
    }
}

/// The searchable subset of [`CfsParams`] (`battle tune`). Structural
/// switches (`cgroups`) and bulk-migration internals stay fixed; the nine
/// dimensions below are the latency/granularity/balancing knobs Linux
/// exposes through `sysctl kernel.sched_*`.
impl ParamSpace for CfsParams {
    fn dims() -> Vec<Dim> {
        vec![
            Dim::duration(
                "sched_latency",
                Dur::millis(6),
                Dur::millis(192),
                Dur::millis(48),
            ),
            Dim::duration(
                "min_granularity",
                Dur::micros(750),
                Dur::millis(24),
                Dur::millis(6),
            ),
            Dim::integer("nr_latency", 2, 32, 8),
            Dim::duration(
                "wakeup_granularity",
                Dur::micros(100),
                Dur::millis(8),
                Dur::millis(1),
            ),
            Dim::duration(
                "sleeper_bonus",
                Dur::micros(500),
                Dur::millis(96),
                Dur::millis(24),
            ),
            Dim::duration(
                "balance_interval",
                Dur::millis(1),
                Dur::millis(32),
                Dur::millis(4),
            ),
            Dim::integer("imbalance_pct_llc", 100, 150, 110),
            Dim::integer("imbalance_pct_numa", 100, 200, 125),
            Dim::duration(
                "migration_cost",
                Dur::micros(50),
                Dur::millis(5),
                Dur::micros(500),
            ),
        ]
    }

    fn to_vector(&self) -> ParamVector {
        ParamVector(vec![
            self.sched_latency.as_nanos() as f64,
            self.min_granularity.as_nanos() as f64,
            self.nr_latency as f64,
            self.wakeup_granularity.as_nanos() as f64,
            self.sleeper_bonus.as_nanos() as f64,
            self.balance_interval.as_nanos() as f64,
            self.imbalance_pct_llc as f64,
            self.imbalance_pct_numa as f64,
            self.migration_cost.as_nanos() as f64,
        ])
    }

    fn from_vector(v: &ParamVector) -> CfsParams {
        let d = Self::dims();
        CfsParams {
            sched_latency: v.dur(0, &d),
            min_granularity: v.dur(1, &d),
            nr_latency: v.int(2, &d) as usize,
            wakeup_granularity: v.dur(3, &d),
            sleeper_bonus: v.dur(4, &d),
            balance_interval: v.dur(5, &d),
            imbalance_pct_llc: v.int(6, &d),
            imbalance_pct_numa: v.int(7, &d),
            migration_cost: v.dur(8, &d),
            ..CfsParams::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_matches_paper() {
        let p = CfsParams::default();
        assert_eq!(p.period(1), Dur::millis(48));
        assert_eq!(p.period(8), Dur::millis(48));
        assert_eq!(p.period(9), Dur::millis(54));
        assert_eq!(p.period(100), Dur::millis(600));
    }

    #[test]
    fn default_vector_roundtrips() {
        let dims = CfsParams::dims();
        let v = CfsParams::default().to_vector();
        assert_eq!(v.0.len(), dims.len());
        // Every default sits inside its declared bounds, untouched by
        // quantization.
        assert_eq!(v.quantized(&dims), v);
        let p = CfsParams::from_vector(&v);
        assert_eq!(p.to_vector(), v);
        assert_eq!(p.sched_latency, Dur::millis(48));
        assert_eq!(p.nr_latency, 8);
        assert!(p.cgroups, "non-tunable fields keep their defaults");
    }

    #[test]
    fn out_of_bounds_vector_is_clamped() {
        let dims = CfsParams::dims();
        let mut v = CfsParams::default().to_vector();
        v.0[0] = 0.0; // sched_latency below the 6 ms floor
        v.0[6] = 1e9; // imbalance_pct_llc above the 150 cap
        let p = CfsParams::from_vector(&v);
        assert_eq!(p.sched_latency, Dur::millis(6));
        assert_eq!(p.imbalance_pct_llc, 150);
        let _ = dims;
    }
}
