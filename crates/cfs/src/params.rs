//! CFS tunables, with the values the paper reports for Linux 4.9.

use simcore::Dur;

/// CFS configuration. Defaults follow §2.1 of the paper.
#[derive(Debug, Clone)]
pub struct CfsParams {
    /// Scheduling period for up to [`CfsParams::nr_latency`] runnable
    /// threads: "for a core executing fewer than 8 threads the default time
    /// period is 48ms".
    pub sched_latency: Dur,
    /// Threads beyond which the period grows linearly: "6 ∗ number of
    /// threads ms" — the per-thread minimum slice.
    pub min_granularity: Dur,
    /// Runnable-thread count at which the period starts stretching.
    pub nr_latency: usize,
    /// Wakeup preemption granularity: "if the difference is not significant
    /// (less than 1ms), the current running thread is not preempted".
    pub wakeup_granularity: Dur,
    /// Sleeper placement bonus: a waking thread's vruntime is clamped to at
    /// least `min_vruntime − sleeper_bonus` (GENTLE_FAIR_SLEEPERS), so
    /// "threads that sleep a lot are scheduled first".
    pub sleeper_bonus: Dur,
    /// Base periodic balancing interval: "every 4ms every core tries to
    /// steal work from other cores".
    pub balance_interval: Dur,
    /// Interval multiplier per domain level above the lowest (balancing is
    /// less frequent between remote cores).
    pub interval_scaling: u64,
    /// Imbalance threshold inside a node (Linux `imbalance_pct` 117 ≈ small
    /// tolerance; we use 110 for intra-LLC domains).
    pub imbalance_pct_llc: u64,
    /// Imbalance threshold between NUMA nodes: "if the load difference
    /// between the nodes is small (less than 25% in practice), then no load
    /// balancing is performed".
    pub imbalance_pct_numa: u64,
    /// Maximum tasks migrated in one balancing pass: "stealing as many as
    /// 32 threads".
    pub max_migrate: usize,
    /// Tasks that ran within this span are considered cache-hot and resist
    /// migration (Linux `sysctl_sched_migration_cost`).
    pub migration_cost: Dur,
    /// Failed-balance attempts after which cache-hotness is overridden.
    pub cache_nice_tries: u32,
    /// Default cgroup shares (`NICE_0_LOAD`): every application group gets
    /// an equal share, which is what makes CFS fair *between applications*.
    pub group_shares: u64,
    /// Enable the per-application cgroup hierarchy (Linux ≥ 2.6.38
    /// behaviour described in §2.1). Disabling reverts to per-thread
    /// fairness, used by the ablation benches.
    pub cgroups: bool,
}

impl Default for CfsParams {
    fn default() -> Self {
        CfsParams {
            sched_latency: Dur::millis(48),
            min_granularity: Dur::millis(6),
            nr_latency: 8,
            wakeup_granularity: Dur::millis(1),
            sleeper_bonus: Dur::millis(24),
            balance_interval: Dur::millis(4),
            interval_scaling: 2,
            imbalance_pct_llc: 110,
            imbalance_pct_numa: 125,
            max_migrate: 32,
            migration_cost: Dur::micros(500),
            cache_nice_tries: 1,
            group_shares: 1024,
            cgroups: true,
        }
    }
}

impl CfsParams {
    /// The scheduling period for `nr` runnable threads (§2.1): 48 ms up to
    /// 8 threads, then 6 ms × nr.
    pub fn period(&self, nr: usize) -> Dur {
        if nr <= self.nr_latency {
            self.sched_latency
        } else {
            self.min_granularity.saturating_mul(nr as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_matches_paper() {
        let p = CfsParams::default();
        assert_eq!(p.period(1), Dur::millis(48));
        assert_eq!(p.period(8), Dur::millis(48));
        assert_eq!(p.period(9), Dur::millis(54));
        assert_eq!(p.period(100), Dur::millis(600));
    }
}
