//! The simulated operating-system kernel.
//!
//! This crate is the substrate the paper's methodology requires: a kernel
//! core that is *identical under both schedulers*, so that all observed
//! performance differences are attributable to the scheduling class alone
//! (the role played by the authors' modified Linux 4.9).
//!
//! See [`kernel::Kernel`] for the event loop and execution model,
//! [`behavior`] for the thread-program DSL workloads are written in,
//! [`sync`] for the blocking primitives, and [`simple::SimpleRR`] for a
//! minimal reference scheduling class.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod check;
pub mod config;
pub mod error;
pub mod fault;
pub mod guard;
pub mod kernel;
pub mod simple;
pub mod stats;
pub mod sync;
pub(crate) mod ticks;
pub mod trace;

pub use behavior::{
    cpu_hog, from_fn, spinner, Action, BarrierId, Behavior, Ctx, FnBehavior, MutexId, PoolId,
    QueueId, Script, SemId, ThreadSpec,
};
pub use config::{CheckMode, SimConfig};
pub use error::{BudgetKind, SimError};
pub use fault::FaultPlan;
pub use guard::{CancelToken, RunBudget};
pub use kernel::{AppId, AppSpec, Kernel};
pub use simple::SimpleRR;
pub use stats::{AppStats, Counters, CpuStats};
pub use sync::BlockedOn;
pub use trace::{TraceEvent, TraceSink};
