//! A deliberately simple round-robin scheduling class.
//!
//! This is *not* one of the paper's schedulers. It exists to (a) test the
//! kernel's event machinery independently of CFS/ULE, and (b) demonstrate
//! how to implement a custom scheduling class against the Table 1 trait
//! (see `examples/custom_scheduler.rs`).
//!
//! Policy: per-CPU FIFO runqueues, fixed 10 ms timeslices, least-loaded
//! placement, single-task idle stealing, no periodic balancing.

use std::collections::VecDeque;

use sched_api::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot,
    TaskTable, Tid, WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

/// Fixed round-robin timeslice.
const SLICE: Dur = Dur::millis(10);

#[derive(Debug)]
struct Rq {
    queue: VecDeque<Tid>,
    curr: Option<Tid>,
    slice_start: Time,
    /// `false` while the CPU is hotplugged out.
    online: bool,
}

impl Default for Rq {
    fn default() -> Rq {
        Rq {
            queue: VecDeque::new(),
            curr: None,
            slice_start: Time::ZERO,
            online: true,
        }
    }
}

/// Round-robin scheduler; see module docs.
pub struct SimpleRR {
    rqs: Vec<Rq>,
}

impl SimpleRR {
    /// One runqueue per CPU of `topo`.
    pub fn new(topo: &Topology) -> SimpleRR {
        SimpleRR {
            rqs: (0..topo.nr_cpus()).map(|_| Rq::default()).collect(),
        }
    }

    fn rq(&mut self, cpu: CpuId) -> &mut Rq {
        &mut self.rqs[cpu.index()]
    }
}

impl Scheduler for SimpleRR {
    fn name(&self) -> &'static str {
        "simple-rr"
    }

    fn select_task_rq(
        &mut self,
        tasks: &TaskTable,
        tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        _now: Time,
        stats: &mut SelectStats,
    ) -> CpuId {
        let task = tasks.get(tid);
        let mut best = None;
        for (i, rq) in self.rqs.iter().enumerate() {
            let cpu = CpuId(i as u32);
            if !rq.online || !task.allowed_on(cpu) {
                continue;
            }
            stats.cpus_scanned += 1;
            let load = rq.queue.len() + usize::from(rq.curr.is_some());
            match best {
                None => best = Some((cpu, load)),
                Some((_, b)) if load < b => best = Some((cpu, load)),
                _ => {}
            }
        }
        best.expect("task has no online CPU in its affinity mask").0
    }

    fn enqueue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: EnqueueKind,
        _now: Time,
    ) -> Preempt {
        self.rq(cpu).queue.push_back(tid);
        Preempt::No
    }

    fn dequeue_task(
        &mut self,
        _tasks: &mut TaskTable,
        cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        _now: Time,
    ) {
        let rq = self.rq(cpu);
        if rq.curr == Some(tid) {
            rq.curr = None;
        } else if let Some(i) = rq.queue.iter().position(|&t| t == tid) {
            rq.queue.remove(i);
        }
    }

    fn yield_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, _now: Time) {
        let rq = self.rq(cpu);
        if let Some(curr) = rq.curr.take() {
            rq.queue.push_back(curr);
        }
    }

    fn pick_next_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, now: Time) -> Option<Tid> {
        let rq = self.rq(cpu);
        debug_assert!(rq.curr.is_none(), "pick with a current task");
        let next = rq.queue.pop_front()?;
        rq.curr = Some(next);
        rq.slice_start = now;
        Some(next)
    }

    fn put_prev_task(&mut self, _tasks: &mut TaskTable, cpu: CpuId, tid: Tid, _now: Time) {
        let rq = self.rq(cpu);
        debug_assert_eq!(rq.curr, Some(tid));
        rq.curr = None;
        rq.queue.push_back(tid);
    }

    fn task_tick(&mut self, _tasks: &mut TaskTable, cpu: CpuId, curr: Tid, now: Time) -> Preempt {
        let rq = self.rq(cpu);
        debug_assert_eq!(rq.curr, Some(curr));
        if !rq.queue.is_empty() && now.saturating_since(rq.slice_start) >= SLICE {
            Preempt::Yes(PreemptCause::SliceExpired)
        } else {
            Preempt::No
        }
    }

    fn task_fork(&mut self, _tasks: &TaskTable, _child: Tid, _parent: Option<Tid>, _now: Time) {}

    fn task_dead(&mut self, _tasks: &TaskTable, _tid: Tid, _now: Time) {}

    fn balance_tick(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: Time,
        targets: &mut Vec<CpuId>,
    ) {
        // An idle CPU re-attempts a steal on every tick, so work unpinned
        // after the CPU went idle is still picked up.
        if self.nr_queued(cpu) == 0 {
            let mut stats = SelectStats::default();
            if self.idle_balance(tasks, cpu, now, &mut stats) {
                targets.push(cpu);
            }
        }
    }

    fn idle_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        _now: Time,
        stats: &mut SelectStats,
    ) -> bool {
        // Steal one waiting task from the most loaded CPU.
        let mut busiest: Option<(usize, usize)> = None;
        for (i, rq) in self.rqs.iter().enumerate() {
            stats.cpus_scanned += 1;
            if i == cpu.index() || !rq.online {
                continue;
            }
            if rq.queue.is_empty() {
                continue;
            }
            match busiest {
                None => busiest = Some((i, rq.queue.len())),
                Some((_, b)) if rq.queue.len() > b => busiest = Some((i, rq.queue.len())),
                _ => {}
            }
        }
        let Some((victim, _)) = busiest else {
            return false;
        };
        let pos = self.rqs[victim]
            .queue
            .iter()
            .position(|&t| tasks.get(t).allowed_on(cpu));
        let Some(pos) = pos else { return false };
        let tid = self.rqs[victim].queue.remove(pos).expect("present");
        tasks.get_mut(tid).cpu = cpu;
        self.rq(cpu).queue.push_back(tid);
        true
    }

    fn nr_queued(&self, cpu: CpuId) -> usize {
        let rq = &self.rqs[cpu.index()];
        rq.queue.len() + usize::from(rq.curr.is_some())
    }

    fn queued_tids_into(&self, cpu: CpuId, out: &mut Vec<Tid>) {
        out.extend(self.rqs[cpu.index()].queue.iter().copied());
    }

    fn snapshot(&self, _tasks: &TaskTable, _tid: Tid) -> TaskSnapshot {
        TaskSnapshot::default()
    }

    fn audit(&mut self, tasks: &TaskTable, cpu: CpuId, _now: Time) -> Result<(), String> {
        let rq = &self.rqs[cpu.index()];
        for (i, &t) in rq.queue.iter().enumerate() {
            if rq.curr == Some(t) {
                return Err(format!("{t} is both current and queued"));
            }
            if rq.queue.iter().skip(i + 1).any(|&u| u == t) {
                return Err(format!("{t} queued twice"));
            }
            if !tasks.contains(t) {
                return Err(format!("queued {t} does not exist"));
            }
        }
        Ok(())
    }

    fn cpu_offline(&mut self, cpu: CpuId) {
        self.rq(cpu).online = false;
    }

    fn cpu_online(&mut self, cpu: CpuId) {
        self.rq(cpu).online = true;
    }
}
