//! Structured simulation errors (SchedSan).
//!
//! Historically the kernel's internal consistency checks were bare
//! `expect`/`panic!` calls deep in the event loop: a scheduler bug aborted
//! the process with no context. [`SimError`] replaces them with a typed
//! error carrying the task, CPU and simulated time where the inconsistency
//! was detected. It propagates out of [`crate::Kernel::try_run_until`] /
//! [`crate::Kernel::try_run_until_apps_done`] so drivers can degrade
//! gracefully: write a crash bundle ([`crate::Kernel::crash_report`]),
//! exit nonzero, and leave a replay command instead of a backtrace.

use sched_api::Tid;
use simcore::Time;
use topology::CpuId;

/// Which [`crate::RunBudget`] ceiling a run exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// `max_events`: total events processed.
    Events,
    /// `max_sim_time`: simulated time reached (nanoseconds in the report).
    SimTime,
    /// `max_queue_depth`: live entries in the event queue.
    QueueDepth,
    /// `max_live_tasks`: simultaneously live tasks.
    LiveTasks,
}

impl std::fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "events",
            BudgetKind::SimTime => "simulated time (ns)",
            BudgetKind::QueueDepth => "event-queue depth",
            BudgetKind::LiveTasks => "live tasks",
        })
    }
}

/// A fatal inconsistency detected by the simulated kernel or by the
/// SchedSan invariant checker ([`crate::check`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task id referenced by the event loop has no runtime state
    /// (the per-task slot was never populated or was torn down early).
    TaskStateLost {
        /// The task whose state vanished.
        tid: Tid,
        /// When the lookup failed.
        at: Time,
    },
    /// The event queue claimed to have a next event but none could be
    /// popped (internal queue corruption).
    EventQueueCorrupt {
        /// Simulated time when the pop failed.
        at: Time,
    },
    /// A CPU that should have a current task has none.
    NoCurrent {
        /// The CPU missing its current task.
        cpu: CpuId,
        /// When the inconsistency was detected.
        at: Time,
    },
    /// The scheduler handed the kernel a task that is blocked or dead.
    PickedBlockedTask {
        /// The unrunnable task that was picked.
        tid: Tid,
        /// The CPU it was picked on.
        cpu: CpuId,
        /// When it was picked.
        at: Time,
    },
    /// A behaviour emitted more consecutive zero-time actions than
    /// [`crate::SimConfig::max_instant_actions`] allows (infinite loop).
    RunawayBehavior {
        /// The CPU interpreting the behaviour.
        cpu: CpuId,
        /// When the limit tripped.
        at: Time,
        /// The configured limit that was exceeded.
        actions: u32,
    },
    /// The scheduler placed a task on a CPU outside its affinity mask.
    AffinityViolated {
        /// The misplaced task.
        tid: Tid,
        /// The disallowed CPU it was placed on.
        cpu: CpuId,
        /// When the placement happened.
        at: Time,
    },
    /// A SchedSan invariant check failed (task conservation, runqueue
    /// counts, starvation bound, scheduler self-audit, ...).
    Invariant {
        /// When the check failed.
        at: Time,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A [`crate::RunBudget`] ceiling was exceeded (SchedGuard). The run is
    /// aborted but its state stays readable for partial-result salvage.
    BudgetExceeded {
        /// When the limit tripped.
        at: Time,
        /// Which ceiling tripped.
        kind: BudgetKind,
        /// The configured limit.
        limit: u64,
        /// The observed value that exceeded it.
        used: u64,
    },
    /// The no-progress watchdog detected a livelock (SchedGuard):
    /// simulated time stalled across many consecutive events, a pick loop
    /// that never installs a segment, or a task ping-ponging between two
    /// CPUs without executing.
    Livelock {
        /// When the watchdog tripped.
        at: Time,
        /// What kind of no-progress pattern was detected.
        detail: String,
        /// The most recent events of the stalled chain, oldest first
        /// (empty for detectors that trip inside a single event).
        window: Vec<String>,
    },
    /// The run was cancelled via a [`crate::CancelToken`] (explicitly or
    /// by a wall-clock deadline). Unlike budget and watchdog aborts, the
    /// abort point is *not* deterministic across replays.
    Cancelled {
        /// Simulated time at the cancellation check that observed it.
        at: Time,
    },
}

impl SimError {
    /// `true` for supervision aborts (budget, watchdog, cancellation):
    /// the kernel state is *consistent* — the run was stopped by policy,
    /// not corrupted — so callers should salvage partial results rather
    /// than write a crash bundle.
    pub fn is_supervision(&self) -> bool {
        matches!(
            self,
            SimError::BudgetExceeded { .. }
                | SimError::Livelock { .. }
                | SimError::Cancelled { .. }
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::TaskStateLost { tid, at } => {
                write!(f, "[{at}] runtime state of {tid} lost")
            }
            SimError::EventQueueCorrupt { at } => {
                write!(f, "[{at}] event queue corrupt: peeked event vanished")
            }
            SimError::NoCurrent { cpu, at } => {
                write!(f, "[{at}] {cpu} has no current task where one is required")
            }
            SimError::PickedBlockedTask { tid, cpu, at } => {
                write!(
                    f,
                    "[{at}] scheduler picked blocked/dead task {tid} on {cpu}"
                )
            }
            SimError::RunawayBehavior { cpu, at, actions } => {
                write!(
                    f,
                    "[{at}] behavior on {cpu} emitted more than {actions} zero-time actions"
                )
            }
            SimError::AffinityViolated { tid, cpu, at } => {
                write!(
                    f,
                    "[{at}] scheduler violated affinity of {tid}: placed on {cpu}"
                )
            }
            SimError::Invariant { at, detail } => {
                write!(f, "[{at}] invariant violated: {detail}")
            }
            SimError::BudgetExceeded {
                at,
                kind,
                limit,
                used,
            } => {
                write!(
                    f,
                    "[{at}] run budget exceeded: {kind} used {used} > limit {limit}"
                )
            }
            SimError::Livelock { at, detail, window } => {
                write!(f, "[{at}] livelock: {detail}")?;
                if !window.is_empty() {
                    write!(f, " (last {} events of the stalled chain)", window.len())?;
                }
                Ok(())
            }
            SimError::Cancelled { at } => {
                write!(f, "[{at}] run cancelled (timeout or explicit cancellation)")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SimError::PickedBlockedTask {
            tid: Tid(7),
            cpu: CpuId(3),
            at: Time(1_000),
        };
        let s = e.to_string();
        assert!(s.contains("tid7"), "{s}");
        assert!(s.contains("cpu3"), "{s}");
    }

    #[test]
    fn invariant_detail_shown() {
        let e = SimError::Invariant {
            at: Time::ZERO,
            detail: "task T1 queued twice".into(),
        };
        assert!(e.to_string().contains("task T1 queued twice"));
    }

    #[test]
    fn supervision_classification() {
        let budget = SimError::BudgetExceeded {
            at: Time::ZERO,
            kind: BudgetKind::Events,
            limit: 10,
            used: 11,
        };
        let livelock = SimError::Livelock {
            at: Time::ZERO,
            detail: "stalled".into(),
            window: vec!["[0s] resched cpu0".into()],
        };
        let cancelled = SimError::Cancelled { at: Time::ZERO };
        assert!(budget.is_supervision());
        assert!(livelock.is_supervision());
        assert!(cancelled.is_supervision());
        assert!(!SimError::EventQueueCorrupt { at: Time::ZERO }.is_supervision());
        assert!(budget.to_string().contains("used 11 > limit 10"));
        assert!(livelock.to_string().contains("last 1 events"));
    }
}
