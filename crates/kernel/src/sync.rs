//! Simulated synchronisation objects.
//!
//! Mutexes, counting semaphores, barriers (with MG-style spin-then-sleep
//! arrival) and bounded queues (modelling pipes and request queues). All
//! blocking is *voluntary sleep* from the scheduler's point of view — that is
//! what feeds ULE's interactivity metric and CFS's load decay.
//!
//! The objects are pure data structures: they never touch the scheduler.
//! Each operation returns an [`OpOutcome`] telling the kernel whether the
//! caller blocks/spins and which other tasks must be woken.

use std::collections::VecDeque;

use sched_api::Tid;
use simcore::Time;

use crate::behavior::{BarrierId, MutexId, PoolId, QueueId, SemId};

/// What a sleeping task is blocked on. Recorded by the kernel whenever a
/// task blocks so fault injection can spuriously wake it: the waiter record
/// is removed from the synchronisation object and the task *retries* the
/// incomplete operation at its next dispatch (re-blocking if it is still
/// unavailable). This is exactly the contract POSIX condition variables
/// give real schedulers, and it is what makes spurious-wakeup injection
/// sound: no lock acquisition or queue value is ever skipped or lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Timed sleep until `deadline`. The original timer event stays armed;
    /// a spuriously woken sleeper that retries before the deadline simply
    /// goes back to sleep.
    Timer {
        /// Absolute wake deadline.
        deadline: Time,
    },
    /// Waiting for mutex ownership.
    Mutex(MutexId),
    /// Waiting for a semaphore count.
    Sem(SemId),
    /// Waiting at a barrier. `generation` is the barrier generation at
    /// arrival: if it advanced, the barrier already released and the retry
    /// proceeds without re-arriving.
    Barrier {
        /// The barrier waited on.
        barrier: BarrierId,
        /// Barrier generation observed at arrival.
        generation: u64,
    },
    /// Blocked putting `value` into a full queue.
    QueuePut {
        /// The full queue.
        queue: QueueId,
        /// The value that still has to be delivered.
        value: u64,
    },
    /// Blocked getting from an empty queue.
    QueueGet(QueueId),
}

/// Result of a synchronisation operation, interpreted by the kernel.
#[derive(Debug, Default)]
pub struct OpOutcome {
    /// The calling task must block (voluntary sleep).
    pub block: bool,
    /// The calling task spins at a barrier (keeps burning CPU).
    pub spin: bool,
    /// Value delivered to the caller (queue get that succeeded).
    pub value: Option<u64>,
    /// Sleeping tasks to wake, with an optionally delivered value each.
    pub wake: Vec<(Tid, Option<u64>)>,
    /// Spinning tasks released by a barrier: they are *running or runnable*,
    /// not sleeping; the kernel lets them continue to their next action.
    pub release_spinners: Vec<Tid>,
}

impl OpOutcome {
    fn done() -> OpOutcome {
        OpOutcome::default()
    }
    fn blocked() -> OpOutcome {
        OpOutcome {
            block: true,
            ..Default::default()
        }
    }
}

#[derive(Debug, Default)]
struct Mutex {
    owner: Option<Tid>,
    waiters: VecDeque<Tid>,
}

#[derive(Debug, Default)]
struct Sem {
    count: u64,
    waiters: VecDeque<Tid>,
}

/// A cyclic barrier for `parties` tasks. Arrivals may sleep immediately or
/// spin first (the kernel enforces the spin timeout; the barrier just tracks
/// membership).
#[derive(Debug)]
struct Barrier {
    parties: usize,
    blocked: Vec<Tid>,
    spinning: Vec<Tid>,
    /// Incremented on every release; stale spin-timeout events compare this.
    generation: u64,
}

#[derive(Debug)]
struct Queue {
    capacity: usize,
    items: VecDeque<u64>,
    getters: VecDeque<Tid>,
    putters: VecDeque<(Tid, u64)>,
}

/// Table of all synchronisation objects of a simulation.
#[derive(Debug, Default)]
pub struct SyncTable {
    mutexes: Vec<Mutex>,
    sems: Vec<Sem>,
    barriers: Vec<Barrier>,
    queues: Vec<Queue>,
    pools: Vec<u64>,
}

impl SyncTable {
    /// Empty table.
    pub fn new() -> SyncTable {
        SyncTable::default()
    }

    /// Create a mutex.
    pub fn new_mutex(&mut self) -> MutexId {
        self.mutexes.push(Mutex::default());
        MutexId(self.mutexes.len() as u32 - 1)
    }

    /// Create a counting semaphore with an initial count.
    pub fn new_sem(&mut self, initial: u64) -> SemId {
        self.sems.push(Sem {
            count: initial,
            waiters: VecDeque::new(),
        });
        SemId(self.sems.len() as u32 - 1)
    }

    /// Create a cyclic barrier for `parties` tasks.
    pub fn new_barrier(&mut self, parties: usize) -> BarrierId {
        assert!(parties > 0);
        self.barriers.push(Barrier {
            parties,
            blocked: Vec::new(),
            spinning: Vec::new(),
            generation: 0,
        });
        BarrierId(self.barriers.len() as u32 - 1)
    }

    /// Create a bounded queue (capacity 0 is treated as 1).
    pub fn new_queue(&mut self, capacity: usize) -> QueueId {
        self.queues.push(Queue {
            capacity: capacity.max(1),
            items: VecDeque::new(),
            getters: VecDeque::new(),
            putters: VecDeque::new(),
        });
        QueueId(self.queues.len() as u32 - 1)
    }

    /// Create a work pool holding `items` units of work.
    pub fn new_pool(&mut self, items: u64) -> PoolId {
        self.pools.push(items);
        PoolId(self.pools.len() as u32 - 1)
    }

    /// Take one item from a pool; returns `1` on success, `0` if drained.
    pub fn pool_take(&mut self, p: PoolId) -> u64 {
        let left = &mut self.pools[p.0 as usize];
        if *left > 0 {
            *left -= 1;
            1
        } else {
            0
        }
    }

    /// Items remaining in a pool.
    pub fn pool_len(&self, p: PoolId) -> u64 {
        self.pools[p.0 as usize]
    }

    /// Lock `m` for `tid`; blocks if held.
    pub fn mutex_lock(&mut self, m: MutexId, tid: Tid) -> OpOutcome {
        let mx = &mut self.mutexes[m.0 as usize];
        match mx.owner {
            None => {
                mx.owner = Some(tid);
                OpOutcome::done()
            }
            Some(owner) => {
                assert_ne!(owner, tid, "recursive lock of mutex {m:?} by {tid}");
                mx.waiters.push_back(tid);
                OpOutcome::blocked()
            }
        }
    }

    /// Unlock `m`; ownership passes to the first waiter, which is woken.
    pub fn mutex_unlock(&mut self, m: MutexId, tid: Tid) -> OpOutcome {
        let mx = &mut self.mutexes[m.0 as usize];
        assert_eq!(
            mx.owner,
            Some(tid),
            "unlock of mutex {m:?} not held by {tid}"
        );
        match mx.waiters.pop_front() {
            None => {
                mx.owner = None;
                OpOutcome::done()
            }
            Some(next) => {
                mx.owner = Some(next);
                OpOutcome {
                    wake: vec![(next, None)],
                    ..Default::default()
                }
            }
        }
    }

    /// Semaphore wait: decrement or block.
    pub fn sem_wait(&mut self, s: SemId, tid: Tid) -> OpOutcome {
        let sem = &mut self.sems[s.0 as usize];
        if sem.count > 0 {
            sem.count -= 1;
            OpOutcome::done()
        } else {
            sem.waiters.push_back(tid);
            OpOutcome::blocked()
        }
    }

    /// Semaphore post: wake the first waiter or increment.
    pub fn sem_post(&mut self, s: SemId) -> OpOutcome {
        let sem = &mut self.sems[s.0 as usize];
        match sem.waiters.pop_front() {
            Some(next) => OpOutcome {
                wake: vec![(next, None)],
                ..Default::default()
            },
            None => {
                sem.count += 1;
                OpOutcome::done()
            }
        }
    }

    /// Arrive at a barrier. If this is the last party, everyone is released;
    /// otherwise the caller blocks (`spin == false`) or starts spinning.
    pub fn barrier_arrive(&mut self, b: BarrierId, tid: Tid, spin: bool) -> OpOutcome {
        let bar = &mut self.barriers[b.0 as usize];
        let arrived = bar.blocked.len() + bar.spinning.len() + 1;
        if arrived == bar.parties {
            bar.generation += 1;
            let wake = bar.blocked.drain(..).map(|t| (t, None)).collect();
            let release_spinners = std::mem::take(&mut bar.spinning);
            OpOutcome {
                wake,
                release_spinners,
                ..Default::default()
            }
        } else if spin {
            bar.spinning.push(tid);
            OpOutcome {
                spin: true,
                ..Default::default()
            }
        } else {
            bar.blocked.push(tid);
            OpOutcome::blocked()
        }
    }

    /// A spinner's budget expired: it converts into a blocked waiter.
    /// Returns `false` if the task is no longer spinning there (already
    /// released), in which case nothing changed.
    pub fn barrier_spin_timeout(&mut self, b: BarrierId, tid: Tid, generation: u64) -> bool {
        let bar = &mut self.barriers[b.0 as usize];
        if bar.generation != generation {
            return false;
        }
        match bar.spinning.iter().position(|&t| t == tid) {
            Some(i) => {
                bar.spinning.remove(i);
                bar.blocked.push(tid);
                true
            }
            None => false,
        }
    }

    /// Current generation of a barrier (for stale-timeout detection).
    pub fn barrier_generation(&self, b: BarrierId) -> u64 {
        self.barriers[b.0 as usize].generation
    }

    /// Push `v` into queue `q`. Delivers directly to a waiting getter if
    /// any; blocks the caller while the queue is full.
    pub fn queue_put(&mut self, q: QueueId, tid: Tid, v: u64) -> OpOutcome {
        let qu = &mut self.queues[q.0 as usize];
        if let Some(getter) = qu.getters.pop_front() {
            debug_assert!(qu.items.is_empty());
            return OpOutcome {
                wake: vec![(getter, Some(v))],
                ..Default::default()
            };
        }
        if qu.items.len() < qu.capacity {
            qu.items.push_back(v);
            OpOutcome::done()
        } else {
            qu.putters.push_back((tid, v));
            OpOutcome::blocked()
        }
    }

    /// Pop from queue `q`. Blocks while empty; unblocks the oldest waiting
    /// putter if the queue was full.
    pub fn queue_get(&mut self, q: QueueId, tid: Tid) -> OpOutcome {
        let qu = &mut self.queues[q.0 as usize];
        match qu.items.pop_front() {
            Some(v) => {
                let mut out = OpOutcome {
                    value: Some(v),
                    ..Default::default()
                };
                if let Some((putter, pv)) = qu.putters.pop_front() {
                    qu.items.push_back(pv);
                    out.wake.push((putter, None));
                }
                out
            }
            None => {
                qu.getters.push_back(tid);
                OpOutcome::blocked()
            }
        }
    }

    /// Remove `tid`'s waiter record from the object it is blocked on, in
    /// preparation for a spurious wakeup. Returns `false` if the task is no
    /// longer registered there (e.g. it was just granted mutex ownership in
    /// the same instant, or the barrier already released) — in that case
    /// the spurious wake must not be injected.
    pub fn remove_waiter(&mut self, op: BlockedOn, tid: Tid) -> bool {
        match op {
            BlockedOn::Timer { .. } => true,
            BlockedOn::Mutex(m) => {
                let mx = &mut self.mutexes[m.0 as usize];
                match mx.waiters.iter().position(|&t| t == tid) {
                    Some(i) => {
                        mx.waiters.remove(i);
                        true
                    }
                    None => false,
                }
            }
            BlockedOn::Sem(s) => {
                let sem = &mut self.sems[s.0 as usize];
                match sem.waiters.iter().position(|&t| t == tid) {
                    Some(i) => {
                        sem.waiters.remove(i);
                        true
                    }
                    None => false,
                }
            }
            BlockedOn::Barrier {
                barrier,
                generation,
            } => {
                let bar = &mut self.barriers[barrier.0 as usize];
                if bar.generation != generation {
                    return false;
                }
                match bar.blocked.iter().position(|&t| t == tid) {
                    Some(i) => {
                        bar.blocked.remove(i);
                        true
                    }
                    None => false,
                }
            }
            BlockedOn::QueuePut { queue, .. } => {
                let qu = &mut self.queues[queue.0 as usize];
                match qu.putters.iter().position(|&(t, _)| t == tid) {
                    Some(i) => {
                        qu.putters.remove(i);
                        true
                    }
                    None => false,
                }
            }
            BlockedOn::QueueGet(q) => {
                let qu = &mut self.queues[q.0 as usize];
                match qu.getters.iter().position(|&t| t == tid) {
                    Some(i) => {
                        qu.getters.remove(i);
                        true
                    }
                    None => false,
                }
            }
        }
    }

    /// Number of items currently buffered in `q`.
    pub fn queue_len(&self, q: QueueId) -> usize {
        self.queues[q.0 as usize].items.len()
    }

    /// Number of tasks blocked waiting to get from `q`.
    pub fn queue_waiting_getters(&self, q: QueueId) -> usize {
        self.queues[q.0 as usize].getters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_uncontended_and_handoff() {
        let mut s = SyncTable::new();
        let m = s.new_mutex();
        let a = Tid(1);
        let b = Tid(2);
        assert!(!s.mutex_lock(m, a).block);
        let r = s.mutex_lock(m, b);
        assert!(r.block);
        let r = s.mutex_unlock(m, a);
        assert_eq!(r.wake, vec![(b, None)]); // ownership handed to b
        let r = s.mutex_unlock(m, b);
        assert!(r.wake.is_empty());
        // now free again
        assert!(!s.mutex_lock(m, a).block);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn mutex_unlock_by_non_owner_panics() {
        let mut s = SyncTable::new();
        let m = s.new_mutex();
        s.mutex_lock(m, Tid(1));
        s.mutex_unlock(m, Tid(2));
    }

    #[test]
    fn sem_counts_and_wakes_fifo() {
        let mut s = SyncTable::new();
        let sem = s.new_sem(1);
        assert!(!s.sem_wait(sem, Tid(1)).block);
        assert!(s.sem_wait(sem, Tid(2)).block);
        assert!(s.sem_wait(sem, Tid(3)).block);
        assert_eq!(s.sem_post(sem).wake, vec![(Tid(2), None)]);
        assert_eq!(s.sem_post(sem).wake, vec![(Tid(3), None)]);
        assert!(s.sem_post(sem).wake.is_empty()); // count back to 1
        assert!(!s.sem_wait(sem, Tid(4)).block);
    }

    #[test]
    fn barrier_releases_all_on_last_arrival() {
        let mut s = SyncTable::new();
        let b = s.new_barrier(3);
        assert!(s.barrier_arrive(b, Tid(1), false).block);
        let r = s.barrier_arrive(b, Tid(2), true);
        assert!(r.spin && !r.block);
        let r = s.barrier_arrive(b, Tid(3), false);
        assert_eq!(r.wake, vec![(Tid(1), None)]);
        assert_eq!(r.release_spinners, vec![Tid(2)]);
        assert_eq!(s.barrier_generation(b), 1);
    }

    #[test]
    fn barrier_is_cyclic() {
        let mut s = SyncTable::new();
        let b = s.new_barrier(2);
        assert!(s.barrier_arrive(b, Tid(1), false).block);
        assert_eq!(s.barrier_arrive(b, Tid(2), false).wake.len(), 1);
        // second round works identically
        assert!(s.barrier_arrive(b, Tid(1), false).block);
        assert_eq!(s.barrier_arrive(b, Tid(2), false).wake.len(), 1);
        assert_eq!(s.barrier_generation(b), 2);
    }

    #[test]
    fn spin_timeout_converts_to_blocked() {
        let mut s = SyncTable::new();
        let b = s.new_barrier(2);
        let gen = s.barrier_generation(b);
        assert!(s.barrier_arrive(b, Tid(1), true).spin);
        assert!(s.barrier_spin_timeout(b, Tid(1), gen));
        // Now Tid(1) is a blocked waiter; last arrival wakes it.
        let r = s.barrier_arrive(b, Tid(2), false);
        assert_eq!(r.wake, vec![(Tid(1), None)]);
        assert!(r.release_spinners.is_empty());
    }

    #[test]
    fn stale_spin_timeout_is_rejected() {
        let mut s = SyncTable::new();
        let b = s.new_barrier(2);
        let gen = s.barrier_generation(b);
        assert!(s.barrier_arrive(b, Tid(1), true).spin);
        let r = s.barrier_arrive(b, Tid(2), false);
        assert_eq!(r.release_spinners, vec![Tid(1)]);
        // Timeout that raced with the release must be a no-op.
        assert!(!s.barrier_spin_timeout(b, Tid(1), gen));
    }

    #[test]
    fn remove_waiter_for_spurious_wakeups() {
        let mut s = SyncTable::new();
        let m = s.new_mutex();
        s.mutex_lock(m, Tid(1));
        s.mutex_lock(m, Tid(2));
        // Tid(2) is a waiter: removable once, then gone.
        assert!(s.remove_waiter(BlockedOn::Mutex(m), Tid(2)));
        assert!(!s.remove_waiter(BlockedOn::Mutex(m), Tid(2)));
        // Unlock now finds no waiter; the retry path must re-acquire.
        assert!(s.mutex_unlock(m, Tid(1)).wake.is_empty());
        assert!(!s.mutex_lock(m, Tid(2)).block);

        let b = s.new_barrier(2);
        let generation = s.barrier_generation(b);
        s.barrier_arrive(b, Tid(3), false);
        assert!(s.remove_waiter(
            BlockedOn::Barrier {
                barrier: b,
                generation
            },
            Tid(3)
        ));
        // Stale generation (barrier already released) is rejected.
        s.barrier_arrive(b, Tid(3), false);
        assert_eq!(s.barrier_arrive(b, Tid(4), false).wake.len(), 1);
        assert!(!s.remove_waiter(
            BlockedOn::Barrier {
                barrier: b,
                generation
            },
            Tid(3)
        ));

        let q = s.new_queue(1);
        s.queue_put(q, Tid(5), 7);
        s.queue_put(q, Tid(6), 8); // blocks: queue full
        assert!(s.remove_waiter(BlockedOn::QueuePut { queue: q, value: 8 }, Tid(6)));
        // The removed putter's value left with it: only item 7 remains.
        assert_eq!(s.queue_get(q, Tid(5)).value, Some(7));
        assert!(s.queue_get(q, Tid(5)).block);
        assert!(s.remove_waiter(BlockedOn::QueueGet(q), Tid(5)));

        // Timer waits have no object-side record.
        assert!(s.remove_waiter(BlockedOn::Timer { deadline: Time(9) }, Tid(1)));
    }

    #[test]
    fn queue_put_get_direct_handoff() {
        let mut s = SyncTable::new();
        let q = s.new_queue(2);
        // getter first: blocks, then receives directly from put
        assert!(s.queue_get(q, Tid(1)).block);
        let r = s.queue_put(q, Tid(2), 99);
        assert_eq!(r.wake, vec![(Tid(1), Some(99))]);
        assert_eq!(s.queue_len(q), 0);
    }

    #[test]
    fn queue_buffers_until_full_then_blocks_putters() {
        let mut s = SyncTable::new();
        let q = s.new_queue(2);
        assert!(!s.queue_put(q, Tid(1), 1).block);
        assert!(!s.queue_put(q, Tid(1), 2).block);
        assert!(s.queue_put(q, Tid(1), 3).block); // full
        let r = s.queue_get(q, Tid(2));
        assert_eq!(r.value, Some(1));
        // blocked putter's item entered the queue; putter woken
        assert_eq!(r.wake, vec![(Tid(1), None)]);
        assert_eq!(s.queue_len(q), 2);
        assert_eq!(s.queue_get(q, Tid(2)).value, Some(2));
        assert_eq!(s.queue_get(q, Tid(2)).value, Some(3));
        assert!(s.queue_get(q, Tid(2)).block);
        assert_eq!(s.queue_waiting_getters(q), 1);
    }
}
