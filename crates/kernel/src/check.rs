//! SchedSan: the runtime invariant checker.
//!
//! With [`crate::CheckMode::Strict`] the kernel runs the full catalog below
//! after *every* event, so the first event that corrupts scheduler state is
//! the one that reports it — not a mysterious crash a million events later.
//!
//! # Invariant catalog
//!
//! 1. **Task conservation** — every live task is in exactly one of the
//!    states {running on exactly one CPU, queued on exactly one runqueue,
//!    sleeping off all runqueues}; no task is lost or double-booked.
//! 2. **Runqueue-count consistency** — [`sched_api::Scheduler::nr_queued`]
//!    equals the tasks actually enumerated by
//!    [`sched_api::Scheduler::queued_tids_into`] plus the running task.
//! 3. **Affinity** — every queued or running task is on a CPU its hard
//!    affinity mask allows.
//! 4. **Hotplug** — an offline CPU runs nothing and queues nothing.
//! 5. **Bounded starvation** — no runnable task has waited longer than
//!    [`crate::SimConfig::starvation_limit`] for a CPU.
//! 6. **Scheduler self-audit** — class-specific invariants via
//!    [`sched_api::Scheduler::audit`] (CFS vruntime monotonicity, ULE
//!    priority-range validity, EEVDF lag conservation (Σ lag ≈ 0) and
//!    deadline ordering, scx policy/queue slot agreement, internal
//!    accounting).
//!
//! The checker allocates nothing in steady state: it reuses two scratch
//! buffers owned by the kernel. When checking is off ([`crate::CheckMode::Off`],
//! the default) the per-event cost is a single predicted-not-taken branch.

use sched_api::{TaskState, Tid};

use crate::error::SimError;
use crate::kernel::Kernel;

/// `seen` markers for the conservation check.
const SEEN_NONE: u8 = 0;
const SEEN_QUEUED: u8 = 1;
const SEEN_RUNNING: u8 = 2;

impl Kernel {
    /// Run the full invariant catalog. Called after every event in strict
    /// mode; also usable directly by tests.
    pub(crate) fn run_checks(&mut self) -> Result<(), SimError> {
        let mut tids = std::mem::take(&mut self.check_tids);
        let mut seen = std::mem::take(&mut self.check_seen);
        let res = self.check_all(&mut tids, &mut seen);
        self.check_tids = tids;
        self.check_seen = seen;
        res
    }

    fn invariant(&self, detail: String) -> SimError {
        SimError::Invariant {
            at: self.now,
            detail,
        }
    }

    fn check_all(&mut self, tids: &mut Vec<Tid>, seen: &mut Vec<u8>) -> Result<(), SimError> {
        seen.clear();
        seen.resize(self.tasks.slab_len(), SEEN_NONE);

        for i in 0..self.cpus.len() {
            let cpu = topology::CpuId(i as u32);
            let online = self.cpus[i].online;
            let current = self.cpus[i].current;

            if let Some(tid) = current {
                if !online {
                    return Err(self.invariant(format!("offline {cpu} is running {tid}")));
                }
                let t = self.tasks.get(tid);
                if t.state != TaskState::Running {
                    return Err(self
                        .invariant(format!("{cpu} current {tid} is {:?}, not Running", t.state)));
                }
                if t.cpu != cpu {
                    return Err(
                        self.invariant(format!("{cpu} current {tid} thinks it is on {}", t.cpu))
                    );
                }
                if !t.allowed_on(cpu) {
                    return Err(SimError::AffinityViolated {
                        tid,
                        cpu,
                        at: self.now,
                    });
                }
                if seen[tid.index()] != SEEN_NONE {
                    return Err(self.invariant(format!("{tid} is running on two CPUs")));
                }
                seen[tid.index()] = SEEN_RUNNING;
            }

            tids.clear();
            self.sched.queued_tids_into(cpu, tids);
            if !online && !tids.is_empty() {
                return Err(
                    self.invariant(format!("offline {cpu} still queues {} task(s)", tids.len()))
                );
            }
            for &tid in tids.iter() {
                let t = self.tasks.get(tid);
                if t.state != TaskState::Runnable {
                    return Err(self.invariant(format!(
                        "{cpu} queues {tid} in state {:?}, not Runnable",
                        t.state
                    )));
                }
                if !t.on_rq {
                    return Err(
                        self.invariant(format!("{cpu} queues {tid} but its on_rq flag is clear"))
                    );
                }
                if t.cpu != cpu {
                    return Err(self.invariant(format!(
                        "{cpu} queues {tid} but the task thinks it is on {}",
                        t.cpu
                    )));
                }
                if !t.allowed_on(cpu) {
                    return Err(SimError::AffinityViolated {
                        tid,
                        cpu,
                        at: self.now,
                    });
                }
                match seen[tid.index()] {
                    SEEN_NONE => seen[tid.index()] = SEEN_QUEUED,
                    SEEN_QUEUED => {
                        return Err(self.invariant(format!("{tid} is queued on two runqueues")))
                    }
                    _ => return Err(self.invariant(format!("{tid} is both running and queued"))),
                }
            }

            let expected = tids.len() + usize::from(current.is_some());
            let reported = self.sched.nr_queued(cpu);
            if reported != expected {
                return Err(self.invariant(format!(
                    "{cpu} nr_queued reports {reported} but {expected} task(s) are accounted \
                     ({} queued + {} running)",
                    tids.len(),
                    usize::from(current.is_some())
                )));
            }

            self.sched
                .audit(&self.tasks, cpu, self.now)
                .map_err(|detail| self.invariant(format!("{cpu} audit: {detail}")))?;
        }

        // Conservation sweep: every task's lifecycle state must agree with
        // where (and whether) the runqueues hold it.
        let limit = self.cfg.starvation_limit;
        for t in self.tasks.iter() {
            let s = seen[t.tid.index()];
            match t.state {
                TaskState::Running => {
                    if s != SEEN_RUNNING {
                        return Err(self.invariant(format!(
                            "{} is Running but no CPU is executing it",
                            t.tid
                        )));
                    }
                }
                TaskState::Runnable => {
                    if s != SEEN_QUEUED {
                        return Err(self.invariant(format!(
                            "{} is Runnable but sits in no runqueue (lost task)",
                            t.tid
                        )));
                    }
                    let waited_since = if t.last_ran > t.last_wakeup {
                        t.last_ran
                    } else {
                        t.last_wakeup
                    };
                    let wait = self.now.saturating_since(waited_since);
                    if wait > limit {
                        return Err(self.invariant(format!(
                            "{} runnable-but-unscheduled for {wait} (limit {limit})",
                            t.tid
                        )));
                    }
                }
                TaskState::New | TaskState::Sleeping | TaskState::Dead => {
                    if s != SEEN_NONE {
                        return Err(self.invariant(format!(
                            "{} is {:?} but still present in scheduler structures",
                            t.tid, t.state
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Render a human-readable crash bundle: the error, the run's identity
    /// (scheduler, seed, time), global counters, per-CPU scheduler state,
    /// the live task table, and the tail of the flight-recorder trace.
    /// Drivers write this next to a replay command when a
    /// [`SimError`] escapes the event loop.
    pub fn crash_report(&self, err: &SimError) -> String {
        use std::fmt::Write as _;
        let mut r = String::new();
        let _ = writeln!(r, "SchedSan crash report");
        let _ = writeln!(r, "=====================");
        let _ = writeln!(r, "error:     {err}");
        let _ = writeln!(r, "scheduler: {}", self.sched.name());
        let _ = writeln!(r, "seed:      {}", self.cfg.seed);
        let _ = writeln!(r, "sim time:  {}", self.now);
        let c = &self.counters;
        let _ = writeln!(
            r,
            "counters:  events={} ctx_switches={} preemptions={} wakeups={} migrations={} \
             spurious_wakes={} hotplug_events={} max_runnable_wait={}",
            c.events,
            c.ctx_switches,
            c.preemptions,
            c.wakeups,
            c.migrations,
            c.spurious_wakes,
            c.hotplug_events,
            c.max_runnable_wait
        );
        let _ = writeln!(r, "\nper-CPU state:");
        for i in 0..self.cpus.len() {
            let cpu = topology::CpuId(i as u32);
            let cs = &self.cpus[i];
            let queued = self.sched.queued_tids(cpu);
            let _ = writeln!(
                r,
                "  {cpu}: {} current={} nr_queued={} queued={:?}",
                if cs.online { "online" } else { "OFFLINE" },
                cs.current.map_or("-".into(), |t| t.to_string()),
                self.sched.nr_queued(cpu),
                queued
            );
        }
        let _ = writeln!(r, "\nlive tasks:");
        for t in self.tasks.iter() {
            if t.state == TaskState::Dead {
                continue;
            }
            let _ = writeln!(
                r,
                "  {} {:?} cpu={} last_cpu={} on_rq={} nice={} affinity={:?} name={}",
                t.tid, t.state, t.cpu, t.last_cpu, t.on_rq, t.nice, t.affinity, t.name
            );
        }
        if !self.trace.is_empty() {
            let _ = writeln!(
                r,
                "\ntrace tail ({} events, {} dropped):",
                self.trace.len(),
                self.trace.dropped()
            );
            for ev in self.trace.iter() {
                let _ = writeln!(r, "  {ev:?}");
            }
        }
        r
    }
}
