//! Kernel-level accounting: global counters, per-CPU utilisation, per-app
//! (cgroup) completion/throughput/latency records, and the determinism hash.

use sched_api::GroupId;
use serde::Serialize;
use simcore::{Dur, Fnv1a, Time};

/// Global scheduler-activity counters. Serializes as a structured snapshot
/// in every figure's JSON dump (SchedScope).
#[derive(Debug, Default, Clone, Serialize)]
pub struct Counters {
    /// Context switches (task → different task or idle → task).
    pub ctx_switches: u64,
    /// Involuntary preemptions (tick/wakeup-driven reschedules).
    pub preemptions: u64,
    /// Preemptions triggered by an enqueue (CFS wakeup-granularity check,
    /// ULE kernel-thread enqueue). ULE keeps this at zero for timeshare
    /// workloads — the paper's "full preemption is disabled" behaviour.
    pub wakeup_preemptions: u64,
    /// Preemptions triggered by `task_tick` (slice expiry / fairness).
    pub tick_preemptions: u64,
    /// Wakeups processed.
    pub wakeups: u64,
    /// Tasks moved between CPUs by the balancers.
    pub migrations: u64,
    /// Total CPUs examined by `select_task_rq` across all wakeups.
    pub placement_scans: u64,
    /// Tasks spawned.
    pub spawns: u64,
    /// Simulation events processed by the kernel's event loop. The unit of
    /// the `battle bench` throughput measurement (events per wall second).
    pub events: u64,
    /// Longest time any task spent runnable-but-not-running before being
    /// dispatched. The scheduling-latency/starvation headline number:
    /// regressions show up here even with SchedSan checking off (strict
    /// mode additionally *enforces* a bound on it, see
    /// [`crate::SimConfig::starvation_limit`]).
    pub max_runnable_wait: Dur,
    /// Spurious wakeups injected by the fault harness.
    pub spurious_wakes: u64,
    /// CPU offline/online transitions injected by the fault harness.
    pub hotplug_events: u64,
}

/// Per-CPU utilisation accounting.
#[derive(Debug, Default, Clone)]
pub struct CpuStats {
    /// Time spent executing application work.
    pub work: Dur,
    /// Time charged to scheduler/kernel overhead (context switches,
    /// placement scans, migration cache penalties).
    pub overhead: Dur,
}

impl CpuStats {
    /// Fraction of `total` spent on overhead (0 if nothing ran).
    pub fn overhead_fraction(&self, total: Dur) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            self.overhead.as_nanos() as f64 / total.as_nanos() as f64
        }
    }
}

/// Per-application record (one per [`GroupId`] above the root).
#[derive(Debug, Clone)]
pub struct AppStats {
    /// Application name from the [`crate::AppSpec`].
    pub name: String,
    /// The cgroup the kernel assigned.
    pub group: GroupId,
    /// When the app's initial threads were enqueued.
    pub started: Option<Time>,
    /// When the last of the app's threads exited.
    pub finished: Option<Time>,
    /// Live (not yet exited) threads.
    pub live: usize,
    /// Total threads ever spawned in the app.
    pub spawned: usize,
    /// Application-level operations completed (`Action::CountOps`).
    pub ops: u64,
    /// Latency samples recorded (`Action::RecordLatency`).
    pub lat_count: u64,
    /// Sum of latency samples.
    pub lat_sum: Dur,
    /// Largest latency sample.
    pub lat_max: Dur,
    /// Daemon apps never count toward "all apps done".
    pub daemon: bool,
}

impl AppStats {
    pub(crate) fn new(name: String, group: GroupId) -> AppStats {
        AppStats {
            name,
            group,
            started: None,
            finished: None,
            live: 0,
            spawned: 0,
            ops: 0,
            lat_count: 0,
            lat_sum: Dur::ZERO,
            lat_max: Dur::ZERO,
            daemon: false,
        }
    }

    /// Wall-clock completion time, if the app started and finished.
    pub fn elapsed(&self) -> Option<Dur> {
        match (self.started, self.finished) {
            (Some(s), Some(f)) => Some(f - s),
            _ => None,
        }
    }

    /// Mean recorded latency.
    pub fn avg_latency(&self) -> Option<Dur> {
        self.lat_sum.as_nanos().checked_div(self.lat_count).map(Dur)
    }

    /// Operations per second over the app's lifetime (or until `now` if
    /// still running).
    pub fn ops_per_sec(&self, now: Time) -> f64 {
        let Some(start) = self.started else {
            return 0.0;
        };
        let end = self.finished.unwrap_or(now);
        match (end - start).as_secs_f64() {
            secs if secs > 0.0 => self.ops as f64 / secs,
            _ => 0.0,
        }
    }
}

/// Rolling digest of the externally visible scheduling decisions; two runs
/// with identical seeds must produce identical digests.
#[derive(Debug)]
pub struct DecisionHash {
    hasher: Fnv1a,
    events: u64,
}

impl Default for DecisionHash {
    fn default() -> Self {
        DecisionHash {
            hasher: Fnv1a::new(),
            events: 0,
        }
    }
}

impl DecisionHash {
    /// Absorb one decision record.
    pub fn record(&mut self, kind: u8, now: Time, a: u32, b: u32) {
        self.hasher.write(&[kind]);
        self.hasher.write_u64(now.as_nanos());
        self.hasher.write_u32(a);
        self.hasher.write_u32(b);
        self.events += 1;
    }

    /// Current digest.
    pub fn digest(&self) -> u64 {
        self.hasher.finish()
    }

    /// Number of records absorbed.
    pub fn events(&self) -> u64 {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_stats_latency_math() {
        let mut a = AppStats::new("x".into(), GroupId(1));
        assert_eq!(a.avg_latency(), None);
        a.lat_count = 2;
        a.lat_sum = Dur::millis(30);
        a.lat_max = Dur::millis(20);
        assert_eq!(a.avg_latency(), Some(Dur::millis(15)));
    }

    #[test]
    fn ops_per_sec_uses_finish_or_now() {
        let mut a = AppStats::new("x".into(), GroupId(1));
        a.started = Some(Time::ZERO);
        a.ops = 100;
        assert!((a.ops_per_sec(Time(2_000_000_000)) - 50.0).abs() < 1e-9);
        a.finished = Some(Time(1_000_000_000));
        assert!((a.ops_per_sec(Time(9_000_000_000)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn decision_hash_sensitive_to_order() {
        let mut x = DecisionHash::default();
        x.record(1, Time(5), 1, 2);
        x.record(2, Time(6), 3, 4);
        let mut y = DecisionHash::default();
        y.record(2, Time(6), 3, 4);
        y.record(1, Time(5), 1, 2);
        assert_ne!(x.digest(), y.digest());
        assert_eq!(x.events(), 2);
    }

    #[test]
    fn overhead_fraction() {
        let c = CpuStats {
            work: Dur::millis(90),
            overhead: Dur::millis(10),
        };
        assert!((c.overhead_fraction(Dur::millis(100)) - 0.1).abs() < 1e-12);
        assert_eq!(c.overhead_fraction(Dur::ZERO), 0.0);
    }
}
