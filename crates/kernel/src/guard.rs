//! SchedGuard: run supervision — resource budgets, a no-progress watchdog,
//! and cooperative cancellation.
//!
//! The experiment pipeline runs many simulations in one process; a single
//! wedged or runaway sim must not take the whole campaign down. This module
//! holds the pieces the kernel enforces in its event loop:
//!
//! * [`RunBudget`] — hard ceilings on events processed, simulated time,
//!   event-queue depth and live tasks. Exceeding one aborts the run with
//!   [`crate::SimError::BudgetExceeded`]; everything observed so far
//!   (counters, histograms, decision digest) stays readable, so drivers can
//!   salvage a *partial* result instead of losing the run.
//! * a no-progress watchdog (configured on [`crate::SimConfig`]) — detects
//!   livelock: simulated time pinned at one instant across a long run of
//!   consecutive events, a pick loop that never installs a segment, or one
//!   task ping-ponging between two CPUs without executing. Aborts with
//!   [`crate::SimError::Livelock`] carrying the recent event window.
//! * [`CancelToken`] — a cooperative, wall-clock cancellation handle checked
//!   at event-batch boundaries (`battle run --timeout`,
//!   `battle fuzz --case-timeout`).
//!
//! Budget and watchdog aborts are **deterministic**: they trigger on event
//! counts and simulated time, which are bit-identical across replays, so a
//! salvaged partial digest is as reproducible as a complete one.
//! Cancellation is the one wall-clock (hence nondeterministic) mechanism.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use simcore::{Dur, Time};

/// Resource ceilings for one simulation run. All limits are optional; the
/// default (no limits) costs nothing on the event loop.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum number of events processed (ticks included).
    pub max_events: Option<u64>,
    /// Maximum simulated time reached.
    pub max_sim_time: Option<Dur>,
    /// Maximum live entries in the event queue (memory proxy).
    pub max_queue_depth: Option<usize>,
    /// Maximum simultaneously live (non-exited) tasks (fork-bomb guard).
    pub max_live_tasks: Option<usize>,
}

impl RunBudget {
    /// `true` if any limit is set (the kernel caches this so an absent
    /// budget adds nothing to the hot path).
    pub fn active(&self) -> bool {
        self.max_events.is_some()
            || self.max_sim_time.is_some()
            || self.max_queue_depth.is_some()
            || self.max_live_tasks.is_some()
    }

    /// Combine two budgets, keeping the tighter of each limit. Used when a
    /// scenario file sets a budget and the CLI supplies another.
    pub fn tighten(&self, other: &RunBudget) -> RunBudget {
        fn min2<T: Ord + Copy>(a: Option<T>, b: Option<T>) -> Option<T> {
            match (a, b) {
                (Some(x), Some(y)) => Some(x.min(y)),
                (x, None) => x,
                (None, y) => y,
            }
        }
        RunBudget {
            max_events: min2(self.max_events, other.max_events),
            max_sim_time: min2(self.max_sim_time, other.max_sim_time),
            max_queue_depth: min2(self.max_queue_depth, other.max_queue_depth),
            max_live_tasks: min2(self.max_live_tasks, other.max_live_tasks),
        }
    }
}

struct CancelInner {
    flag: AtomicBool,
    deadline: Option<Instant>,
}

/// Cooperative cancellation handle, checked by the kernel at event-batch
/// boundaries. Cloning shares the underlying flag, so one token can cover a
/// whole campaign (cancel once, every supervised run aborts with
/// [`crate::SimError::Cancelled`]).
///
/// Cancellation is wall-clock-driven and therefore *not* deterministic: the
/// partial state after a cancelled run depends on host speed. Use a
/// [`RunBudget`] when the abort point itself must replay bit-identically.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.cancelled())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally auto-cancels once `timeout` of wall-clock
    /// time has elapsed from now.
    pub fn with_deadline(timeout: Duration) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                flag: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Request cancellation. Every kernel sharing this token aborts its run
    /// at the next check point.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// `true` once cancelled explicitly or past the deadline.
    pub fn cancelled(&self) -> bool {
        if self.inner.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                // Latch, so later checks skip the clock read.
                self.inner.flag.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// Size of the recent-event window attached to a livelock report.
pub(crate) const WINDOW: usize = 32;

/// One compact record in the stalled-chain window: `(time, code, a, b)`.
/// Rendered to strings only when the watchdog actually trips, so recording
/// stays allocation-free on the (already stalled) hot path.
#[derive(Clone, Copy, Default)]
pub(crate) struct WatchRec {
    pub(crate) at: Time,
    pub(crate) code: u8,
    pub(crate) a: u32,
    pub(crate) b: u32,
}

impl WatchRec {
    fn render(&self) -> String {
        let WatchRec { at, code, a, b } = *self;
        match code {
            0 => format!("[{at}] tick cpu{a}"),
            1 => format!("[{at}] run-done cpu{a} gen={b}"),
            2 => format!("[{at}] timer-wake tid{a}"),
            3 => format!("[{at}] spin-timeout tid{a} barrier={b}"),
            4 => format!("[{at}] resched cpu{a}"),
            5 => format!("[{at}] continue tid{a}"),
            6 => format!("[{at}] control-op"),
            7 => format!("[{at}] fault-op"),
            _ => format!("[{at}] event code={code} a={a} b={b}"),
        }
    }
}

/// Watchdog state owned by the kernel. All fields are touched only while a
/// same-time event chain is in flight (or on migrations, for the ping-pong
/// detector), keeping the normal hot path at one compare per event.
pub(crate) struct Watch {
    /// Abort after this many consecutive events at one simulated instant
    /// (0 disables the stall watchdog and the pick-loop guard).
    pub(crate) stall_limit: u32,
    /// Abort after this many back-to-back migrations of one task between
    /// the same two CPUs with no execution progress (0 disables).
    pub(crate) pingpong_limit: u32,
    pub(crate) last_at: Time,
    pub(crate) stall: u32,
    ring: [WatchRec; WINDOW],
    ring_next: usize,
    ring_full: bool,
    pp_task: u32,
    pp_lo: u32,
    pp_hi: u32,
    pp_exec: Dur,
    pp_count: u32,
}

impl Watch {
    pub(crate) fn new(stall_limit: u32, pingpong_limit: u32) -> Watch {
        Watch {
            stall_limit,
            pingpong_limit,
            last_at: Time::ZERO,
            stall: 0,
            ring: [WatchRec::default(); WINDOW],
            ring_next: 0,
            ring_full: false,
            pp_task: u32::MAX,
            pp_lo: 0,
            pp_hi: 0,
            pp_exec: Dur::ZERO,
            pp_count: 0,
        }
    }

    /// Note one processed event at `at`. Returns `true` when the stall
    /// limit tripped (caller raises [`crate::SimError::Livelock`]).
    #[inline]
    pub(crate) fn note_event(&mut self, at: Time) -> bool {
        if at == self.last_at {
            self.stall += 1;
            self.stall >= self.stall_limit
        } else {
            self.last_at = at;
            self.stall = 0;
            self.ring_next = 0;
            self.ring_full = false;
            false
        }
    }

    /// `true` while a same-time chain is active, i.e. the window should
    /// record event descriptors.
    #[inline]
    pub(crate) fn recording(&self) -> bool {
        self.stall > 0
    }

    pub(crate) fn record(&mut self, rec: WatchRec) {
        self.ring[self.ring_next] = rec;
        self.ring_next = (self.ring_next + 1) % WINDOW;
        if self.ring_next == 0 {
            self.ring_full = true;
        }
    }

    /// Note a migration of `task` from `from` to `to` at `sum_exec` total
    /// execution. Returns `true` when the ping-pong limit tripped.
    pub(crate) fn note_migration(&mut self, task: u32, from: u32, to: u32, sum_exec: Dur) -> bool {
        let (lo, hi) = if from < to { (from, to) } else { (to, from) };
        if self.pp_task == task && self.pp_lo == lo && self.pp_hi == hi && self.pp_exec == sum_exec
        {
            self.pp_count += 1;
            self.pp_count >= self.pingpong_limit
        } else {
            self.pp_task = task;
            self.pp_lo = lo;
            self.pp_hi = hi;
            self.pp_exec = sum_exec;
            self.pp_count = 1;
            false
        }
    }

    /// The recent-event window, oldest first, rendered for a livelock
    /// report.
    pub(crate) fn window(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.ring_full {
            for i in 0..WINDOW {
                out.push(self.ring[(self.ring_next + i) % WINDOW].render());
            }
        } else {
            for rec in &self.ring[..self.ring_next] {
                out.push(rec.render());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_inert() {
        assert!(!RunBudget::default().active());
    }

    #[test]
    fn tighten_keeps_minima() {
        let a = RunBudget {
            max_events: Some(100),
            max_sim_time: None,
            max_queue_depth: Some(10),
            max_live_tasks: None,
        };
        let b = RunBudget {
            max_events: Some(50),
            max_sim_time: Some(Dur::secs(1)),
            max_queue_depth: None,
            max_live_tasks: Some(4),
        };
        let t = a.tighten(&b);
        assert_eq!(t.max_events, Some(50));
        assert_eq!(t.max_sim_time, Some(Dur::secs(1)));
        assert_eq!(t.max_queue_depth, Some(10));
        assert_eq!(t.max_live_tasks, Some(4));
    }

    #[test]
    fn cancel_token_flag_and_clone_share() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.cancelled());
        t.cancel();
        assert!(u.cancelled());
    }

    #[test]
    fn cancel_token_deadline_in_past_cancels() {
        let t = CancelToken::with_deadline(Duration::from_secs(0));
        assert!(t.cancelled());
    }

    #[test]
    fn watch_stall_counts_and_resets() {
        let mut w = Watch::new(3, 0);
        let t0 = Time(5);
        assert!(!w.note_event(t0)); // advances last_at
        assert!(!w.note_event(t0)); // stall=1
        assert!(!w.note_event(t0)); // stall=2
        assert!(w.note_event(t0)); // stall=3 → trip
        assert!(!w.note_event(Time(6))); // progress resets
        assert_eq!(w.stall, 0);
    }

    #[test]
    fn watch_window_orders_oldest_first() {
        let mut w = Watch::new(1000, 0);
        w.note_event(Time(1));
        w.note_event(Time(1));
        for i in 0..(WINDOW as u32 + 4) {
            w.record(WatchRec {
                at: Time(1),
                code: 4,
                a: i,
                b: 0,
            });
        }
        let win = w.window();
        assert_eq!(win.len(), WINDOW);
        assert!(win[0].contains("cpu4"), "{}", win[0]);
        assert!(win[WINDOW - 1].contains(&format!("cpu{}", WINDOW as u32 + 3)));
    }

    #[test]
    fn pingpong_requires_same_pair_and_no_progress() {
        let mut w = Watch::new(0, 3);
        assert!(!w.note_migration(7, 0, 1, Dur::ZERO));
        assert!(!w.note_migration(7, 1, 0, Dur::ZERO)); // same pair, either way
        assert!(w.note_migration(7, 0, 1, Dur::ZERO));
        // Progress resets the chain.
        assert!(!w.note_migration(7, 0, 1, Dur::nanos(1)));
    }
}
