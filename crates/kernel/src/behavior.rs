//! The thread-behaviour DSL.
//!
//! Every simulated thread executes a [`Behavior`]: a state machine that,
//! whenever the kernel asks, yields the thread's next [`Action`] — burn CPU,
//! sleep, block on a synchronisation object, spawn a thread, record a
//! metric, or exit. Workload models (the `workloads` crate) are built
//! entirely out of behaviours; the kernel interprets them and the scheduler
//! under test reacts to the resulting run/sleep/wake pattern.
//!
//! Zero-duration actions (locking a free mutex, recording a metric, ...)
//! consume no simulated time; only [`Action::Run`] and kernel-charged
//! overheads advance a thread's CPU consumption.

use sched_api::Tid;
use simcore::{Dur, SimRng, Time};
use topology::CpuId;

/// Handle to a simulated mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MutexId(pub u32);
/// Handle to a simulated barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BarrierId(pub u32);
/// Handle to a simulated counting semaphore ("event").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SemId(pub u32);
/// Handle to a simulated bounded queue (pipes, request queues).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(pub u32);
/// Handle to a shared work pool (a global countdown of work items).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolId(pub u32);

/// What a thread wants to do next.
pub enum Action {
    /// Execute on the CPU for the given amount of work. The scheduler may
    /// slice this across many dispatches; the kernel tracks the remainder.
    Run(Dur),
    /// Voluntarily sleep for the given duration (timer sleep). Counts as
    /// voluntary sleep for ULE's interactivity metric.
    Sleep(Dur),
    /// Acquire a mutex; blocks (voluntary sleep) if contended.
    MutexLock(MutexId),
    /// Release a mutex; wakes the first waiter, if any.
    MutexUnlock(MutexId),
    /// Wait on a barrier; blocks until the last party arrives.
    BarrierWait(BarrierId),
    /// Wait on a barrier, spinning (burning CPU) for up to the given
    /// duration before giving up and sleeping. Models the NAS MG barrier:
    /// "waits on a spin-barrier for 100 ms and then sleeps" (§6.3).
    BarrierWaitSpin(BarrierId, Dur),
    /// Decrement a semaphore; blocks if zero.
    SemWait(SemId),
    /// Increment a semaphore; wakes the first waiter, if any.
    SemPost(SemId),
    /// Push a value into a queue; blocks while full.
    QueuePut(QueueId, u64),
    /// Pop a value from a queue; blocks while empty. The popped value is
    /// delivered through [`Ctx::value`] on the next `next()` call.
    QueueGet(QueueId),
    /// Atomically take one work item from a shared pool (never blocks).
    /// Delivers `1` through [`Ctx::value`] if an item was taken, `0` if the
    /// pool is exhausted. Models a fixed global workload drained by many
    /// workers (e.g. sysbench's transaction budget).
    PoolTake(PoolId),
    /// Create a new thread in the same application.
    Spawn(ThreadSpec),
    /// Give up the CPU voluntarily without sleeping (`sched_yield`).
    Yield,
    /// Count `n` completed application-level operations (transactions,
    /// requests); feeds the throughput metrics.
    CountOps(u64),
    /// Record one application-level latency sample (e.g. a request's
    /// response time, computed by the behaviour from [`Ctx::now`]).
    RecordLatency(Dur),
    /// Terminate the thread.
    Exit,
}

impl std::fmt::Debug for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Run(d) => write!(f, "Run({d})"),
            Action::Sleep(d) => write!(f, "Sleep({d})"),
            Action::MutexLock(m) => write!(f, "MutexLock({})", m.0),
            Action::MutexUnlock(m) => write!(f, "MutexUnlock({})", m.0),
            Action::BarrierWait(b) => write!(f, "BarrierWait({})", b.0),
            Action::BarrierWaitSpin(b, d) => write!(f, "BarrierWaitSpin({}, {d})", b.0),
            Action::SemWait(s) => write!(f, "SemWait({})", s.0),
            Action::SemPost(s) => write!(f, "SemPost({})", s.0),
            Action::QueuePut(q, v) => write!(f, "QueuePut({}, {v})", q.0),
            Action::QueueGet(q) => write!(f, "QueueGet({})", q.0),
            Action::PoolTake(p) => write!(f, "PoolTake({})", p.0),
            Action::Spawn(s) => write!(f, "Spawn({:?})", s.name),
            Action::Yield => write!(f, "Yield"),
            Action::CountOps(n) => write!(f, "CountOps({n})"),
            Action::RecordLatency(d) => write!(f, "RecordLatency({d})"),
            Action::Exit => write!(f, "Exit"),
        }
    }
}

/// Specification of a thread to spawn.
pub struct ThreadSpec {
    /// Debug name.
    pub name: String,
    /// Nice value.
    pub nice: i32,
    /// Hard CPU affinity, if any.
    pub affinity: Option<Vec<CpuId>>,
    /// Marks kernel threads (the only ones that may preempt under ULE).
    pub kernel_thread: bool,
    /// Synthetic fork history `(runtime, sleeptime)` for threads whose
    /// parent is outside the simulation (e.g. sysbench's master is forked
    /// from `bash`, which mostly sleeps — §5.2).
    pub inherit_history: Option<(Dur, Dur)>,
    /// Detached threads (runtime helpers like a JVM's GC threads) do not
    /// count toward application completion.
    pub detached: bool,
    /// The behaviour the thread will execute.
    pub behavior: Box<dyn Behavior>,
}

impl ThreadSpec {
    /// A plain nice-0 thread with the given behaviour.
    pub fn new(name: impl Into<String>, behavior: Box<dyn Behavior>) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            nice: 0,
            affinity: None,
            kernel_thread: false,
            inherit_history: None,
            detached: false,
            behavior,
        }
    }

    /// Mark as detached (does not block app completion).
    pub fn detached(mut self) -> ThreadSpec {
        self.detached = true;
        self
    }

    /// Set the nice value.
    pub fn nice(mut self, nice: i32) -> ThreadSpec {
        self.nice = nice;
        self
    }

    /// Pin to a set of CPUs.
    pub fn pinned(mut self, cpus: Vec<CpuId>) -> ThreadSpec {
        self.affinity = Some(cpus);
        self
    }

    /// Give the thread a synthetic parent history (run, sleep).
    pub fn with_history(mut self, run: Dur, sleep: Dur) -> ThreadSpec {
        self.inherit_history = Some((run, sleep));
        self
    }
}

/// Context handed to a behaviour on every `next()` call.
pub struct Ctx<'a> {
    /// Current simulated time.
    pub now: Time,
    /// The thread's id.
    pub tid: Tid,
    /// The CPU the thread is currently on.
    pub cpu: CpuId,
    /// Value delivered by the last completed [`Action::QueueGet`], if any.
    pub value: Option<u64>,
    /// Per-thread deterministic RNG stream.
    pub rng: &'a mut SimRng,
}

/// A thread's program. Implementations are state machines: `next()` is
/// called once at start and again after each completed action.
pub trait Behavior: Send {
    /// Produce the next action. Returning [`Action::Exit`] ends the thread.
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action;
}

/// A behaviour defined by a fixed script of steps, each produced by a
/// closure (so scripts can embed randomness/latency computation).
pub struct Script {
    steps: std::collections::VecDeque<Action>,
}

impl Script {
    /// Behaviour that performs the given actions in order, then exits.
    pub fn new(steps: Vec<Action>) -> Script {
        Script {
            steps: steps.into(),
        }
    }
}

impl Behavior for Script {
    fn next(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        self.steps.pop_front().unwrap_or(Action::Exit)
    }
}

/// A behaviour driven by a closure; the closure's state is its environment.
pub struct FnBehavior<F>(pub F);

impl<F> Behavior for FnBehavior<F>
where
    F: FnMut(&mut Ctx<'_>) -> Action + Send,
{
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        (self.0)(ctx)
    }
}

/// Convenience: box a closure as a behaviour.
pub fn from_fn<F>(f: F) -> Box<dyn Behavior>
where
    F: FnMut(&mut Ctx<'_>) -> Action + Send + 'static,
{
    Box::new(FnBehavior(f))
}

/// A pure CPU burner: runs `total` work in `chunk`-sized segments, then
/// exits. The chunking only bounds event horizon; the scheduler still slices
/// each chunk via preemption.
pub fn cpu_hog(total: Dur, chunk: Dur) -> Box<dyn Behavior> {
    let mut left = total;
    from_fn(move |_ctx| {
        if left.is_zero() {
            return Action::Exit;
        }
        let seg = left.min(chunk);
        left -= seg;
        Action::Run(seg)
    })
}

/// An infinite spinner (never exits, never sleeps) — the Figure 6 workload.
pub fn spinner(chunk: Dur) -> Box<dyn Behavior> {
    from_fn(move |_ctx| Action::Run(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_ctx_parts() -> (Time, Tid, CpuId, SimRng) {
        (Time::ZERO, Tid(0), CpuId(0), SimRng::new(1))
    }

    #[test]
    fn script_plays_in_order_then_exits() {
        let (now, tid, cpu, mut rng) = dummy_ctx_parts();
        let mut ctx = Ctx {
            now,
            tid,
            cpu,
            value: None,
            rng: &mut rng,
        };
        let mut s = Script::new(vec![Action::Run(Dur::millis(1)), Action::Yield]);
        assert!(matches!(s.next(&mut ctx), Action::Run(_)));
        assert!(matches!(s.next(&mut ctx), Action::Yield));
        assert!(matches!(s.next(&mut ctx), Action::Exit));
        assert!(matches!(s.next(&mut ctx), Action::Exit));
    }

    #[test]
    fn cpu_hog_emits_chunks_then_exits() {
        let (now, tid, cpu, mut rng) = dummy_ctx_parts();
        let mut ctx = Ctx {
            now,
            tid,
            cpu,
            value: None,
            rng: &mut rng,
        };
        let mut hog = cpu_hog(Dur::millis(5), Dur::millis(2));
        let mut total = Dur::ZERO;
        loop {
            match hog.next(&mut ctx) {
                Action::Run(d) => {
                    assert!(d <= Dur::millis(2));
                    total += d;
                }
                Action::Exit => break,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(total, Dur::millis(5));
    }

    #[test]
    fn spinner_never_exits() {
        let (now, tid, cpu, mut rng) = dummy_ctx_parts();
        let mut ctx = Ctx {
            now,
            tid,
            cpu,
            value: None,
            rng: &mut rng,
        };
        let mut s = spinner(Dur::millis(10));
        for _ in 0..100 {
            assert!(matches!(s.next(&mut ctx), Action::Run(_)));
        }
    }

    #[test]
    fn thread_spec_builders() {
        let spec = ThreadSpec::new("t", cpu_hog(Dur::millis(1), Dur::millis(1)))
            .nice(5)
            .pinned(vec![CpuId(0)])
            .with_history(Dur::millis(10), Dur::secs(2));
        assert_eq!(spec.nice, 5);
        assert_eq!(spec.affinity, Some(vec![CpuId(0)]));
        assert_eq!(spec.inherit_history, Some((Dur::millis(10), Dur::secs(2))));
    }
}
