//! Simulation configuration.

use simcore::Dur;

use crate::fault::FaultPlan;
use crate::guard::RunBudget;

/// How much runtime invariant checking (SchedSan) to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// No checking; zero overhead on the event loop.
    #[default]
    Off,
    /// Run the full invariant catalog after every event: task
    /// conservation, runqueue-count consistency, affinity, bounded
    /// starvation, and the scheduler's own [`sched_api::Scheduler::audit`].
    Strict,
}

/// Tunable costs and knobs of the simulated machine/kernel.
///
/// Defaults are chosen to be in the right order of magnitude for the paper's
/// 2.1 GHz Opteron; the *relative* effects the paper reports (preemption
/// frequency, placement-scan overhead, migration cache penalties) are what
/// matters, not the absolute values.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed; a given seed reproduces a bit-identical run.
    pub seed: u64,
    /// Scheduler tick period (Linux HZ=1000 → 1 ms).
    pub tick: Dur,
    /// Direct cost of a context switch, charged to the incoming task's CPU.
    pub ctx_switch_cost: Dur,
    /// Cache-refill penalty charged when a task runs on a different CPU than
    /// last time, per unit of topology distance (1 = same LLC, 3 = other
    /// NUMA node).
    pub migration_cost_per_distance: Dur,
    /// Placement-scan cost charged to the waking CPU per CPU examined by
    /// `select_task_rq` (reproduces ULE's 13 % sysbench overhead, §6.3).
    pub select_scan_cost_per_cpu: Dur,
    /// Cache-refill work added to a thread's current run segment when it is
    /// involuntarily preempted (its working set is partially evicted while
    /// off-CPU). This is the cost that makes CFS's aggressive wakeup
    /// preemption visible in the apache/ab workload (§5.3).
    pub preempt_penalty: Dur,
    /// Capacity of the flight-recorder trace buffer (0 disables tracing).
    pub trace_capacity: usize,
    /// Safety valve: maximum zero-time actions a behavior may emit in a row.
    pub max_instant_actions: u32,
    /// Runtime invariant checking (SchedSan). [`CheckMode::Off`] by
    /// default; the kernel caches the flag so the disabled path costs
    /// nothing on the event loop.
    pub check: CheckMode,
    /// Bounded-starvation limit enforced in strict mode: no runnable task
    /// may sit unscheduled for longer than this. Generous by default
    /// because ULE legitimately starves batch tasks for long stretches
    /// (§5.1 of the paper: a nice-0 hog can wait seconds behind
    /// interactive threads).
    pub starvation_limit: Dur,
    /// Fault injection plan (spurious wakeups, tick jitter, hotplug).
    /// Inert by default.
    pub faults: FaultPlan,
    /// Event-queue backend override. `None` (default) resolves through
    /// [`simcore::default_backend`] (the `BATTLE_EVENT_QUEUE` env var or
    /// the timer wheel); set explicitly for differential testing.
    pub event_queue: Option<simcore::Backend>,
    /// SchedGuard resource budget. Inert by default; a run that exceeds a
    /// set ceiling aborts with [`crate::SimError::BudgetExceeded`], leaving
    /// its state readable for partial-result salvage.
    pub budget: RunBudget,
    /// SchedGuard no-progress watchdog: abort with
    /// [`crate::SimError::Livelock`] after this many consecutive events at
    /// one simulated instant (0 disables). The default is two orders of
    /// magnitude above the largest legitimate same-time burst (a
    /// thundering-herd wakeup of a few hundred threads), so real workloads
    /// never trip it while a wedged sim dies in microseconds of wall time.
    pub watchdog_stall_events: u32,
    /// SchedGuard ping-pong watchdog: abort after this many back-to-back
    /// migrations of one task between the same two CPUs with zero
    /// execution progress (0 disables).
    pub watchdog_pingpong: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            tick: Dur::millis(1),
            ctx_switch_cost: Dur::micros(2),
            migration_cost_per_distance: Dur::micros(30),
            select_scan_cost_per_cpu: Dur::nanos(400),
            preempt_penalty: Dur::micros(40),
            trace_capacity: 0,
            max_instant_actions: 1_000_000,
            check: CheckMode::Off,
            starvation_limit: Dur::secs(10),
            faults: FaultPlan::default(),
            event_queue: None,
            budget: RunBudget::default(),
            watchdog_stall_events: 100_000,
            watchdog_pingpong: 10_000,
        }
    }
}

impl SimConfig {
    /// Config with a specific seed, other knobs default.
    pub fn with_seed(seed: u64) -> Self {
        SimConfig {
            seed,
            ..Default::default()
        }
    }

    /// A frictionless machine: zero context-switch, migration and scan
    /// costs. Useful in unit tests that check pure scheduling logic.
    pub fn frictionless(seed: u64) -> Self {
        SimConfig {
            seed,
            ctx_switch_cost: Dur::ZERO,
            migration_cost_per_distance: Dur::ZERO,
            select_scan_cost_per_cpu: Dur::ZERO,
            preempt_penalty: Dur::ZERO,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = SimConfig::default();
        assert_eq!(c.tick, Dur::millis(1));
        assert!(c.ctx_switch_cost < c.tick);
    }

    #[test]
    fn schedsan_is_off_by_default() {
        let c = SimConfig::default();
        assert_eq!(c.check, CheckMode::Off);
        assert!(!c.faults.active());
        assert!(c.starvation_limit >= Dur::secs(1));
    }

    #[test]
    fn budget_inert_but_watchdog_armed_by_default() {
        let c = SimConfig::default();
        assert!(!c.budget.active());
        assert!(c.watchdog_stall_events > 10_000);
        assert!(c.watchdog_pingpong > 0);
    }

    #[test]
    fn frictionless_zeroes_costs() {
        let c = SimConfig::frictionless(7);
        assert_eq!(c.seed, 7);
        assert!(c.ctx_switch_cost.is_zero());
        assert!(c.migration_cost_per_distance.is_zero());
        assert!(c.select_scan_cost_per_cpu.is_zero());
    }
}
