//! Fault injection (SchedSan).
//!
//! Perturbs a simulation with the misfortunes a real kernel lives with —
//! spurious wakeups, timer-tick jitter and missed ticks, and CPU
//! offline/online (hotplug) — all driven by a dedicated stream of the
//! seeded RNG so that a faulty run is exactly as reproducible as a clean
//! one. Schedulers are required to survive every fault: a spuriously woken
//! task retries its blocking operation (see [`crate::sync::BlockedOn`]),
//! and a hotplugged-out CPU must be drained, its tasks re-placed on the
//! surviving CPUs.
//!
//! The [`FaultPlan`] lives in [`crate::SimConfig::faults`]; everything is
//! disabled by default, and the checks in [`crate::check`] (strict mode)
//! verify that no fault ever corrupts scheduler state.

use sched_api::{DequeueKind, EnqueueKind, SelectStats, TaskState, Tid, WakeKind};
use simcore::Dur;
use topology::CpuId;

use crate::error::SimError;
use crate::kernel::{Cont, Event, Kernel};
use crate::sync::BlockedOn;
use crate::trace::TraceEvent;

/// What faults to inject, and how often. Default: nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Spuriously wake one random sleeping task with this period.
    pub spurious_wake_period: Option<Dur>,
    /// Add up to this much uniform random delay to every tick re-arm.
    pub tick_jitter: Dur,
    /// Percentage (0–100) of ticks that are skipped entirely (the next
    /// tick fires one full period late).
    pub missed_tick_pct: u8,
    /// Take one random eligible CPU offline with this period. CPU 0, CPUs
    /// named in any live task's affinity mask, and the last online CPU are
    /// never offlined.
    pub hotplug_period: Option<Dur>,
    /// How long an offlined CPU stays down before coming back.
    pub hotplug_down: Dur,
}

impl FaultPlan {
    /// `true` if any fault kind is enabled.
    pub fn active(&self) -> bool {
        self.spurious_wake_period.is_some()
            || self.hotplug_period.is_some()
            || !self.tick_jitter.is_zero()
            || self.missed_tick_pct > 0
    }
}

/// A fault event in flight (see [`crate::kernel::Kernel`]'s event loop).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultOp {
    /// Spuriously wake one random sleeping task, then re-arm.
    SpuriousWake,
    /// Take one random eligible CPU offline.
    Offline,
    /// Bring the given CPU back online.
    Online(CpuId),
}

impl Kernel {
    pub(crate) fn on_fault(&mut self, op: FaultOp) -> Result<(), SimError> {
        match op {
            FaultOp::SpuriousWake => self.fault_spurious_wake(),
            FaultOp::Offline => self.fault_offline(),
            FaultOp::Online(cpu) => self.fault_online(cpu),
        }
    }

    /// Rip one random sleeping task out of whatever it is blocked on. The
    /// victim's continuation becomes [`Cont::Retry`]: at its next dispatch
    /// it re-executes the incomplete operation, re-blocking if the resource
    /// is still unavailable — the POSIX spurious-wakeup contract.
    fn fault_spurious_wake(&mut self) -> Result<(), SimError> {
        if let Some(p) = self.cfg.faults.spurious_wake_period {
            self.events
                .push(self.now + p, Event::Fault(FaultOp::SpuriousWake));
        }
        let victims: Vec<Tid> = self
            .tasks
            .iter()
            .filter(|t| t.state == TaskState::Sleeping)
            .map(|t| t.tid)
            .collect();
        if victims.is_empty() {
            return Ok(());
        }
        let victim = victims[self.fault_rng.gen_below(victims.len() as u64) as usize];
        let Some(op) = self.rt_mut(victim)?.blocked_on else {
            return Ok(()); // already being woken; nothing to disturb
        };
        match op {
            // The timer event stays armed; an early retry just re-sleeps.
            BlockedOn::Timer { .. } => {}
            other => {
                if !self.sync.remove_waiter(other, victim) {
                    // No longer a registered waiter (e.g. the resource was
                    // granted in this very instant); skip the injection.
                    return Ok(());
                }
            }
        }
        let rt = self.rt_mut(victim)?;
        rt.cont = Cont::Retry(op);
        rt.blocked_on = None;
        self.counters.spurious_wakes += 1;
        if self.trace_on {
            self.emit(TraceEvent::SpuriousWake {
                at: self.now,
                tid: victim,
            });
        }
        self.wake_task(victim, None)
    }

    /// Take one random eligible CPU offline: mark it dead in the scheduler,
    /// preempt whatever is running there, and drain its runqueue by
    /// re-placing every queued task on a surviving CPU through the normal
    /// select/enqueue path.
    fn fault_offline(&mut self) -> Result<(), SimError> {
        let period = self.cfg.faults.hotplug_period;
        let Some(victim) = self.pick_hotplug_victim() else {
            if let Some(p) = period {
                self.events
                    .push(self.now + p, Event::Fault(FaultOp::Offline));
            }
            return Ok(());
        };
        self.counters.hotplug_events += 1;
        // Mark the CPU dead *before* draining so every placement decision
        // the drain triggers already sees it as unavailable.
        self.cpus[victim.index()].online = false;
        self.sched.cpu_offline(victim);
        if self.trace_on {
            self.emit(TraceEvent::Hotplug {
                at: self.now,
                cpu: victim,
                online: false,
            });
        }
        if self.cpus[victim.index()].current.is_some() {
            // Back into the (dead) runqueue; the drain below re-places it.
            self.preempt_current(victim)?;
        }
        self.cpus[victim.index()].last_tid = None;
        self.cpus[victim.index()].resched_pending = false;

        let mut orphans = std::mem::take(&mut self.check_tids);
        orphans.clear();
        self.sched.queued_tids_into(victim, &mut orphans);
        for &tid in &orphans {
            self.sched
                .dequeue_task(&mut self.tasks, victim, tid, DequeueKind::Migrate, self.now);
            let mut stats = SelectStats::default();
            let target = self.sched.select_task_rq(
                &self.tasks,
                tid,
                WakeKind::Wakeup { waker: None },
                victim,
                self.now,
                &mut stats,
            );
            if target == victim || !self.cpus[target.index()].online {
                return Err(SimError::Invariant {
                    at: self.now,
                    detail: format!("hotplug drain placed {tid} on offline {target}"),
                });
            }
            if !self.tasks.get(tid).allowed_on(target) {
                return Err(SimError::AffinityViolated {
                    tid,
                    cpu: target,
                    at: self.now,
                });
            }
            self.tasks.get_mut(tid).cpu = target;
            self.sched
                .enqueue_task(&mut self.tasks, target, tid, EnqueueKind::Migrate, self.now);
            self.counters.migrations += 1;
            self.events.push(self.now, Event::Resched(target));
        }
        orphans.clear();
        self.check_tids = orphans;

        self.events.push(
            self.now + self.cfg.faults.hotplug_down,
            Event::Fault(FaultOp::Online(victim)),
        );
        if let Some(p) = period {
            self.events
                .push(self.now + p, Event::Fault(FaultOp::Offline));
        }
        Ok(())
    }

    /// Bring a hotplugged-out CPU back: re-arm its tick chain (which died
    /// while it was down) and let it pick work.
    fn fault_online(&mut self, cpu: CpuId) -> Result<(), SimError> {
        self.counters.hotplug_events += 1;
        self.cpus[cpu.index()].online = true;
        self.sched.cpu_online(cpu);
        if self.trace_on {
            self.emit(TraceEvent::Hotplug {
                at: self.now,
                cpu,
                online: true,
            });
        }
        if !self.cpus[cpu.index()].tick_armed {
            self.arm_tick(cpu, self.now + self.cfg.tick);
        }
        self.events.push(self.now, Event::Resched(cpu));
        Ok(())
    }

    /// A CPU that may safely be offlined: never CPU 0 (it anchors the
    /// balancers), never a CPU any live task is pinned to (the task would
    /// become unplaceable), and never the last online CPU.
    fn pick_hotplug_victim(&mut self) -> Option<CpuId> {
        let all: Vec<CpuId> = self.topo.all_cpus().collect();
        let mut cands: Vec<CpuId> = Vec::new();
        'cpus: for cpu in all {
            if cpu.0 == 0 || !self.cpus[cpu.index()].online {
                continue;
            }
            for t in self.tasks.iter() {
                if t.state == TaskState::Dead {
                    continue;
                }
                if let Some(mask) = &t.affinity {
                    if mask.contains(&cpu) {
                        continue 'cpus;
                    }
                }
            }
            cands.push(cpu);
        }
        if cands.is_empty() {
            None
        } else {
            Some(cands[self.fault_rng.gen_below(cands.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        assert!(!FaultPlan::default().active());
        let p = FaultPlan {
            missed_tick_pct: 5,
            ..Default::default()
        };
        assert!(p.active());
        let p = FaultPlan {
            spurious_wake_period: Some(Dur::millis(10)),
            ..Default::default()
        };
        assert!(p.active());
    }
}
