//! Batched per-CPU tick delivery.
//!
//! Ticks are by far the most common event in a simulation (one per CPU per
//! millisecond), and they are perfectly periodic: pushing each one through
//! the general event queue made the queue do most of its work just to
//! re-discover "the next tick is one tick after the last one". The
//! [`TickLane`] keeps the next tick deadline of every CPU in a flat array
//! instead, and the kernel's event loop merges it with the event queue by
//! the same `(time, seq)` key the queue orders by.
//!
//! Determinism: each armed tick reserves a sequence number from the event
//! queue's counter ([`simcore::EventQueue::alloc_seq`]) at exactly the
//! point where the old code pushed an `Event::Tick` — so the merged
//! ordering (and therefore every decision digest) is byte-identical to the
//! queue-per-tick implementation, including the per-CPU tick stagger and
//! fault-injected jitter.

use simcore::Time;
use topology::CpuId;

/// Sentinel key for an unarmed CPU; compares after every real deadline.
const UNARMED: (Time, u64) = (Time::MAX, u64::MAX);

/// The per-CPU next-tick table. See the module docs.
#[derive(Debug)]
pub(crate) struct TickLane {
    /// `(deadline, seq)` per CPU; [`UNARMED`] while no tick is in flight.
    next: Vec<(Time, u64)>,
    /// Cached earliest entry (valid while `!dirty`); refreshed by a full
    /// scan only after the current minimum fired or was disarmed, i.e.
    /// once per tick rather than once per event.
    cached: Option<(Time, u64, u32)>,
    dirty: bool,
}

impl TickLane {
    /// A lane with every CPU unarmed.
    pub(crate) fn new(ncpu: usize) -> TickLane {
        TickLane {
            next: vec![UNARMED; ncpu],
            cached: None,
            dirty: false,
        }
    }

    /// Arm `cpu`'s next tick at `at` with an order key of `seq`. The CPU
    /// must not already be armed.
    pub(crate) fn arm(&mut self, cpu: usize, at: Time, seq: u64) {
        debug_assert_eq!(self.next[cpu], UNARMED, "tick double-armed");
        self.next[cpu] = (at, seq);
        if !self.dirty {
            match self.cached {
                Some((t, s, _)) if (t, s) <= (at, seq) => {}
                _ => self.cached = Some((at, seq, cpu as u32)),
            }
        }
    }

    /// Clear `cpu`'s pending tick (because it fired, or on hotplug-off).
    pub(crate) fn disarm(&mut self, cpu: usize) {
        self.next[cpu] = UNARMED;
        if matches!(self.cached, Some((_, _, c)) if c == cpu as u32) {
            self.cached = None;
            self.dirty = true;
        }
    }

    /// The earliest armed tick, if any, as `(deadline, seq, cpu)`.
    pub(crate) fn peek(&mut self) -> Option<(Time, u64, CpuId)> {
        if self.dirty {
            self.dirty = false;
            self.cached = None;
            for (i, &(t, s)) in self.next.iter().enumerate() {
                if t == Time::MAX {
                    continue;
                }
                match self.cached {
                    Some((ct, cs, _)) if (ct, cs) <= (t, s) => {}
                    _ => self.cached = Some((t, s, i as u32)),
                }
            }
        }
        self.cached.map(|(t, s, c)| (t, s, CpuId(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peek_returns_earliest_by_time_then_seq() {
        let mut lane = TickLane::new(3);
        lane.arm(0, Time(100), 7);
        lane.arm(1, Time(50), 9);
        lane.arm(2, Time(50), 8);
        assert_eq!(lane.peek(), Some((Time(50), 8, CpuId(2))));
        lane.disarm(2);
        assert_eq!(lane.peek(), Some((Time(50), 9, CpuId(1))));
        lane.disarm(1);
        assert_eq!(lane.peek(), Some((Time(100), 7, CpuId(0))));
        lane.disarm(0);
        assert_eq!(lane.peek(), None);
    }

    #[test]
    fn rearm_cycles_keep_the_cache_honest() {
        let mut lane = TickLane::new(2);
        lane.arm(0, Time(10), 0);
        lane.arm(1, Time(11), 1);
        for round in 0..100u64 {
            let (t, _, cpu) = lane.peek().expect("armed");
            lane.disarm(cpu.index());
            // Re-arm one tick later, like the kernel's on_tick does.
            lane.arm(cpu.index(), t + simcore::Dur(10), 2 + round);
            let (t2, _, _) = lane.peek().expect("armed");
            assert!(t2 >= t, "lane went backwards");
        }
    }

    #[test]
    fn disarming_a_non_minimum_cpu_keeps_the_minimum() {
        let mut lane = TickLane::new(3);
        lane.arm(0, Time(5), 0);
        lane.arm(1, Time(6), 1);
        lane.arm(2, Time(7), 2);
        lane.disarm(1);
        assert_eq!(lane.peek(), Some((Time(5), 0, CpuId(0))));
    }
}
