//! The simulated kernel: event loop, dispatching, ticks, wakeups, blocking,
//! spawning, and overhead charging.
//!
//! The kernel plays the role Linux's core scheduler (`kernel/sched/core.c`)
//! plays in the paper's methodology: it is *identical* for both schedulers —
//! only the scheduling class behind the [`Scheduler`] trait changes — so any
//! performance difference between two runs is attributable to the scheduler,
//! which is exactly the isolation the paper's ULE port achieves.
//!
//! # Execution model
//!
//! Each simulated CPU executes its current task's behaviour. Zero-time
//! actions (locking a free mutex, spawning, counting ops) are interpreted
//! inline; [`Action::Run`] segments are lazily completed by a `RunDone`
//! event; blocking actions put the task to voluntary sleep and trigger a
//! reschedule. A 1 ms tick per CPU drives `task_tick` (timeslice and
//! fairness checks) and `balance_tick` (periodic load balancing).
//!
//! # Overhead charging
//!
//! Context-switch costs, cache-cold migration penalties and placement-scan
//! costs occupy CPU time without making application progress: the kernel
//! adds them to the running segment's `overhead`, postponing its completion
//! event. This is how ULE's expensive `sched_pickcpu` scans become visible
//! as lost application throughput (§6.3 of the paper).

use sched_api::{
    DequeueKind, EnqueueKind, GroupId, Preempt, Scheduler, SelectStats, Task, TaskSnapshot,
    TaskState, TaskTable, Tid, WakeKind,
};
use simcore::{Dur, EventId, EventQueue, SimRng, Time};
use topology::{CpuId, Topology};

use crate::behavior::{
    Action, BarrierId, Behavior, Ctx, MutexId, PoolId, QueueId, SemId, ThreadSpec,
};
use crate::config::SimConfig;
use crate::stats::{AppStats, Counters, CpuStats, DecisionHash};
use crate::sync::{OpOutcome, SyncTable};
use crate::trace::TraceEvent;

/// Identifier of an application (a spawned [`AppSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// An application: a named group of initial threads. Threads spawned at
/// runtime (via [`Action::Spawn`]) join their spawner's application.
pub struct AppSpec {
    /// Name used in reports.
    pub name: String,
    /// Threads enqueued when the application starts.
    pub threads: Vec<ThreadSpec>,
    /// Daemon apps (background noise, servers) never "finish": they are
    /// excluded from [`Kernel::all_apps_done`].
    pub daemon: bool,
}

impl AppSpec {
    /// An application with the given initial threads.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadSpec>) -> AppSpec {
        AppSpec {
            name: name.into(),
            threads,
            daemon: false,
        }
    }

    /// Mark as a daemon (excluded from completion tracking).
    pub fn daemon(mut self) -> AppSpec {
        self.daemon = true;
        self
    }
}

/// Deferred control operations, scheduled at absolute times.
enum ControlOp {
    StartApp(AppId, Vec<ThreadSpec>),
    /// Clear the affinity mask of every task of an app (the `taskset`
    /// command in the Figure 6 experiment).
    UnpinApp(AppId),
}

enum Event {
    /// Per-CPU scheduler tick.
    Tick(CpuId),
    /// The current run segment of `cpu` completed (if `gen` is current).
    RunDone { cpu: CpuId, gen: u64 },
    /// Timer expiry for a timed sleep.
    TimerWake { tid: Tid },
    /// A spin-barrier arrival exceeded its spin budget.
    SpinTimeout {
        tid: Tid,
        barrier: BarrierId,
        generation: u64,
    },
    /// Re-run the scheduling decision on a CPU.
    Resched(CpuId),
    /// A released spinner should continue executing its behaviour.
    Continue(Tid),
    /// Deferred control operation.
    Control(ControlOp),
}

/// Where a task stands in its behaviour program.
enum Cont {
    /// Ask the behaviour for the next action.
    NeedAction,
    /// Partially executed run segment.
    Run { left: Dur },
    /// Spinning at a barrier until released or until the timeout event.
    Spin { barrier: BarrierId, generation: u64 },
    /// Blocked on a synchronisation object or timer.
    Blocked,
    /// Exited.
    Done,
}

/// Per-task kernel-side runtime state (behaviour + continuation).
struct TaskRt {
    behavior: Option<Box<dyn Behavior>>,
    cont: Cont,
    rng: SimRng,
    /// Value delivered by the last queue get.
    pending_value: Option<u64>,
    /// Application this task belongs to.
    app: AppId,
    /// Detached threads don't count toward app completion.
    detached: bool,
}

/// Per-CPU execution state.
struct Cpu {
    current: Option<Tid>,
    /// Task that ran most recently (to skip context-switch cost when a task
    /// is re-picked immediately).
    last_tid: Option<Tid>,
    /// Current segment: when it started, overhead absorbed, work accounted.
    seg_start: Time,
    seg_overhead: Dur,
    seg_accounted: Dur,
    /// Remaining work of the current Run segment when it started.
    seg_run_left: Dur,
    /// Pending overhead to fold into the next segment (context switch cost
    /// charged before the task reaches its next Run).
    pending_overhead: Dur,
    run_event: Option<EventId>,
    run_gen: u64,
    /// Whether the segment fields describe the *current* task's active
    /// run/spin segment (false while a task is between actions, so stale
    /// fields are never accounted to the wrong task).
    seg_active: bool,
    resched_pending: bool,
    stats: CpuStats,
}

impl Cpu {
    fn new() -> Cpu {
        Cpu {
            current: None,
            last_tid: None,
            seg_start: Time::ZERO,
            seg_overhead: Dur::ZERO,
            seg_accounted: Dur::ZERO,
            seg_run_left: Dur::ZERO,
            pending_overhead: Dur::ZERO,
            run_event: None,
            run_gen: 0,
            seg_active: false,
            resched_pending: false,
            stats: CpuStats::default(),
        }
    }
}

/// Outcome of interpreting behaviour actions on a CPU.
enum InterpretEnd {
    /// A run/spin segment was installed; the CPU keeps executing.
    Running,
    /// The current task blocked, yielded or exited; the CPU needs a pick.
    NeedsPick,
}

/// The simulated kernel. See the module docs for the execution model.
pub struct Kernel {
    topo: Topology,
    cfg: SimConfig,
    now: Time,
    events: EventQueue<Event>,
    sched: Box<dyn Scheduler>,
    tasks: TaskTable,
    trt: Vec<Option<TaskRt>>,
    cpus: Vec<Cpu>,
    sync: SyncTable,
    apps: Vec<AppStats>,
    live_apps: usize,
    counters: Counters,
    hash: DecisionHash,
    trace: simcore::TraceBuffer<TraceEvent>,
    /// Tracing enabled? Cached from `cfg.trace_capacity > 0` so the hot
    /// paths skip building [`TraceEvent`]s entirely when tracing is off.
    trace_on: bool,
    rng: SimRng,
    ticking: bool,
    /// Reused buffer for `balance_tick` target CPUs (no per-tick allocation).
    balance_buf: Vec<CpuId>,
}

impl Kernel {
    /// Build a kernel for `topo`, driven by `sched`.
    pub fn new(topo: Topology, cfg: SimConfig, sched: Box<dyn Scheduler>) -> Kernel {
        let ncpu = topo.nr_cpus();
        let rng = SimRng::new(cfg.seed);
        let trace = simcore::TraceBuffer::with_capacity(cfg.trace_capacity);
        let trace_on = cfg.trace_capacity > 0;
        Kernel {
            topo,
            cfg,
            now: Time::ZERO,
            events: EventQueue::new(),
            sched,
            tasks: TaskTable::new(),
            trt: Vec::new(),
            cpus: (0..ncpu).map(|_| Cpu::new()).collect(),
            sync: SyncTable::new(),
            apps: Vec::new(),
            live_apps: 0,
            counters: Counters::default(),
            hash: DecisionHash::default(),
            trace,
            trace_on,
            rng,
            ticking: false,
            balance_buf: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Public setup & introspection API
    // ------------------------------------------------------------------

    /// Schedule an application to start at `at`. Returns its id.
    pub fn queue_app(&mut self, at: Time, spec: AppSpec) -> AppId {
        let app = AppId(self.apps.len() as u32);
        let group = GroupId(self.apps.len() as u32 + 1); // 0 is the root
        let mut stats = AppStats::new(spec.name, group);
        stats.daemon = spec.daemon;
        self.apps.push(stats);
        if !spec.daemon {
            self.live_apps += 1;
        }
        self.events
            .push(at, Event::Control(ControlOp::StartApp(app, spec.threads)));
        app
    }

    /// Schedule the affinity masks of all of `app`'s tasks to be cleared at
    /// `at` (the `taskset` unpin of the Figure 6 experiment).
    pub fn queue_unpin(&mut self, at: Time, app: AppId) {
        self.events
            .push(at, Event::Control(ControlOp::UnpinApp(app)));
    }

    /// Create a synchronisation mutex (usable by behaviours).
    pub fn new_mutex(&mut self) -> MutexId {
        self.sync.new_mutex()
    }
    /// Create a counting semaphore.
    pub fn new_sem(&mut self, initial: u64) -> SemId {
        self.sync.new_sem(initial)
    }
    /// Create a cyclic barrier.
    pub fn new_barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.new_barrier(parties)
    }
    /// Create a bounded queue.
    pub fn new_queue(&mut self, capacity: usize) -> QueueId {
        self.sync.new_queue(capacity)
    }
    /// Create a shared work pool.
    pub fn new_pool(&mut self, items: u64) -> PoolId {
        self.sync.new_pool(items)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The scheduler's name ("cfs", "ule", ...).
    pub fn sched_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Global activity counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-CPU work/overhead accounting.
    pub fn cpu_stats(&self, cpu: CpuId) -> &CpuStats {
        &self.cpus[cpu.index()].stats
    }

    /// Statistics of an application.
    pub fn app(&self, app: AppId) -> &AppStats {
        &self.apps[app.0 as usize]
    }

    /// Number of applications registered.
    pub fn nr_apps(&self) -> usize {
        self.apps.len()
    }

    /// `true` once every registered application has finished.
    pub fn all_apps_done(&self) -> bool {
        self.live_apps == 0
    }

    /// Tids of all tasks (live or dead) belonging to `app`, in spawn order.
    pub fn app_tasks(&self, app: AppId) -> Vec<Tid> {
        (0..self.trt.len() as u32)
            .map(Tid)
            .filter(|t| {
                self.trt[t.index()]
                    .as_ref()
                    .map(|rt| rt.app == app)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Read access to a task.
    pub fn task(&self, tid: Tid) -> &Task {
        self.tasks.get(tid)
    }

    /// Total CPU work performed by a task so far.
    pub fn task_runtime(&self, tid: Tid) -> Dur {
        self.tasks.get(tid).sum_exec
    }

    /// Scheduler-internal per-task state (vruntime / penalty / ...).
    pub fn snapshot(&self, tid: Tid) -> TaskSnapshot {
        self.sched.snapshot(&self.tasks, tid)
    }

    /// Number of tasks on `cpu`'s runqueue, including the running one.
    pub fn nr_queued(&self, cpu: CpuId) -> usize {
        self.sched.nr_queued(cpu)
    }

    /// The task currently running on `cpu`, if any.
    pub fn current(&self, cpu: CpuId) -> Option<Tid> {
        self.cpus[cpu.index()].current
    }

    /// The determinism digest over all scheduling decisions so far.
    pub fn decision_digest(&self) -> u64 {
        self.hash.digest()
    }

    /// The flight-recorder trace (empty unless
    /// [`SimConfig::trace_capacity`] is set).
    pub fn trace(&self) -> &simcore::TraceBuffer<TraceEvent> {
        &self.trace
    }

    // ------------------------------------------------------------------
    // Simulation driving
    // ------------------------------------------------------------------

    /// Run the simulation up to and including events at `until`.
    pub fn run_until(&mut self, until: Time) {
        self.ensure_ticking();
        while let Some(at) = self.events.peek_time() {
            if at > until {
                break;
            }
            let (at, ev) = self.events.pop().expect("peeked");
            debug_assert!(at >= self.now);
            self.now = at;
            self.counters.events += 1;
            self.handle(ev);
        }
        if until > self.now {
            self.now = until;
        }
    }

    /// Run until every registered app finished, or until `limit`.
    /// Returns `true` if all apps completed.
    pub fn run_until_apps_done(&mut self, limit: Time) -> bool {
        self.ensure_ticking();
        while self.live_apps > 0 {
            let Some(at) = self.events.peek_time() else {
                break;
            };
            if at > limit {
                self.now = limit;
                return false;
            }
            let (at, ev) = self.events.pop().expect("peeked");
            self.now = at;
            self.counters.events += 1;
            self.handle(ev);
        }
        self.live_apps == 0
    }

    fn ensure_ticking(&mut self) {
        if self.ticking {
            return;
        }
        self.ticking = true;
        let n = self.cpus.len() as u64;
        for i in 0..n {
            // Stagger ticks across CPUs as real machines do, avoiding
            // artificial lock-step between cores.
            let offset = Dur(self.cfg.tick.as_nanos() * i / n);
            self.events.push(
                self.now + self.cfg.tick + offset,
                Event::Tick(CpuId(i as u32)),
            );
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Tick(cpu) => self.on_tick(cpu),
            Event::RunDone { cpu, gen } => self.on_run_done(cpu, gen),
            Event::TimerWake { tid } => self.on_timer_wake(tid),
            Event::SpinTimeout {
                tid,
                barrier,
                generation,
            } => self.on_spin_timeout(tid, barrier, generation),
            Event::Resched(cpu) => self.on_resched(cpu),
            Event::Continue(tid) => self.on_continue(tid),
            Event::Control(op) => self.on_control(op),
        }
    }

    fn on_tick(&mut self, cpu: CpuId) {
        self.account_segment(cpu);
        if let Some(curr) = self.cpus[cpu.index()].current {
            if let Preempt::Yes = self.sched.task_tick(&mut self.tasks, cpu, curr, self.now) {
                self.request_resched(cpu);
            }
        }
        // The balance target buffer is owned by the kernel and reused every
        // tick, so the hot path does not allocate.
        let mut targets = std::mem::take(&mut self.balance_buf);
        targets.clear();
        self.sched
            .balance_tick(&mut self.tasks, cpu, self.now, &mut targets);
        self.counters.migrations += targets.len() as u64;
        for &t in &targets {
            self.events.push(self.now, Event::Resched(t));
        }
        self.balance_buf = targets;
        let next = self.now + self.cfg.tick;
        self.events.push(next, Event::Tick(cpu));
    }

    fn on_run_done(&mut self, cpu: CpuId, gen: u64) {
        let c = &mut self.cpus[cpu.index()];
        if c.run_gen != gen {
            return; // stale completion
        }
        c.run_event = None;
        let Some(tid) = c.current else { return };
        self.account_segment(cpu);
        self.trt[tid.index()].as_mut().expect("live task").cont = Cont::NeedAction;
        if let InterpretEnd::NeedsPick = self.interpret(cpu) {
            self.pick_and_run(cpu);
        }
    }

    fn on_timer_wake(&mut self, tid: Tid) {
        if !self.tasks.contains(tid) || self.tasks.get(tid).state != TaskState::Sleeping {
            return;
        }
        self.trt[tid.index()].as_mut().expect("live").cont = Cont::NeedAction;
        self.wake_task(tid, None);
    }

    fn on_spin_timeout(&mut self, tid: Tid, barrier: BarrierId, generation: u64) {
        // Validate the task is still spinning on this barrier generation.
        let still_spinning = matches!(
            self.trt[tid.index()].as_ref().map(|rt| &rt.cont),
            Some(Cont::Spin { barrier: b, generation: g }) if *b == barrier && *g == generation
        );
        if !still_spinning {
            return;
        }
        if !self.sync.barrier_spin_timeout(barrier, tid, generation) {
            return;
        }
        // The spinner becomes a blocked waiter (it goes to sleep).
        self.trt[tid.index()].as_mut().expect("live").cont = Cont::Blocked;
        let cpu = self.tasks.get(tid).cpu;
        let is_current = self.cpus[cpu.index()].current == Some(tid);
        if is_current {
            self.account_segment(cpu);
            self.block_current(cpu, tid);
            self.pick_and_run(cpu);
        } else {
            // Preempted mid-spin: remove from the runqueue and sleep.
            self.sched
                .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Sleep, self.now);
            let t = self.tasks.get_mut(tid);
            t.state = TaskState::Sleeping;
            t.sleep_start = self.now;
            t.on_rq = false;
        }
    }

    fn on_resched(&mut self, cpu: CpuId) {
        let c = &self.cpus[cpu.index()];
        if c.current.is_none() {
            self.pick_and_run(cpu);
            return;
        }
        if !c.resched_pending {
            return;
        }
        self.cpus[cpu.index()].resched_pending = false;
        self.preempt_current(cpu);
        self.pick_and_run(cpu);
    }

    fn on_continue(&mut self, tid: Tid) {
        // A spinner released by a barrier while it was running.
        if !self.tasks.contains(tid) {
            return;
        }
        let cpu = self.tasks.get(tid).cpu;
        if self.cpus[cpu.index()].current != Some(tid) {
            return; // it was preempted meanwhile; dispatch will continue it
        }
        if !matches!(
            self.trt[tid.index()].as_ref().map(|rt| &rt.cont),
            Some(Cont::NeedAction)
        ) {
            return;
        }
        self.account_segment(cpu);
        if let InterpretEnd::NeedsPick = self.interpret(cpu) {
            self.pick_and_run(cpu);
        }
    }

    fn on_control(&mut self, op: ControlOp) {
        match op {
            ControlOp::StartApp(app, threads) => {
                self.apps[app.0 as usize].started = Some(self.now);
                for spec in threads {
                    self.spawn_thread(app, spec, None);
                }
            }
            ControlOp::UnpinApp(app) => {
                let tids = self.app_tasks(app);
                for tid in tids {
                    if self.tasks.contains(tid) {
                        self.tasks.get_mut(tid).affinity = None;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    fn spawn_thread(&mut self, app: AppId, spec: ThreadSpec, parent: Option<Tid>) -> Tid {
        let group = self.apps[app.0 as usize].group;
        let ThreadSpec {
            name,
            nice,
            affinity,
            kernel_thread,
            inherit_history,
            detached,
            behavior,
        } = spec;
        let now = self.now;
        let tid = self.tasks.insert_with(|tid| {
            let mut t = Task::new(tid, name, group);
            t.nice = nice;
            t.affinity = affinity;
            t.kernel_thread = kernel_thread;
            t.inherit_history = inherit_history;
            t.parent = parent;
            t.last_ran = now;
            t.last_wakeup = now;
            t
        });
        if tid.index() >= self.trt.len() {
            self.trt.resize_with(tid.index() + 1, || None);
        }
        let rng = self.rng.fork(tid.0 as u64);
        self.trt[tid.index()] = Some(TaskRt {
            behavior: Some(behavior),
            cont: Cont::NeedAction,
            rng,
            pending_value: None,
            app,
            detached,
        });
        let a = &mut self.apps[app.0 as usize];
        if !detached {
            a.live += 1;
        }
        a.spawned += 1;
        self.counters.spawns += 1;

        self.sched.task_fork(&self.tasks, tid, parent, self.now);
        self.place_and_enqueue(tid, parent, true);
        tid
    }

    /// Place a task (new or waking) and enqueue it, charging placement-scan
    /// cost to the CPU doing the wakeup.
    fn place_and_enqueue(&mut self, tid: Tid, waker: Option<Tid>, is_new: bool) {
        let waking_cpu = match waker {
            Some(w) if self.tasks.contains(w) => self.tasks.get(w).cpu,
            _ => self.tasks.get(tid).last_cpu,
        };
        let kind = if is_new {
            WakeKind::New
        } else {
            WakeKind::Wakeup { waker }
        };
        let mut stats = SelectStats::default();
        let target =
            self.sched
                .select_task_rq(&self.tasks, tid, kind, waking_cpu, self.now, &mut stats);
        debug_assert!(
            self.tasks.get(tid).allowed_on(target),
            "scheduler violated affinity of {tid}"
        );
        self.counters.placement_scans += stats.cpus_scanned as u64;
        let scan_cost = self
            .cfg
            .select_scan_cost_per_cpu
            .saturating_mul(stats.cpus_scanned as u64);
        self.charge_overhead(waking_cpu, scan_cost);

        let t = self.tasks.get_mut(tid);
        t.cpu = target;
        t.state = TaskState::Runnable;
        t.on_rq = true;
        t.last_wakeup = self.now;
        let ekind = if is_new {
            EnqueueKind::New
        } else {
            EnqueueKind::Wakeup
        };
        let preempt = self
            .sched
            .enqueue_task(&mut self.tasks, target, tid, ekind, self.now);
        self.hash.record(1, self.now, tid.0, target.0);
        if self.trace_on && !is_new {
            self.trace.push(TraceEvent::Wakeup {
                at: self.now,
                tid,
                cpu: target,
                waker,
            });
        }
        let idle = self.cpus[target.index()].current.is_none();
        match preempt {
            Preempt::Yes if !idle => {
                self.cpus[target.index()].resched_pending = true;
                self.counters.preemptions += 1;
                self.events.push(self.now, Event::Resched(target));
            }
            _ if idle => {
                self.events.push(self.now, Event::Resched(target));
            }
            _ => {}
        }
    }

    fn wake_task(&mut self, tid: Tid, waker: Option<Tid>) {
        debug_assert_eq!(self.tasks.get(tid).state, TaskState::Sleeping);
        self.counters.wakeups += 1;
        self.hash.record(2, self.now, tid.0, 0);
        self.place_and_enqueue(tid, waker, false);
    }

    // ------------------------------------------------------------------
    // Segment accounting & overhead
    // ------------------------------------------------------------------

    /// Bring the current task's `sum_exec` up to date with the work done in
    /// the active segment.
    fn account_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        if !c.seg_active {
            return;
        }
        let Some(tid) = c.current else { return };
        let elapsed = self.now.saturating_since(c.seg_start);
        let total_work = elapsed.saturating_sub(c.seg_overhead);
        let delta = total_work.saturating_sub(c.seg_accounted);
        if !delta.is_zero() {
            c.seg_accounted = total_work;
            c.stats.work += delta;
            self.tasks.get_mut(tid).sum_exec += delta;
        }
    }

    /// Charge `cost` of kernel-mode time to `cpu`, postponing the running
    /// segment's completion.
    fn charge_overhead(&mut self, cpu: CpuId, cost: Dur) {
        if cost.is_zero() {
            return;
        }
        let c = &mut self.cpus[cpu.index()];
        c.stats.overhead += cost;
        if let Some(ev) = c.run_event.take() {
            // Active run segment: postpone its completion.
            c.seg_overhead += cost;
            self.events.cancel(ev);
            let done_at = c.seg_start + c.seg_run_left + c.seg_overhead;
            let gen = c.run_gen;
            c.run_event = Some(self.events.push(done_at, Event::RunDone { cpu, gen }));
        } else if c.current.is_some() && c.seg_active && c.seg_run_left == Dur::MAX {
            // Active spin segment: the spin absorbs the cost.
            c.seg_overhead += cost;
        } else {
            // Idle CPU, or a task between actions: fold the cost into the
            // next segment started on this CPU.
            c.pending_overhead += cost;
        }
    }

    /// Install a run segment of `left` work for the current task on `cpu`.
    fn start_run_segment(&mut self, cpu: CpuId, left: Dur) {
        let c = &mut self.cpus[cpu.index()];
        debug_assert!(c.current.is_some());
        c.seg_start = self.now;
        c.seg_overhead = std::mem::take(&mut c.pending_overhead);
        c.seg_accounted = Dur::ZERO;
        c.seg_run_left = left;
        c.seg_active = true;
        c.run_gen += 1;
        let gen = c.run_gen;
        let done_at = c.seg_start + left + c.seg_overhead;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
        c.run_event = Some(self.events.push(done_at, Event::RunDone { cpu, gen }));
    }

    /// Install an open-ended spin segment (no completion event; ended by
    /// barrier release or spin timeout).
    fn start_spin_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        debug_assert!(c.current.is_some());
        c.seg_start = self.now;
        c.seg_overhead = std::mem::take(&mut c.pending_overhead);
        c.seg_accounted = Dur::ZERO;
        c.seg_run_left = Dur::MAX;
        c.seg_active = true;
        c.run_gen += 1;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
    }

    /// Cancel any armed completion event for `cpu`'s segment.
    fn cancel_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        c.seg_active = false;
        c.run_gen += 1;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling core
    // ------------------------------------------------------------------

    fn request_resched(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        if c.current.is_some() && !c.resched_pending {
            c.resched_pending = true;
            self.counters.preemptions += 1;
            self.events.push(self.now, Event::Resched(cpu));
        }
    }

    /// Take the current task off the CPU, saving its remaining work, and
    /// put it back in the runqueue (involuntary preemption).
    fn preempt_current(&mut self, cpu: CpuId) {
        self.account_segment(cpu);
        let c = &mut self.cpus[cpu.index()];
        let Some(tid) = c.current.take() else { return };
        // Save remaining work for Run segments.
        let left = c.seg_run_left.saturating_sub(c.seg_accounted);
        self.cancel_segment(cpu);
        let rt = self.trt[tid.index()].as_mut().expect("live");
        match rt.cont {
            Cont::Run { .. } => {
                // Involuntary preemption partially evicts the working set;
                // the refill shows up as extra work when it resumes.
                rt.cont = Cont::Run {
                    left: left + self.cfg.preempt_penalty,
                }
            }
            Cont::Spin { .. } => {} // spin deadline is absolute; keep state
            _ => {}
        }
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Runnable;
        t.last_ran = self.now;
        self.sched
            .put_prev_task(&mut self.tasks, cpu, tid, self.now);
    }

    /// The current task on `cpu` blocks (voluntary sleep). The task keeps
    /// `Cont::Blocked`; callers must have set `sleep` bookkeeping reasons.
    fn block_current(&mut self, cpu: CpuId, tid: Tid) {
        debug_assert_eq!(self.cpus[cpu.index()].current, Some(tid));
        self.account_segment(cpu);
        self.cancel_segment(cpu);
        self.cpus[cpu.index()].current = None;
        self.sched
            .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Sleep, self.now);
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Sleeping;
        t.sleep_start = self.now;
        t.last_ran = self.now;
        t.on_rq = false;
    }

    /// The current task exits.
    fn exit_current(&mut self, cpu: CpuId, tid: Tid) {
        self.account_segment(cpu);
        self.cancel_segment(cpu);
        self.cpus[cpu.index()].current = None;
        self.sched
            .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Dead, self.now);
        self.sched.task_dead(&self.tasks, tid, self.now);
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Dead;
        t.on_rq = false;
        if self.trace_on {
            self.trace.push(TraceEvent::Exit { at: self.now, tid });
        }
        let rt = self.trt[tid.index()].as_mut().expect("live");
        rt.cont = Cont::Done;
        rt.behavior = None;
        let app = rt.app;
        let detached = rt.detached;
        if !detached {
            let a = &mut self.apps[app.0 as usize];
            a.live -= 1;
            if a.live == 0 {
                a.finished = Some(self.now);
                if !a.daemon {
                    self.live_apps -= 1;
                }
            }
        }
    }

    /// Pick tasks until one actually keeps the CPU (installs a run/spin
    /// segment) or the queue drains (CPU idles).
    fn pick_and_run(&mut self, cpu: CpuId) {
        loop {
            debug_assert!(self.cpus[cpu.index()].current.is_none());
            let mut picked = self.sched.pick_next_task(&mut self.tasks, cpu, self.now);
            if picked.is_none() {
                // Newidle / idle-steal balancing.
                let mut stats = SelectStats::default();
                if self
                    .sched
                    .idle_balance(&mut self.tasks, cpu, self.now, &mut stats)
                {
                    self.counters.migrations += 1;
                    picked = self.sched.pick_next_task(&mut self.tasks, cpu, self.now);
                }
            }
            let Some(tid) = picked else {
                self.cpus[cpu.index()].current = None;
                if self.trace_on {
                    self.trace.push(TraceEvent::Idle { at: self.now, cpu });
                }
                return;
            };
            debug_assert_eq!(self.tasks.get(tid).cpu, cpu, "picked task not on this cpu");

            // Dispatch bookkeeping.
            let prev_tid = self.cpus[cpu.index()].last_tid;
            let is_switch = prev_tid != Some(tid);
            let migrated_from = {
                let t = self.tasks.get(tid);
                if t.last_cpu != cpu && t.sum_exec > Dur::ZERO {
                    Some(t.last_cpu)
                } else {
                    None
                }
            };
            {
                let t = self.tasks.get_mut(tid);
                t.state = TaskState::Running;
                t.last_cpu = cpu;
            }
            let c = &mut self.cpus[cpu.index()];
            c.current = Some(tid);
            c.last_tid = Some(tid);
            c.resched_pending = false;
            if is_switch {
                self.counters.ctx_switches += 1;
                self.hash.record(3, self.now, tid.0, cpu.0);
                if self.trace_on {
                    self.trace.push(TraceEvent::Switch {
                        at: self.now,
                        cpu,
                        from: prev_tid,
                        to: tid,
                    });
                }
                let cost = self.cfg.ctx_switch_cost;
                self.cpus[cpu.index()].pending_overhead += cost;
                self.cpus[cpu.index()].stats.overhead += cost;
            }
            if let Some(from) = migrated_from {
                let dist = self.topo.distance(from, cpu) as u64;
                let cost = self.cfg.migration_cost_per_distance.saturating_mul(dist);
                self.cpus[cpu.index()].pending_overhead += cost;
                self.cpus[cpu.index()].stats.overhead += cost;
            }

            let cont = std::mem::replace(
                &mut self.trt[tid.index()].as_mut().expect("live").cont,
                Cont::NeedAction,
            );
            match cont {
                Cont::Run { left } => {
                    self.trt[tid.index()].as_mut().expect("live").cont = Cont::Run { left };
                    self.start_run_segment(cpu, left);
                    return;
                }
                Cont::Spin {
                    barrier,
                    generation,
                } => {
                    self.trt[tid.index()].as_mut().expect("live").cont = Cont::Spin {
                        barrier,
                        generation,
                    };
                    self.start_spin_segment(cpu);
                    return;
                }
                Cont::NeedAction => match self.interpret(cpu) {
                    InterpretEnd::Running => return,
                    InterpretEnd::NeedsPick => continue,
                },
                Cont::Blocked | Cont::Done => {
                    unreachable!("picked a blocked/dead task {tid}")
                }
            }
        }
    }

    /// Interpret zero-time actions of the current task on `cpu` until it
    /// runs, spins, blocks, yields or exits.
    fn interpret(&mut self, cpu: CpuId) -> InterpretEnd {
        let mut guard = 0u32;
        loop {
            guard += 1;
            assert!(
                guard <= self.cfg.max_instant_actions,
                "behavior on {cpu} emitted too many zero-time actions"
            );
            let tid = self.cpus[cpu.index()].current.expect("current");
            let action = {
                let rt = self.trt[tid.index()].as_mut().expect("live");
                let mut behavior = rt.behavior.take().expect("behavior");
                let value = rt.pending_value.take();
                let mut ctx = Ctx {
                    now: self.now,
                    tid,
                    cpu,
                    value,
                    rng: &mut rt.rng,
                };
                let action = behavior.next(&mut ctx);
                self.trt[tid.index()].as_mut().expect("live").behavior = Some(behavior);
                action
            };
            match action {
                Action::Run(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.trt[tid.index()].as_mut().expect("live").cont = Cont::Run { left: d };
                    self.start_run_segment(cpu, d);
                    return InterpretEnd::Running;
                }
                Action::Sleep(d) => {
                    self.trt[tid.index()].as_mut().expect("live").cont = Cont::Blocked;
                    self.block_current(cpu, tid);
                    self.events.push(self.now + d, Event::TimerWake { tid });
                    return InterpretEnd::NeedsPick;
                }
                Action::MutexLock(m) => {
                    let out = self.sync.mutex_lock(m, tid);
                    if self.apply_outcome(cpu, tid, out) {
                        return InterpretEnd::NeedsPick;
                    }
                }
                Action::MutexUnlock(m) => {
                    let out = self.sync.mutex_unlock(m, tid);
                    let blocked = self.apply_outcome(cpu, tid, out);
                    debug_assert!(!blocked);
                }
                Action::SemWait(s) => {
                    let out = self.sync.sem_wait(s, tid);
                    if self.apply_outcome(cpu, tid, out) {
                        return InterpretEnd::NeedsPick;
                    }
                }
                Action::SemPost(s) => {
                    let out = self.sync.sem_post(s);
                    let blocked = self.apply_outcome(cpu, tid, out);
                    debug_assert!(!blocked);
                }
                Action::BarrierWait(b) => {
                    let out = self.sync.barrier_arrive(b, tid, false);
                    if self.apply_outcome(cpu, tid, out) {
                        return InterpretEnd::NeedsPick;
                    }
                }
                Action::BarrierWaitSpin(b, budget) => {
                    let generation = self.sync.barrier_generation(b);
                    let out = self.sync.barrier_arrive(b, tid, true);
                    if out.spin {
                        self.trt[tid.index()].as_mut().expect("live").cont = Cont::Spin {
                            barrier: b,
                            generation,
                        };
                        self.events.push(
                            self.now + budget,
                            Event::SpinTimeout {
                                tid,
                                barrier: b,
                                generation,
                            },
                        );
                        self.start_spin_segment(cpu);
                        return InterpretEnd::Running;
                    }
                    let blocked = self.apply_outcome(cpu, tid, out);
                    debug_assert!(!blocked, "last arriver never blocks");
                }
                Action::QueuePut(q, v) => {
                    let out = self.sync.queue_put(q, tid, v);
                    if self.apply_outcome(cpu, tid, out) {
                        return InterpretEnd::NeedsPick;
                    }
                }
                Action::QueueGet(q) => {
                    let out = self.sync.queue_get(q, tid);
                    if self.apply_outcome(cpu, tid, out) {
                        return InterpretEnd::NeedsPick;
                    }
                }
                Action::PoolTake(p) => {
                    let got = self.sync.pool_take(p);
                    self.trt[tid.index()].as_mut().expect("live").pending_value = Some(got);
                }
                Action::Spawn(spec) => {
                    let app = self.trt[tid.index()].as_ref().expect("live").app;
                    self.spawn_thread(app, spec, Some(tid));
                }
                Action::Yield => {
                    self.account_segment(cpu);
                    self.cancel_segment(cpu);
                    self.cpus[cpu.index()].current = None;
                    let t = self.tasks.get_mut(tid);
                    t.state = TaskState::Runnable;
                    t.last_ran = self.now;
                    self.sched.yield_task(&mut self.tasks, cpu, self.now);
                    return InterpretEnd::NeedsPick;
                }
                Action::CountOps(n) => {
                    let app = self.trt[tid.index()].as_ref().expect("live").app;
                    self.apps[app.0 as usize].ops += n;
                }
                Action::RecordLatency(d) => {
                    let app = self.trt[tid.index()].as_ref().expect("live").app;
                    let a = &mut self.apps[app.0 as usize];
                    a.lat_count += 1;
                    a.lat_sum += d;
                    a.lat_max = a.lat_max.max(d);
                }
                Action::Exit => {
                    self.exit_current(cpu, tid);
                    return InterpretEnd::NeedsPick;
                }
            }
        }
    }

    /// Apply a synchronisation outcome for the current task `tid` on `cpu`.
    /// Returns `true` if the task blocked (caller must stop interpreting).
    fn apply_outcome(&mut self, cpu: CpuId, tid: Tid, out: OpOutcome) -> bool {
        if let Some(v) = out.value {
            self.trt[tid.index()].as_mut().expect("live").pending_value = Some(v);
        }
        for (w, val) in out.wake {
            if let Some(v) = val {
                self.trt[w.index()].as_mut().expect("live").pending_value = Some(v);
            }
            self.trt[w.index()].as_mut().expect("live").cont = Cont::NeedAction;
            self.wake_task(w, Some(tid));
        }
        for s in out.release_spinners {
            self.release_spinner(s);
        }
        if out.block {
            self.trt[tid.index()].as_mut().expect("live").cont = Cont::Blocked;
            self.block_current(cpu, tid);
            true
        } else {
            false
        }
    }

    /// A barrier released a spinning task: let it continue, wherever it is.
    fn release_spinner(&mut self, tid: Tid) {
        let rt = self.trt[tid.index()].as_mut().expect("live");
        debug_assert!(matches!(rt.cont, Cont::Spin { .. }));
        rt.cont = Cont::NeedAction;
        let cpu = self.tasks.get(tid).cpu;
        if self.cpus[cpu.index()].current == Some(tid) {
            // Currently burning CPU in the spin loop; continue via an event
            // to avoid re-entrant interpretation.
            self.events.push(self.now, Event::Continue(tid));
        }
        // If it was preempted mid-spin it sits in a runqueue and will
        // continue at its next dispatch.
    }
}
