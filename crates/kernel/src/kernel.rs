//! The simulated kernel: event loop, dispatching, ticks, wakeups, blocking,
//! spawning, and overhead charging.
//!
//! The kernel plays the role Linux's core scheduler (`kernel/sched/core.c`)
//! plays in the paper's methodology: it is *identical* for both schedulers —
//! only the scheduling class behind the [`Scheduler`] trait changes — so any
//! performance difference between two runs is attributable to the scheduler,
//! which is exactly the isolation the paper's ULE port achieves.
//!
//! # Execution model
//!
//! Each simulated CPU executes its current task's behaviour. Zero-time
//! actions (locking a free mutex, spawning, counting ops) are interpreted
//! inline; [`Action::Run`] segments are lazily completed by a `RunDone`
//! event; blocking actions put the task to voluntary sleep and trigger a
//! reschedule. A 1 ms tick per CPU drives `task_tick` (timeslice and
//! fairness checks) and `balance_tick` (periodic load balancing).
//!
//! # Overhead charging
//!
//! Context-switch costs, cache-cold migration penalties and placement-scan
//! costs occupy CPU time without making application progress: the kernel
//! adds them to the running segment's `overhead`, postponing its completion
//! event. This is how ULE's expensive `sched_pickcpu` scans become visible
//! as lost application throughput (§6.3 of the paper).

use metrics::Histogram;
use sched_api::{
    DequeueKind, EnqueueKind, GroupId, Preempt, PreemptCause, Scheduler, SelectStats, Task,
    TaskSnapshot, TaskState, TaskTable, Tid, WakeKind,
};
use simcore::{Dur, EventId, EventQueue, SimRng, Time};
use topology::{CpuId, Topology};

use crate::behavior::{
    Action, BarrierId, Behavior, Ctx, MutexId, PoolId, QueueId, SemId, ThreadSpec,
};
use crate::config::{CheckMode, SimConfig};
use crate::error::{BudgetKind, SimError};
use crate::fault::FaultOp;
use crate::guard::{CancelToken, RunBudget, Watch, WatchRec};
use crate::stats::{AppStats, Counters, CpuStats, DecisionHash};
use crate::sync::{BlockedOn, OpOutcome, SyncTable};
use crate::ticks::TickLane;
use crate::trace::{TraceEvent, TraceSink};

/// Identifier of an application (a spawned [`AppSpec`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AppId(pub u32);

/// An application: a named group of initial threads. Threads spawned at
/// runtime (via [`Action::Spawn`]) join their spawner's application.
pub struct AppSpec {
    /// Name used in reports.
    pub name: String,
    /// Threads enqueued when the application starts.
    pub threads: Vec<ThreadSpec>,
    /// Daemon apps (background noise, servers) never "finish": they are
    /// excluded from [`Kernel::all_apps_done`].
    pub daemon: bool,
}

impl AppSpec {
    /// An application with the given initial threads.
    pub fn new(name: impl Into<String>, threads: Vec<ThreadSpec>) -> AppSpec {
        AppSpec {
            name: name.into(),
            threads,
            daemon: false,
        }
    }

    /// Mark as a daemon (excluded from completion tracking).
    pub fn daemon(mut self) -> AppSpec {
        self.daemon = true;
        self
    }
}

/// Deferred control operations, scheduled at absolute times.
pub(crate) enum ControlOp {
    StartApp(AppId, Vec<ThreadSpec>),
    /// Clear the affinity mask of every task of an app (the `taskset`
    /// command in the Figure 6 experiment).
    UnpinApp(AppId),
}

pub(crate) enum Event {
    /// The current run segment of `cpu` completed (if `gen` is current).
    RunDone { cpu: CpuId, gen: u64 },
    /// Timer expiry for a timed sleep.
    TimerWake { tid: Tid },
    /// A spin-barrier arrival exceeded its spin budget.
    SpinTimeout {
        tid: Tid,
        barrier: BarrierId,
        generation: u64,
    },
    /// Re-run the scheduling decision on a CPU.
    Resched(CpuId),
    /// A released spinner should continue executing its behaviour.
    Continue(Tid),
    /// Deferred control operation.
    Control(ControlOp),
    /// Fault injection (spurious wakeup, hotplug).
    Fault(FaultOp),
}

/// What the merged event sources deliver next: a queue event, or a tick
/// from the batched per-CPU tick lane (see [`crate::ticks::TickLane`]).
enum Pending {
    Queue,
    Tick(CpuId),
}

/// Where a task stands in its behaviour program.
pub(crate) enum Cont {
    /// Ask the behaviour for the next action.
    NeedAction,
    /// Partially executed run segment.
    Run { left: Dur },
    /// Spinning at a barrier until released or until the timeout event.
    Spin { barrier: BarrierId, generation: u64 },
    /// Blocked on a synchronisation object or timer.
    Blocked,
    /// Spuriously woken out of a blocking operation that has not completed:
    /// re-execute it at the next dispatch (and possibly re-block).
    Retry(BlockedOn),
    /// Exited.
    Done,
}

/// Per-task kernel-side runtime state (behaviour + continuation).
pub(crate) struct TaskRt {
    pub(crate) behavior: Option<Box<dyn Behavior>>,
    pub(crate) cont: Cont,
    pub(crate) rng: SimRng,
    /// Value delivered by the last queue get.
    pub(crate) pending_value: Option<u64>,
    /// Application this task belongs to.
    pub(crate) app: AppId,
    /// Detached threads don't count toward app completion.
    pub(crate) detached: bool,
    /// What the task is blocked on while `cont` is [`Cont::Blocked`]
    /// (the record fault injection needs to wake it spuriously).
    pub(crate) blocked_on: Option<BlockedOn>,
}

/// Per-CPU execution state.
pub(crate) struct Cpu {
    pub(crate) current: Option<Tid>,
    /// `false` while hotplugged out by fault injection.
    pub(crate) online: bool,
    /// Whether a tick event for this CPU is in flight (so hotplug
    /// online/offline cycles never double-arm the tick chain).
    pub(crate) tick_armed: bool,
    /// Task that ran most recently (to skip context-switch cost when a task
    /// is re-picked immediately).
    pub(crate) last_tid: Option<Tid>,
    /// Current segment: when it started, overhead absorbed, work accounted.
    seg_start: Time,
    seg_overhead: Dur,
    seg_accounted: Dur,
    /// Remaining work of the current Run segment when it started.
    seg_run_left: Dur,
    /// Pending overhead to fold into the next segment (context switch cost
    /// charged before the task reaches its next Run).
    pending_overhead: Dur,
    run_event: Option<EventId>,
    run_gen: u64,
    /// Whether the segment fields describe the *current* task's active
    /// run/spin segment (false while a task is between actions, so stale
    /// fields are never accounted to the wrong task).
    seg_active: bool,
    pub(crate) resched_pending: bool,
    stats: CpuStats,
}

impl Cpu {
    fn new() -> Cpu {
        Cpu {
            current: None,
            online: true,
            tick_armed: false,
            last_tid: None,
            seg_start: Time::ZERO,
            seg_overhead: Dur::ZERO,
            seg_accounted: Dur::ZERO,
            seg_run_left: Dur::ZERO,
            pending_overhead: Dur::ZERO,
            run_event: None,
            run_gen: 0,
            seg_active: false,
            resched_pending: false,
            stats: CpuStats::default(),
        }
    }
}

/// Outcome of interpreting behaviour actions on a CPU.
enum InterpretEnd {
    /// A run/spin segment was installed; the CPU keeps executing.
    Running,
    /// The current task blocked, yielded or exited; the CPU needs a pick.
    NeedsPick,
}

/// The simulated kernel. See the module docs for the execution model.
pub struct Kernel {
    pub(crate) topo: Topology,
    pub(crate) cfg: SimConfig,
    pub(crate) now: Time,
    pub(crate) events: EventQueue<Event>,
    /// Batched per-CPU tick deadlines, merged with `events` by (time, seq).
    ticks: TickLane,
    pub(crate) sched: Box<dyn Scheduler>,
    pub(crate) tasks: TaskTable,
    pub(crate) trt: Vec<Option<TaskRt>>,
    pub(crate) cpus: Vec<Cpu>,
    pub(crate) sync: SyncTable,
    pub(crate) apps: Vec<AppStats>,
    live_apps: usize,
    pub(crate) counters: Counters,
    hash: DecisionHash,
    pub(crate) trace: simcore::TraceBuffer<TraceEvent>,
    /// Tracing enabled? Cached from `cfg.trace_capacity > 0` (or a sink
    /// being installed) so the hot paths skip building [`TraceEvent`]s
    /// entirely when tracing is off.
    pub(crate) trace_on: bool,
    /// Streaming observer for trace events (SchedScope export). `None` in
    /// normal runs; see [`Kernel::set_trace_sink`].
    trace_sink: Option<Box<dyn TraceSink>>,
    /// Distribution behind `Counters::max_runnable_wait`: how long each
    /// dispatched task sat runnable before getting the CPU.
    run_delay: Histogram,
    /// Subset of `run_delay` where the wait started at a wakeup (rather
    /// than a preemption): the paper's wakeup→dispatch latency, the
    /// distribution in which ULE's disabled wakeup preemption shows up.
    wakeup_latency: Histogram,
    rng: SimRng,
    ticking: bool,
    /// Reused buffer for `balance_tick` target CPUs (no per-tick allocation).
    balance_buf: Vec<CpuId>,
    /// Strict checking enabled? Cached from `cfg.check` so the disabled
    /// path is one predictable branch per event.
    check_on: bool,
    /// Fault injection enabled? Cached from `cfg.faults.active()`.
    faults_on: bool,
    /// Dedicated RNG stream for fault injection, forked off the main seed
    /// so faulty runs replay bit-identically.
    pub(crate) fault_rng: SimRng,
    /// Scratch buffers for the invariant checker (reused every event).
    pub(crate) check_tids: Vec<Tid>,
    pub(crate) check_seen: Vec<u8>,
    /// SchedGuard budget, copied out of the config. `budget_on` caches
    /// `budget.active()` so an absent budget costs one branch per event.
    budget: RunBudget,
    budget_on: bool,
    /// SchedGuard no-progress watchdog state.
    watch: Watch,
    /// Cooperative cancellation, polled every few thousand events.
    cancel: Option<CancelToken>,
    /// Tasks spawned and not yet exited (for the live-task budget).
    live_tasks: usize,
}

impl Kernel {
    /// Build a kernel for `topo`, driven by `sched`.
    pub fn new(topo: Topology, cfg: SimConfig, sched: Box<dyn Scheduler>) -> Kernel {
        let ncpu = topo.nr_cpus();
        let mut rng = SimRng::new(cfg.seed);
        let trace = simcore::TraceBuffer::with_capacity(cfg.trace_capacity);
        let trace_on = cfg.trace_capacity > 0;
        let check_on = cfg.check == CheckMode::Strict;
        let faults_on = cfg.faults.active();
        let fault_rng = rng.fork(0xFA17);
        let events = match cfg.event_queue {
            Some(b) => EventQueue::with_backend(b),
            None => EventQueue::new(),
        };
        let budget = cfg.budget.clone();
        let budget_on = budget.active();
        let watch = Watch::new(cfg.watchdog_stall_events, cfg.watchdog_pingpong);
        Kernel {
            topo,
            cfg,
            now: Time::ZERO,
            events,
            ticks: TickLane::new(ncpu),
            sched,
            tasks: TaskTable::new(),
            trt: Vec::new(),
            cpus: (0..ncpu).map(|_| Cpu::new()).collect(),
            sync: SyncTable::new(),
            apps: Vec::new(),
            live_apps: 0,
            counters: Counters::default(),
            hash: DecisionHash::default(),
            trace,
            trace_on,
            trace_sink: None,
            run_delay: Histogram::new(),
            wakeup_latency: Histogram::new(),
            rng,
            ticking: false,
            balance_buf: Vec::new(),
            check_on,
            faults_on,
            fault_rng,
            check_tids: Vec::new(),
            check_seen: Vec::new(),
            budget,
            budget_on,
            watch,
            cancel: None,
            live_tasks: 0,
        }
    }

    // ------------------------------------------------------------------
    // Public setup & introspection API
    // ------------------------------------------------------------------

    /// Schedule an application to start at `at`. Returns its id.
    pub fn queue_app(&mut self, at: Time, spec: AppSpec) -> AppId {
        let app = AppId(self.apps.len() as u32);
        let group = GroupId(self.apps.len() as u32 + 1); // 0 is the root
        let mut stats = AppStats::new(spec.name, group);
        stats.daemon = spec.daemon;
        self.apps.push(stats);
        if !spec.daemon {
            self.live_apps += 1;
        }
        self.events
            .push(at, Event::Control(ControlOp::StartApp(app, spec.threads)));
        app
    }

    /// Schedule the affinity masks of all of `app`'s tasks to be cleared at
    /// `at` (the `taskset` unpin of the Figure 6 experiment).
    pub fn queue_unpin(&mut self, at: Time, app: AppId) {
        self.events
            .push(at, Event::Control(ControlOp::UnpinApp(app)));
    }

    /// Create a synchronisation mutex (usable by behaviours).
    pub fn new_mutex(&mut self) -> MutexId {
        self.sync.new_mutex()
    }
    /// Create a counting semaphore.
    pub fn new_sem(&mut self, initial: u64) -> SemId {
        self.sync.new_sem(initial)
    }
    /// Create a cyclic barrier.
    pub fn new_barrier(&mut self, parties: usize) -> BarrierId {
        self.sync.new_barrier(parties)
    }
    /// Create a bounded queue.
    pub fn new_queue(&mut self, capacity: usize) -> QueueId {
        self.sync.new_queue(capacity)
    }
    /// Create a shared work pool.
    pub fn new_pool(&mut self, items: u64) -> PoolId {
        self.sync.new_pool(items)
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The scheduler's name ("cfs", "ule", ...).
    pub fn sched_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Global activity counters.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Per-CPU work/overhead accounting.
    pub fn cpu_stats(&self, cpu: CpuId) -> &CpuStats {
        &self.cpus[cpu.index()].stats
    }

    /// Statistics of an application.
    pub fn app(&self, app: AppId) -> &AppStats {
        &self.apps[app.0 as usize]
    }

    /// Number of applications registered.
    pub fn nr_apps(&self) -> usize {
        self.apps.len()
    }

    /// `true` once every registered application has finished.
    pub fn all_apps_done(&self) -> bool {
        self.live_apps == 0
    }

    /// Tids of all tasks (live or dead) belonging to `app`, in spawn order.
    pub fn app_tasks(&self, app: AppId) -> Vec<Tid> {
        (0..self.trt.len() as u32)
            .map(Tid)
            .filter(|t| {
                self.trt[t.index()]
                    .as_ref()
                    .map(|rt| rt.app == app)
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Read access to a task.
    pub fn task(&self, tid: Tid) -> &Task {
        self.tasks.get(tid)
    }

    /// Read access to the whole task table (exited tasks stay resolvable —
    /// the kernel never removes entries — so post-run trace replays can
    /// look up names the same way a live [`TraceSink`] does).
    pub fn tasks(&self) -> &TaskTable {
        &self.tasks
    }

    /// Total CPU work performed by a task so far.
    pub fn task_runtime(&self, tid: Tid) -> Dur {
        self.tasks.get(tid).sum_exec
    }

    /// Scheduler-internal per-task state (vruntime / penalty / ...).
    pub fn snapshot(&self, tid: Tid) -> TaskSnapshot {
        self.sched.snapshot(&self.tasks, tid)
    }

    /// Number of tasks on `cpu`'s runqueue, including the running one.
    pub fn nr_queued(&self, cpu: CpuId) -> usize {
        self.sched.nr_queued(cpu)
    }

    /// The task currently running on `cpu`, if any.
    pub fn current(&self, cpu: CpuId) -> Option<Tid> {
        self.cpus[cpu.index()].current
    }

    /// The determinism digest over all scheduling decisions so far.
    pub fn decision_digest(&self) -> u64 {
        self.hash.digest()
    }

    /// The flight-recorder trace (empty unless
    /// [`SimConfig::trace_capacity`] is set).
    pub fn trace(&self) -> &simcore::TraceBuffer<TraceEvent> {
        &self.trace
    }

    /// Resize the flight-recorder buffer (discarding recorded events) and
    /// enable/disable tracing accordingly. Call before running; tracing
    /// never alters scheduling decisions, only what is observed.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.cfg.trace_capacity = capacity;
        self.trace = simcore::TraceBuffer::with_capacity(capacity);
        self.trace_on = capacity > 0 || self.trace_sink.is_some();
    }

    /// Install a streaming trace observer. Every subsequent trace event is
    /// handed to `sink` as it happens, in addition to the flight-recorder
    /// buffer (if any) — so full-scale runs can export complete traces
    /// without an unbounded in-memory buffer. Implicitly enables tracing.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace_sink = Some(sink);
        self.trace_on = true;
    }

    /// Remove and return the installed trace sink (e.g. to flush/finish
    /// it after a run). Tracing stays on only if a buffer is configured.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        let sink = self.trace_sink.take();
        self.trace_on = self.cfg.trace_capacity > 0;
        sink
    }

    /// Install (or replace) the SchedGuard resource budget. May be called
    /// after construction — e.g. by a driver that built the kernel through
    /// a generic path — and even mid-run to tighten limits.
    pub fn set_budget(&mut self, budget: RunBudget) {
        self.budget_on = budget.active();
        self.cfg.budget = budget.clone();
        self.budget = budget;
    }

    /// Reconfigure the no-progress watchdog (`stall_events` consecutive
    /// events at one instant; `pingpong` no-progress migrations between one
    /// CPU pair). 0 disables the respective detector.
    pub fn set_watchdog(&mut self, stall_events: u32, pingpong: u32) {
        self.cfg.watchdog_stall_events = stall_events;
        self.cfg.watchdog_pingpong = pingpong;
        self.watch = Watch::new(stall_events, pingpong);
    }

    /// Attach a cooperative cancellation token, polled at event-batch
    /// boundaries. When it reports cancelled, the run aborts with
    /// [`SimError::Cancelled`]; all observed state stays readable.
    pub fn set_cancel_token(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Number of currently live (spawned and not yet exited) tasks.
    pub fn live_tasks(&self) -> usize {
        self.live_tasks
    }

    /// Distribution of runnable→running dispatch delays (all dispatches).
    pub fn run_delay(&self) -> &Histogram {
        &self.run_delay
    }

    /// Distribution of wakeup→dispatch delays (dispatches whose wait
    /// started at a wakeup rather than a preemption).
    pub fn wakeup_latency(&self) -> &Histogram {
        &self.wakeup_latency
    }

    /// Record `ev` into the flight recorder and the streaming sink (if
    /// any). Callers gate on `self.trace_on` so the disabled path stays
    /// free of event construction.
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if let Some(sink) = self.trace_sink.as_mut() {
            sink.event(&ev, &self.tasks);
        }
        self.trace.push(ev);
    }

    // ------------------------------------------------------------------
    // Simulation driving
    // ------------------------------------------------------------------

    /// Run the simulation up to and including events at `until`.
    ///
    /// Panics on a [`SimError`]; use [`Kernel::try_run_until`] to handle
    /// inconsistencies gracefully (crash bundle, nonzero exit).
    pub fn run_until(&mut self, until: Time) {
        if let Err(e) = self.try_run_until(until) {
            panic!("{e}");
        }
    }

    /// Run the simulation up to and including events at `until`, returning
    /// a structured error instead of panicking if the kernel, a scheduler,
    /// or (in strict mode) an invariant check detects an inconsistency.
    pub fn try_run_until(&mut self, until: Time) -> Result<(), SimError> {
        self.ensure_ticking();
        while let Some((at, next)) = self.peek_next() {
            if at > until {
                break;
            }
            self.step(at, next)?;
        }
        if until > self.now {
            self.now = until;
        }
        Ok(())
    }

    /// Run until every registered app finished, or until `limit`.
    /// Returns `true` if all apps completed.
    ///
    /// Panics on a [`SimError`]; use [`Kernel::try_run_until_apps_done`]
    /// to handle inconsistencies gracefully.
    pub fn run_until_apps_done(&mut self, limit: Time) -> bool {
        match self.try_run_until_apps_done(limit) {
            Ok(done) => done,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run until every registered app finished, or until `limit`.
    /// Returns `Ok(true)` if all apps completed, `Ok(false)` on timeout,
    /// and `Err` if an inconsistency was detected.
    pub fn try_run_until_apps_done(&mut self, limit: Time) -> Result<bool, SimError> {
        self.ensure_ticking();
        while self.live_apps > 0 {
            let Some((at, next)) = self.peek_next() else {
                break;
            };
            if at > limit {
                self.now = limit;
                return Ok(false);
            }
            self.step(at, next)?;
        }
        Ok(self.live_apps == 0)
    }

    /// The next thing to process across the merged event sources (queue
    /// events and batched ticks), ordered by the shared `(time, seq)` key.
    fn peek_next(&mut self) -> Option<(Time, Pending)> {
        let q = self.events.peek_key();
        let t = self.ticks.peek();
        match (q, t) {
            (None, None) => None,
            (Some((qt, _)), None) => Some((qt, Pending::Queue)),
            (None, Some((tt, _, cpu))) => Some((tt, Pending::Tick(cpu))),
            (Some((qt, qs)), Some((tt, ts, cpu))) => {
                if (tt, ts) < (qt, qs) {
                    Some((tt, Pending::Tick(cpu)))
                } else {
                    Some((qt, Pending::Queue))
                }
            }
        }
    }

    /// Advance the clock to `at` and process one pending item.
    fn step(&mut self, at: Time, next: Pending) -> Result<(), SimError> {
        debug_assert!(at >= self.now);
        self.now = at;
        self.counters.events += 1;
        self.guard_step(at)?;
        // While a same-time event chain is in flight, keep a compact window
        // of what it is doing — the diagnosable payload of a livelock
        // report. Off the stalled path this is a dead branch.
        let recording = self.watch.stall_limit > 0 && self.watch.recording();
        match next {
            Pending::Tick(cpu) => {
                if recording {
                    self.watch.record(WatchRec {
                        at,
                        code: 0,
                        a: cpu.0,
                        b: 0,
                    });
                }
                self.ticks.disarm(cpu.index());
                self.on_tick(cpu);
            }
            Pending::Queue => {
                let Some((_, ev)) = self.events.pop() else {
                    return Err(SimError::EventQueueCorrupt { at: self.now });
                };
                if recording {
                    let rec = Self::describe_event(at, &ev);
                    self.watch.record(rec);
                }
                self.handle(ev)?;
            }
        }
        if self.check_on {
            self.run_checks()?;
        }
        Ok(())
    }

    /// SchedGuard per-event enforcement: budget ceilings, the stall
    /// watchdog, and the (amortized) cancellation poll. Deliberately does
    /// not touch any state scheduling decisions depend on, so supervised
    /// runs that complete produce bit-identical digests to unsupervised
    /// ones.
    #[inline]
    fn guard_step(&mut self, at: Time) -> Result<(), SimError> {
        if self.budget_on {
            if let Some(max) = self.budget.max_events {
                if self.counters.events > max {
                    return Err(SimError::BudgetExceeded {
                        at,
                        kind: BudgetKind::Events,
                        limit: max,
                        used: self.counters.events,
                    });
                }
            }
            if let Some(max) = self.budget.max_sim_time {
                if at > Time::ZERO + max {
                    return Err(SimError::BudgetExceeded {
                        at,
                        kind: BudgetKind::SimTime,
                        limit: max.as_nanos(),
                        used: at.saturating_since(Time::ZERO).as_nanos(),
                    });
                }
            }
            if let Some(max) = self.budget.max_queue_depth {
                let depth = self.events.len();
                if depth > max {
                    return Err(SimError::BudgetExceeded {
                        at,
                        kind: BudgetKind::QueueDepth,
                        limit: max as u64,
                        used: depth as u64,
                    });
                }
            }
        }
        if self.watch.stall_limit > 0 && self.watch.note_event(at) {
            let stalled = self.watch.stall;
            return Err(self.livelock(format!(
                "simulated time stalled at {at} for {stalled} consecutive events"
            )));
        }
        if let Some(token) = &self.cancel {
            // Amortize the wall-clock read: poll every 4096 events.
            if self.counters.events & 0xFFF == 0 && token.cancelled() {
                return Err(SimError::Cancelled { at });
            }
        }
        Ok(())
    }

    /// Build a [`SimError::Livelock`] carrying the recent-event window.
    fn livelock(&self, detail: String) -> SimError {
        SimError::Livelock {
            at: self.now,
            detail,
            window: self.watch.window(),
        }
    }

    /// Compact descriptor of a queue event for the watchdog window.
    fn describe_event(at: Time, ev: &Event) -> WatchRec {
        let (code, a, b) = match ev {
            Event::RunDone { cpu, gen } => (1, cpu.0, *gen as u32),
            Event::TimerWake { tid } => (2, tid.0, 0),
            Event::SpinTimeout { tid, barrier, .. } => (3, tid.0, barrier.0),
            Event::Resched(cpu) => (4, cpu.0, 0),
            Event::Continue(tid) => (5, tid.0, 0),
            Event::Control(_) => (6, 0, 0),
            Event::Fault(_) => (7, 0, 0),
        };
        WatchRec { at, code, a, b }
    }

    /// Arm `cpu`'s next scheduler tick at `at`, reserving its place in the
    /// event order from the queue's sequence counter.
    pub(crate) fn arm_tick(&mut self, cpu: CpuId, at: Time) {
        let seq = self.events.alloc_seq();
        self.ticks.arm(cpu.index(), at, seq);
        self.cpus[cpu.index()].tick_armed = true;
    }

    fn ensure_ticking(&mut self) {
        if self.ticking {
            return;
        }
        self.ticking = true;
        let n = self.cpus.len() as u64;
        for i in 0..n {
            // Stagger ticks across CPUs as real machines do, avoiding
            // artificial lock-step between cores.
            let offset = Dur(self.cfg.tick.as_nanos() * i / n);
            self.arm_tick(CpuId(i as u32), self.now + self.cfg.tick + offset);
        }
        if self.faults_on {
            if let Some(p) = self.cfg.faults.spurious_wake_period {
                self.events
                    .push(self.now + p, Event::Fault(FaultOp::SpuriousWake));
            }
            if let Some(p) = self.cfg.faults.hotplug_period {
                self.events
                    .push(self.now + p, Event::Fault(FaultOp::Offline));
            }
        }
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) -> Result<(), SimError> {
        match ev {
            Event::RunDone { cpu, gen } => self.on_run_done(cpu, gen),
            Event::TimerWake { tid } => self.on_timer_wake(tid),
            Event::SpinTimeout {
                tid,
                barrier,
                generation,
            } => self.on_spin_timeout(tid, barrier, generation),
            Event::Resched(cpu) => self.on_resched(cpu),
            Event::Continue(tid) => self.on_continue(tid),
            Event::Control(op) => self.on_control(op),
            Event::Fault(op) => self.on_fault(op),
        }
    }

    fn on_tick(&mut self, cpu: CpuId) {
        if !self.cpus[cpu.index()].online {
            // The tick chain dies while the CPU is down; cpu_online re-arms.
            self.cpus[cpu.index()].tick_armed = false;
            return;
        }
        self.account_segment(cpu);
        if let Some(curr) = self.cpus[cpu.index()].current {
            if let Preempt::Yes(cause) = self.sched.task_tick(&mut self.tasks, cpu, curr, self.now)
            {
                self.request_resched(cpu, cause);
            }
        }
        // The balance target buffer is owned by the kernel and reused every
        // tick, so the hot path does not allocate.
        let mut targets = std::mem::take(&mut self.balance_buf);
        targets.clear();
        self.sched
            .balance_tick(&mut self.tasks, cpu, self.now, &mut targets);
        self.counters.migrations += targets.len() as u64;
        for &t in &targets {
            self.events.push(self.now, Event::Resched(t));
        }
        self.balance_buf = targets;
        let mut next = self.now + self.cfg.tick;
        if self.faults_on {
            let f = &self.cfg.faults;
            if f.missed_tick_pct > 0 && self.fault_rng.gen_below(100) < u64::from(f.missed_tick_pct)
            {
                next += self.cfg.tick; // this tick is lost entirely
            }
            if !f.tick_jitter.is_zero() {
                next += Dur(self.fault_rng.gen_below(f.tick_jitter.as_nanos() + 1));
            }
        }
        self.arm_tick(cpu, next);
    }

    fn on_run_done(&mut self, cpu: CpuId, gen: u64) -> Result<(), SimError> {
        let c = &mut self.cpus[cpu.index()];
        if c.run_gen != gen {
            return Ok(()); // stale completion
        }
        c.run_event = None;
        let Some(tid) = c.current else { return Ok(()) };
        self.account_segment(cpu);
        self.rt_mut(tid)?.cont = Cont::NeedAction;
        if let InterpretEnd::NeedsPick = self.interpret(cpu)? {
            self.pick_and_run(cpu)?;
        }
        Ok(())
    }

    fn on_timer_wake(&mut self, tid: Tid) -> Result<(), SimError> {
        if !self.tasks.contains(tid) || self.tasks.get(tid).state != TaskState::Sleeping {
            return Ok(());
        }
        // A stale timer (the task was spuriously woken, proceeded past its
        // sleep and blocked on something else) must not wake the task.
        let now = self.now;
        match self.rt_mut(tid)?.blocked_on {
            Some(BlockedOn::Timer { deadline }) if deadline <= now => {}
            _ => return Ok(()),
        }
        self.rt_mut(tid)?.cont = Cont::NeedAction;
        self.wake_task(tid, None)
    }

    fn on_spin_timeout(
        &mut self,
        tid: Tid,
        barrier: BarrierId,
        generation: u64,
    ) -> Result<(), SimError> {
        // Validate the task is still spinning on this barrier generation.
        let still_spinning = matches!(
            self.trt[tid.index()].as_ref().map(|rt| &rt.cont),
            Some(Cont::Spin { barrier: b, generation: g }) if *b == barrier && *g == generation
        );
        if !still_spinning {
            return Ok(());
        }
        if !self.sync.barrier_spin_timeout(barrier, tid, generation) {
            return Ok(());
        }
        // The spinner becomes a blocked waiter (it goes to sleep).
        let rt = self.rt_mut(tid)?;
        rt.cont = Cont::Blocked;
        rt.blocked_on = Some(BlockedOn::Barrier {
            barrier,
            generation,
        });
        let cpu = self.tasks.get(tid).cpu;
        let is_current = self.cpus[cpu.index()].current == Some(tid);
        if is_current {
            self.account_segment(cpu);
            self.block_current(cpu, tid);
            self.pick_and_run(cpu)?;
        } else {
            // Preempted mid-spin: remove from the runqueue and sleep.
            self.sched
                .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Sleep, self.now);
            let t = self.tasks.get_mut(tid);
            t.state = TaskState::Sleeping;
            t.sleep_start = self.now;
            t.on_rq = false;
        }
        Ok(())
    }

    fn on_resched(&mut self, cpu: CpuId) -> Result<(), SimError> {
        if !self.cpus[cpu.index()].online {
            return Ok(()); // stale reschedule of a hotplugged-out CPU
        }
        let c = &self.cpus[cpu.index()];
        if c.current.is_none() {
            return self.pick_and_run(cpu);
        }
        if !c.resched_pending {
            return Ok(());
        }
        self.cpus[cpu.index()].resched_pending = false;
        self.preempt_current(cpu)?;
        self.pick_and_run(cpu)
    }

    fn on_continue(&mut self, tid: Tid) -> Result<(), SimError> {
        // A spinner released by a barrier while it was running.
        if !self.tasks.contains(tid) {
            return Ok(());
        }
        let cpu = self.tasks.get(tid).cpu;
        if self.cpus[cpu.index()].current != Some(tid) {
            return Ok(()); // it was preempted meanwhile; dispatch will continue it
        }
        if !matches!(
            self.trt[tid.index()].as_ref().map(|rt| &rt.cont),
            Some(Cont::NeedAction)
        ) {
            return Ok(());
        }
        self.account_segment(cpu);
        if let InterpretEnd::NeedsPick = self.interpret(cpu)? {
            self.pick_and_run(cpu)?;
        }
        Ok(())
    }

    fn on_control(&mut self, op: ControlOp) -> Result<(), SimError> {
        match op {
            ControlOp::StartApp(app, threads) => {
                self.apps[app.0 as usize].started = Some(self.now);
                for spec in threads {
                    self.spawn_thread(app, spec, None)?;
                }
            }
            ControlOp::UnpinApp(app) => {
                let tids = self.app_tasks(app);
                for tid in tids {
                    if self.tasks.contains(tid) {
                        self.tasks.get_mut(tid).affinity = None;
                    }
                }
            }
        }
        Ok(())
    }

    /// Look up a task's runtime state, failing with context instead of
    /// panicking when the slot is empty (the old `expect("live")` sites).
    pub(crate) fn rt_mut(&mut self, tid: Tid) -> Result<&mut TaskRt, SimError> {
        let at = self.now;
        self.trt
            .get_mut(tid.index())
            .and_then(|o| o.as_mut())
            .ok_or(SimError::TaskStateLost { tid, at })
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    fn spawn_thread(
        &mut self,
        app: AppId,
        spec: ThreadSpec,
        parent: Option<Tid>,
    ) -> Result<Tid, SimError> {
        let group = self.apps[app.0 as usize].group;
        let ThreadSpec {
            name,
            nice,
            affinity,
            kernel_thread,
            inherit_history,
            detached,
            behavior,
        } = spec;
        let now = self.now;
        let tid = self.tasks.insert_with(|tid| {
            let mut t = Task::new(tid, name, group);
            t.nice = nice;
            t.affinity = affinity;
            t.kernel_thread = kernel_thread;
            t.inherit_history = inherit_history;
            t.parent = parent;
            t.last_ran = now;
            t.last_wakeup = now;
            t
        });
        if tid.index() >= self.trt.len() {
            self.trt.resize_with(tid.index() + 1, || None);
        }
        let rng = self.rng.fork(tid.0 as u64);
        self.trt[tid.index()] = Some(TaskRt {
            behavior: Some(behavior),
            cont: Cont::NeedAction,
            rng,
            pending_value: None,
            app,
            detached,
            blocked_on: None,
        });
        let a = &mut self.apps[app.0 as usize];
        if !detached {
            a.live += 1;
        }
        a.spawned += 1;
        self.counters.spawns += 1;
        self.live_tasks += 1;
        if let Some(max) = self.budget.max_live_tasks {
            if self.live_tasks > max {
                return Err(SimError::BudgetExceeded {
                    at: self.now,
                    kind: BudgetKind::LiveTasks,
                    limit: max as u64,
                    used: self.live_tasks as u64,
                });
            }
        }

        self.sched.task_fork(&self.tasks, tid, parent, self.now);
        self.place_and_enqueue(tid, parent, true)?;
        Ok(tid)
    }

    /// Place a task (new or waking) and enqueue it, charging placement-scan
    /// cost to the CPU doing the wakeup.
    fn place_and_enqueue(
        &mut self,
        tid: Tid,
        waker: Option<Tid>,
        is_new: bool,
    ) -> Result<(), SimError> {
        let waking_cpu = match waker {
            Some(w) if self.tasks.contains(w) => self.tasks.get(w).cpu,
            _ => self.tasks.get(tid).last_cpu,
        };
        let kind = if is_new {
            WakeKind::New
        } else {
            WakeKind::Wakeup { waker }
        };
        let mut stats = SelectStats::default();
        let target =
            self.sched
                .select_task_rq(&self.tasks, tid, kind, waking_cpu, self.now, &mut stats);
        if !self.tasks.get(tid).allowed_on(target) {
            return Err(SimError::AffinityViolated {
                tid,
                cpu: target,
                at: self.now,
            });
        }
        if !self.cpus[target.index()].online {
            return Err(SimError::Invariant {
                at: self.now,
                detail: format!("scheduler placed {tid} on offline {target}"),
            });
        }
        self.counters.placement_scans += stats.cpus_scanned as u64;
        let scan_cost = self
            .cfg
            .select_scan_cost_per_cpu
            .saturating_mul(stats.cpus_scanned as u64);
        self.charge_overhead(waking_cpu, scan_cost);

        let t = self.tasks.get_mut(tid);
        t.cpu = target;
        t.state = TaskState::Runnable;
        t.on_rq = true;
        t.last_wakeup = self.now;
        let ekind = if is_new {
            EnqueueKind::New
        } else {
            EnqueueKind::Wakeup
        };
        let preempt = self
            .sched
            .enqueue_task(&mut self.tasks, target, tid, ekind, self.now);
        self.hash.record(1, self.now, tid.0, target.0);
        if self.trace_on && !is_new {
            self.emit(TraceEvent::Wakeup {
                at: self.now,
                tid,
                cpu: target,
                waker,
            });
        }
        let idle = self.cpus[target.index()].current.is_none();
        match preempt {
            Preempt::Yes(cause) if !idle => {
                let victim = self.cpus[target.index()].current;
                self.cpus[target.index()].resched_pending = true;
                self.counters.preemptions += 1;
                self.counters.wakeup_preemptions += 1;
                if self.trace_on {
                    if let Some(victim) = victim {
                        self.emit(TraceEvent::Preempt {
                            at: self.now,
                            cpu: target,
                            victim,
                            by: Some(tid),
                            cause,
                        });
                    }
                }
                self.events.push(self.now, Event::Resched(target));
            }
            _ if idle => {
                self.events.push(self.now, Event::Resched(target));
            }
            _ => {}
        }
        Ok(())
    }

    pub(crate) fn wake_task(&mut self, tid: Tid, waker: Option<Tid>) -> Result<(), SimError> {
        debug_assert_eq!(self.tasks.get(tid).state, TaskState::Sleeping);
        self.rt_mut(tid)?.blocked_on = None;
        self.counters.wakeups += 1;
        self.hash.record(2, self.now, tid.0, 0);
        self.place_and_enqueue(tid, waker, false)
    }

    // ------------------------------------------------------------------
    // Segment accounting & overhead
    // ------------------------------------------------------------------

    /// Bring the current task's `sum_exec` up to date with the work done in
    /// the active segment.
    fn account_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        if !c.seg_active {
            return;
        }
        let Some(tid) = c.current else { return };
        let elapsed = self.now.saturating_since(c.seg_start);
        let total_work = elapsed.saturating_sub(c.seg_overhead);
        let delta = total_work.saturating_sub(c.seg_accounted);
        if !delta.is_zero() {
            c.seg_accounted = total_work;
            c.stats.work += delta;
            self.tasks.get_mut(tid).sum_exec += delta;
        }
    }

    /// Charge `cost` of kernel-mode time to `cpu`, postponing the running
    /// segment's completion.
    fn charge_overhead(&mut self, cpu: CpuId, cost: Dur) {
        if cost.is_zero() {
            return;
        }
        let c = &mut self.cpus[cpu.index()];
        c.stats.overhead += cost;
        if let Some(ev) = c.run_event.take() {
            // Active run segment: postpone its completion.
            c.seg_overhead += cost;
            self.events.cancel(ev);
            let done_at = c.seg_start + c.seg_run_left + c.seg_overhead;
            let gen = c.run_gen;
            c.run_event = Some(self.events.push(done_at, Event::RunDone { cpu, gen }));
        } else if c.current.is_some() && c.seg_active && c.seg_run_left == Dur::MAX {
            // Active spin segment: the spin absorbs the cost.
            c.seg_overhead += cost;
        } else {
            // Idle CPU, or a task between actions: fold the cost into the
            // next segment started on this CPU.
            c.pending_overhead += cost;
        }
    }

    /// Install a run segment of `left` work for the current task on `cpu`.
    fn start_run_segment(&mut self, cpu: CpuId, left: Dur) {
        let c = &mut self.cpus[cpu.index()];
        debug_assert!(c.current.is_some());
        c.seg_start = self.now;
        c.seg_overhead = std::mem::take(&mut c.pending_overhead);
        c.seg_accounted = Dur::ZERO;
        c.seg_run_left = left;
        c.seg_active = true;
        c.run_gen += 1;
        let gen = c.run_gen;
        let done_at = c.seg_start + left + c.seg_overhead;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
        c.run_event = Some(self.events.push(done_at, Event::RunDone { cpu, gen }));
    }

    /// Install an open-ended spin segment (no completion event; ended by
    /// barrier release or spin timeout).
    fn start_spin_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        debug_assert!(c.current.is_some());
        c.seg_start = self.now;
        c.seg_overhead = std::mem::take(&mut c.pending_overhead);
        c.seg_accounted = Dur::ZERO;
        c.seg_run_left = Dur::MAX;
        c.seg_active = true;
        c.run_gen += 1;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
    }

    /// Cancel any armed completion event for `cpu`'s segment.
    fn cancel_segment(&mut self, cpu: CpuId) {
        let c = &mut self.cpus[cpu.index()];
        c.seg_active = false;
        c.run_gen += 1;
        if let Some(ev) = c.run_event.take() {
            self.events.cancel(ev);
        }
    }

    // ------------------------------------------------------------------
    // Scheduling core
    // ------------------------------------------------------------------

    fn request_resched(&mut self, cpu: CpuId, cause: PreemptCause) {
        let c = &mut self.cpus[cpu.index()];
        let Some(victim) = c.current else { return };
        if c.resched_pending {
            return;
        }
        c.resched_pending = true;
        self.counters.preemptions += 1;
        self.counters.tick_preemptions += 1;
        if self.trace_on {
            self.emit(TraceEvent::Preempt {
                at: self.now,
                cpu,
                victim,
                by: None,
                cause,
            });
        }
        self.events.push(self.now, Event::Resched(cpu));
    }

    /// Take the current task off the CPU, saving its remaining work, and
    /// put it back in the runqueue (involuntary preemption).
    pub(crate) fn preempt_current(&mut self, cpu: CpuId) -> Result<(), SimError> {
        self.account_segment(cpu);
        let c = &mut self.cpus[cpu.index()];
        let Some(tid) = c.current.take() else {
            return Ok(());
        };
        // Save remaining work for Run segments.
        let left = c.seg_run_left.saturating_sub(c.seg_accounted);
        self.cancel_segment(cpu);
        let penalty = self.cfg.preempt_penalty;
        let rt = self.rt_mut(tid)?;
        match rt.cont {
            Cont::Run { .. } => {
                // Involuntary preemption partially evicts the working set;
                // the refill shows up as extra work when it resumes.
                rt.cont = Cont::Run {
                    left: left + penalty,
                }
            }
            Cont::Spin { .. } => {} // spin deadline is absolute; keep state
            _ => {}
        }
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Runnable;
        t.last_ran = self.now;
        self.sched
            .put_prev_task(&mut self.tasks, cpu, tid, self.now);
        Ok(())
    }

    /// The current task on `cpu` blocks (voluntary sleep). The task keeps
    /// `Cont::Blocked`; callers must have set `sleep` bookkeeping reasons.
    fn block_current(&mut self, cpu: CpuId, tid: Tid) {
        debug_assert_eq!(self.cpus[cpu.index()].current, Some(tid));
        self.account_segment(cpu);
        self.cancel_segment(cpu);
        self.cpus[cpu.index()].current = None;
        self.sched
            .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Sleep, self.now);
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Sleeping;
        t.sleep_start = self.now;
        t.last_ran = self.now;
        t.on_rq = false;
    }

    /// The current task exits.
    fn exit_current(&mut self, cpu: CpuId, tid: Tid) -> Result<(), SimError> {
        self.account_segment(cpu);
        self.cancel_segment(cpu);
        self.cpus[cpu.index()].current = None;
        self.sched
            .dequeue_task(&mut self.tasks, cpu, tid, DequeueKind::Dead, self.now);
        self.sched.task_dead(&self.tasks, tid, self.now);
        let t = self.tasks.get_mut(tid);
        t.state = TaskState::Dead;
        t.on_rq = false;
        if self.trace_on {
            self.emit(TraceEvent::Exit { at: self.now, tid });
        }
        let rt = self.rt_mut(tid)?;
        rt.cont = Cont::Done;
        rt.behavior = None;
        let app = rt.app;
        let detached = rt.detached;
        self.live_tasks = self.live_tasks.saturating_sub(1);
        if !detached {
            let a = &mut self.apps[app.0 as usize];
            a.live -= 1;
            if a.live == 0 {
                a.finished = Some(self.now);
                if !a.daemon {
                    self.live_apps -= 1;
                }
            }
        }
        Ok(())
    }

    /// Pick tasks until one actually keeps the CPU (installs a run/spin
    /// segment) or the queue drains (CPU idles).
    fn pick_and_run(&mut self, cpu: CpuId) -> Result<(), SimError> {
        if !self.cpus[cpu.index()].online {
            return Ok(()); // hotplugged out; nothing may run here
        }
        let mut spins = 0u32;
        loop {
            // The event-level stall watchdog cannot see a pick loop that
            // never installs a segment (e.g. a behavior yielding forever:
            // no events are processed, the loop just re-picks the same
            // task at the same instant) — bound the loop itself.
            if self.watch.stall_limit > 0 {
                spins += 1;
                if spins > self.watch.stall_limit {
                    return Err(self.livelock(format!(
                        "pick loop on {cpu} cycled {spins} times at {} without installing a run/spin segment",
                        self.now
                    )));
                }
            }
            debug_assert!(self.cpus[cpu.index()].current.is_none());
            let mut picked = self.sched.pick_next_task(&mut self.tasks, cpu, self.now);
            if picked.is_none() {
                // Newidle / idle-steal balancing.
                let mut stats = SelectStats::default();
                if self
                    .sched
                    .idle_balance(&mut self.tasks, cpu, self.now, &mut stats)
                {
                    self.counters.migrations += 1;
                    picked = self.sched.pick_next_task(&mut self.tasks, cpu, self.now);
                }
            }
            let Some(tid) = picked else {
                self.cpus[cpu.index()].current = None;
                if self.trace_on {
                    self.emit(TraceEvent::Idle { at: self.now, cpu });
                }
                return Ok(());
            };
            debug_assert_eq!(self.tasks.get(tid).cpu, cpu, "picked task not on this cpu");

            // Dispatch bookkeeping.
            let prev_tid = self.cpus[cpu.index()].last_tid;
            let is_switch = prev_tid != Some(tid);
            let migrated_from = {
                let t = self.tasks.get(tid);
                if t.last_cpu != cpu && t.sum_exec > Dur::ZERO {
                    Some(t.last_cpu)
                } else {
                    None
                }
            };
            {
                let t = self.tasks.get_mut(tid);
                // The scheduling-latency headline metric: how long this
                // task sat runnable before getting the CPU. A wait that
                // started at a wakeup (not a preemption) is additionally
                // the paper's wakeup→dispatch latency.
                let from_wakeup = t.last_wakeup >= t.last_ran;
                let waited_since = if t.last_ran > t.last_wakeup {
                    t.last_ran
                } else {
                    t.last_wakeup
                };
                let wait = self.now.saturating_since(waited_since);
                t.state = TaskState::Running;
                t.last_cpu = cpu;
                if wait > self.counters.max_runnable_wait {
                    self.counters.max_runnable_wait = wait;
                }
                self.run_delay.record(wait);
                if from_wakeup {
                    self.wakeup_latency.record(wait);
                }
            }
            let c = &mut self.cpus[cpu.index()];
            c.current = Some(tid);
            c.last_tid = Some(tid);
            c.resched_pending = false;
            if is_switch {
                self.counters.ctx_switches += 1;
                self.hash.record(3, self.now, tid.0, cpu.0);
                if self.trace_on {
                    self.emit(TraceEvent::Switch {
                        at: self.now,
                        cpu,
                        from: prev_tid,
                        to: tid,
                    });
                }
                let cost = self.cfg.ctx_switch_cost;
                self.cpus[cpu.index()].pending_overhead += cost;
                self.cpus[cpu.index()].stats.overhead += cost;
            }
            if let Some(from) = migrated_from {
                if self.watch.pingpong_limit > 0 {
                    let exec = self.tasks.get(tid).sum_exec;
                    if self.watch.note_migration(tid.0, from.0, cpu.0, exec) {
                        let n = self.watch.pingpong_limit;
                        return Err(self.livelock(format!(
                            "{tid} ping-ponged between {from} and {cpu} {n} times with no execution progress"
                        )));
                    }
                }
                let dist = self.topo.distance(from, cpu) as u64;
                let cost = self.cfg.migration_cost_per_distance.saturating_mul(dist);
                self.cpus[cpu.index()].pending_overhead += cost;
                self.cpus[cpu.index()].stats.overhead += cost;
                if self.trace_on {
                    self.emit(TraceEvent::Migrate {
                        at: self.now,
                        tid,
                        from,
                        to: cpu,
                    });
                }
            }

            let cont = std::mem::replace(&mut self.rt_mut(tid)?.cont, Cont::NeedAction);
            match cont {
                Cont::Run { left } => {
                    self.rt_mut(tid)?.cont = Cont::Run { left };
                    self.start_run_segment(cpu, left);
                    return Ok(());
                }
                Cont::Spin {
                    barrier,
                    generation,
                } => {
                    self.rt_mut(tid)?.cont = Cont::Spin {
                        barrier,
                        generation,
                    };
                    self.start_spin_segment(cpu);
                    return Ok(());
                }
                Cont::NeedAction => match self.interpret(cpu)? {
                    InterpretEnd::Running => return Ok(()),
                    InterpretEnd::NeedsPick => continue,
                },
                Cont::Retry(op) => match self.retry_blocked_op(cpu, tid, op)? {
                    InterpretEnd::Running => return Ok(()),
                    InterpretEnd::NeedsPick => continue,
                },
                Cont::Blocked | Cont::Done => {
                    return Err(SimError::PickedBlockedTask {
                        tid,
                        cpu,
                        at: self.now,
                    });
                }
            }
        }
    }

    /// A spuriously woken task re-executes the blocking operation it was
    /// ripped out of. If the resource is still unavailable it re-blocks —
    /// the wake was for nothing, exactly like a real spurious wakeup — and
    /// otherwise it completes the operation and carries on.
    fn retry_blocked_op(
        &mut self,
        cpu: CpuId,
        tid: Tid,
        op: BlockedOn,
    ) -> Result<InterpretEnd, SimError> {
        let out = match op {
            BlockedOn::Timer { deadline } => {
                if self.now < deadline {
                    // Too early: go back to sleep. The original timer event
                    // is still armed and will deliver the real wakeup.
                    let rt = self.rt_mut(tid)?;
                    rt.cont = Cont::Blocked;
                    rt.blocked_on = Some(op);
                    self.block_current(cpu, tid);
                    return Ok(InterpretEnd::NeedsPick);
                }
                OpOutcome::default() // sleep satisfied; proceed
            }
            BlockedOn::Mutex(m) => self.sync.mutex_lock(m, tid),
            BlockedOn::Sem(s) => self.sync.sem_wait(s, tid),
            BlockedOn::QueuePut { queue, value } => self.sync.queue_put(queue, tid, value),
            BlockedOn::QueueGet(q) => self.sync.queue_get(q, tid),
            BlockedOn::Barrier {
                barrier,
                generation,
            } => {
                if self.sync.barrier_generation(barrier) != generation {
                    // The barrier released while we were spuriously awake.
                    OpOutcome::default()
                } else {
                    self.sync.barrier_arrive(barrier, tid, false)
                }
            }
        };
        debug_assert!(!out.spin, "retry never spins");
        if self.apply_outcome(cpu, tid, out, Some(op))? {
            Ok(InterpretEnd::NeedsPick)
        } else {
            self.interpret(cpu)
        }
    }

    /// Interpret zero-time actions of the current task on `cpu` until it
    /// runs, spins, blocks, yields or exits.
    fn interpret(&mut self, cpu: CpuId) -> Result<InterpretEnd, SimError> {
        let mut guard = 0u32;
        loop {
            guard += 1;
            if guard > self.cfg.max_instant_actions {
                return Err(SimError::RunawayBehavior {
                    cpu,
                    at: self.now,
                    actions: guard,
                });
            }
            let Some(tid) = self.cpus[cpu.index()].current else {
                return Err(SimError::NoCurrent { cpu, at: self.now });
            };
            let action = {
                let now = self.now;
                let rt = self.rt_mut(tid)?;
                let mut behavior = rt
                    .behavior
                    .take()
                    .ok_or(SimError::TaskStateLost { tid, at: now })?;
                let value = rt.pending_value.take();
                let mut ctx = Ctx {
                    now,
                    tid,
                    cpu,
                    value,
                    rng: &mut rt.rng,
                };
                let action = behavior.next(&mut ctx);
                self.rt_mut(tid)?.behavior = Some(behavior);
                action
            };
            match action {
                Action::Run(d) => {
                    if d.is_zero() {
                        continue;
                    }
                    self.rt_mut(tid)?.cont = Cont::Run { left: d };
                    self.start_run_segment(cpu, d);
                    return Ok(InterpretEnd::Running);
                }
                Action::Sleep(d) => {
                    let deadline = self.now + d;
                    let rt = self.rt_mut(tid)?;
                    rt.cont = Cont::Blocked;
                    rt.blocked_on = Some(BlockedOn::Timer { deadline });
                    self.block_current(cpu, tid);
                    self.events.push(deadline, Event::TimerWake { tid });
                    return Ok(InterpretEnd::NeedsPick);
                }
                Action::MutexLock(m) => {
                    let out = self.sync.mutex_lock(m, tid);
                    if self.apply_outcome(cpu, tid, out, Some(BlockedOn::Mutex(m)))? {
                        return Ok(InterpretEnd::NeedsPick);
                    }
                }
                Action::MutexUnlock(m) => {
                    let out = self.sync.mutex_unlock(m, tid);
                    let blocked = self.apply_outcome(cpu, tid, out, None)?;
                    debug_assert!(!blocked);
                }
                Action::SemWait(s) => {
                    let out = self.sync.sem_wait(s, tid);
                    if self.apply_outcome(cpu, tid, out, Some(BlockedOn::Sem(s)))? {
                        return Ok(InterpretEnd::NeedsPick);
                    }
                }
                Action::SemPost(s) => {
                    let out = self.sync.sem_post(s);
                    let blocked = self.apply_outcome(cpu, tid, out, None)?;
                    debug_assert!(!blocked);
                }
                Action::BarrierWait(b) => {
                    let generation = self.sync.barrier_generation(b);
                    let out = self.sync.barrier_arrive(b, tid, false);
                    let op = BlockedOn::Barrier {
                        barrier: b,
                        generation,
                    };
                    if self.apply_outcome(cpu, tid, out, Some(op))? {
                        return Ok(InterpretEnd::NeedsPick);
                    }
                }
                Action::BarrierWaitSpin(b, budget) => {
                    let generation = self.sync.barrier_generation(b);
                    let out = self.sync.barrier_arrive(b, tid, true);
                    if out.spin {
                        self.rt_mut(tid)?.cont = Cont::Spin {
                            barrier: b,
                            generation,
                        };
                        self.events.push(
                            self.now + budget,
                            Event::SpinTimeout {
                                tid,
                                barrier: b,
                                generation,
                            },
                        );
                        self.start_spin_segment(cpu);
                        return Ok(InterpretEnd::Running);
                    }
                    let blocked = self.apply_outcome(cpu, tid, out, None)?;
                    debug_assert!(!blocked, "last arriver never blocks");
                }
                Action::QueuePut(q, v) => {
                    let out = self.sync.queue_put(q, tid, v);
                    let op = BlockedOn::QueuePut { queue: q, value: v };
                    if self.apply_outcome(cpu, tid, out, Some(op))? {
                        return Ok(InterpretEnd::NeedsPick);
                    }
                }
                Action::QueueGet(q) => {
                    let out = self.sync.queue_get(q, tid);
                    if self.apply_outcome(cpu, tid, out, Some(BlockedOn::QueueGet(q)))? {
                        return Ok(InterpretEnd::NeedsPick);
                    }
                }
                Action::PoolTake(p) => {
                    let got = self.sync.pool_take(p);
                    self.rt_mut(tid)?.pending_value = Some(got);
                }
                Action::Spawn(spec) => {
                    let app = self.rt_mut(tid)?.app;
                    self.spawn_thread(app, spec, Some(tid))?;
                }
                Action::Yield => {
                    self.account_segment(cpu);
                    self.cancel_segment(cpu);
                    self.cpus[cpu.index()].current = None;
                    let t = self.tasks.get_mut(tid);
                    t.state = TaskState::Runnable;
                    t.last_ran = self.now;
                    self.sched.yield_task(&mut self.tasks, cpu, self.now);
                    return Ok(InterpretEnd::NeedsPick);
                }
                Action::CountOps(n) => {
                    let app = self.rt_mut(tid)?.app;
                    self.apps[app.0 as usize].ops += n;
                }
                Action::RecordLatency(d) => {
                    let app = self.rt_mut(tid)?.app;
                    let a = &mut self.apps[app.0 as usize];
                    a.lat_count += 1;
                    a.lat_sum += d;
                    a.lat_max = a.lat_max.max(d);
                }
                Action::Exit => {
                    self.exit_current(cpu, tid)?;
                    return Ok(InterpretEnd::NeedsPick);
                }
            }
        }
    }

    /// Apply a synchronisation outcome for the current task `tid` on `cpu`.
    /// `op` records what the task would be blocked on if `out.block` is set,
    /// so the fault harness can later wake it spuriously and have it retry.
    /// Returns `true` if the task blocked (caller must stop interpreting).
    fn apply_outcome(
        &mut self,
        cpu: CpuId,
        tid: Tid,
        out: OpOutcome,
        op: Option<BlockedOn>,
    ) -> Result<bool, SimError> {
        if let Some(v) = out.value {
            self.rt_mut(tid)?.pending_value = Some(v);
        }
        for (w, val) in out.wake {
            let rt = self.rt_mut(w)?;
            if let Some(v) = val {
                rt.pending_value = Some(v);
            }
            rt.cont = Cont::NeedAction;
            self.wake_task(w, Some(tid))?;
        }
        for s in out.release_spinners {
            self.release_spinner(s)?;
        }
        if out.block {
            let rt = self.rt_mut(tid)?;
            rt.cont = Cont::Blocked;
            rt.blocked_on = op;
            self.block_current(cpu, tid);
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// A barrier released a spinning task: let it continue, wherever it is.
    fn release_spinner(&mut self, tid: Tid) -> Result<(), SimError> {
        let rt = self.rt_mut(tid)?;
        debug_assert!(matches!(rt.cont, Cont::Spin { .. }));
        rt.cont = Cont::NeedAction;
        let cpu = self.tasks.get(tid).cpu;
        if self.cpus[cpu.index()].current == Some(tid) {
            // Currently burning CPU in the spin loop; continue via an event
            // to avoid re-entrant interpretation.
            self.events.push(self.now, Event::Continue(tid));
        }
        // If it was preempted mid-spin it sits in a runqueue and will
        // continue at its next dispatch.
        Ok(())
    }
}
