//! Scheduling trace events (flight recorder).
//!
//! When [`crate::SimConfig::trace_capacity`] is non-zero, the kernel
//! records every externally visible scheduling decision into a bounded
//! [`simcore::TraceBuffer`]. Experiments use traces for fine-grained
//! analyses (e.g. per-hop latencies of the c-ray cascade); tests use them
//! to assert event orderings.

use sched_api::Tid;
use simcore::Time;
use topology::CpuId;

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `cpu` switched from `from` to `to` (`None` = idle).
    Switch {
        /// When it happened.
        at: Time,
        /// The CPU that switched.
        cpu: CpuId,
        /// Previously running task.
        from: Option<Tid>,
        /// Task now running.
        to: Tid,
    },
    /// A task was woken and enqueued on `cpu`.
    Wakeup {
        /// When it happened.
        at: Time,
        /// The woken task.
        tid: Tid,
        /// The runqueue it was placed on.
        cpu: CpuId,
        /// The task that performed the wakeup, if any.
        waker: Option<Tid>,
    },
    /// A CPU went idle.
    Idle {
        /// When it happened.
        at: Time,
        /// The CPU that ran out of work.
        cpu: CpuId,
    },
    /// A task exited.
    Exit {
        /// When it happened.
        at: Time,
        /// The exiting task.
        tid: Tid,
    },
    /// A CPU was hotplugged off or back on by the fault harness.
    Hotplug {
        /// When it happened.
        at: Time,
        /// The affected CPU.
        cpu: CpuId,
        /// `true` = came online, `false` = went offline.
        online: bool,
    },
    /// The fault harness spuriously woke a sleeping task.
    SpuriousWake {
        /// When it happened.
        at: Time,
        /// The victim task.
        tid: Tid,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::Switch { at, .. }
            | TraceEvent::Wakeup { at, .. }
            | TraceEvent::Idle { at, .. }
            | TraceEvent::Exit { at, .. }
            | TraceEvent::Hotplug { at, .. }
            | TraceEvent::SpuriousWake { at, .. } => at,
        }
    }

    /// The primary task involved, if any.
    pub fn tid(&self) -> Option<Tid> {
        match *self {
            TraceEvent::Switch { to, .. } => Some(to),
            TraceEvent::Wakeup { tid, .. }
            | TraceEvent::Exit { tid, .. }
            | TraceEvent::SpuriousWake { tid, .. } => Some(tid),
            TraceEvent::Idle { .. } | TraceEvent::Hotplug { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Wakeup {
            at: Time(5),
            tid: Tid(3),
            cpu: CpuId(1),
            waker: None,
        };
        assert_eq!(e.at(), Time(5));
        assert_eq!(e.tid(), Some(Tid(3)));
        let idle = TraceEvent::Idle {
            at: Time(9),
            cpu: CpuId(0),
        };
        assert_eq!(idle.tid(), None);
    }
}
