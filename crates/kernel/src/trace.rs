//! Scheduling trace events (flight recorder + streaming sinks).
//!
//! When [`crate::SimConfig::trace_capacity`] is non-zero, the kernel
//! records every externally visible scheduling decision into a bounded
//! [`simcore::TraceBuffer`]. Experiments use traces for fine-grained
//! analyses (e.g. per-hop latencies of the c-ray cascade); tests use them
//! to assert event orderings.
//!
//! For runs whose traces exceed any reasonable in-memory bound, a
//! [`TraceSink`] can be installed with [`crate::Kernel::set_trace_sink`]:
//! every event is handed to the sink as it happens (SchedScope's streaming
//! Chrome-trace export uses this to write straight to disk).

use sched_api::{PreemptCause, TaskTable, Tid};
use simcore::Time;
use topology::CpuId;

/// One scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// `cpu` switched from `from` to `to` (`None` = idle).
    Switch {
        /// When it happened.
        at: Time,
        /// The CPU that switched.
        cpu: CpuId,
        /// Previously running task.
        from: Option<Tid>,
        /// Task now running.
        to: Tid,
    },
    /// A task was woken and enqueued on `cpu`.
    Wakeup {
        /// When it happened.
        at: Time,
        /// The woken task.
        tid: Tid,
        /// The runqueue it was placed on.
        cpu: CpuId,
        /// The task that performed the wakeup, if any.
        waker: Option<Tid>,
    },
    /// A CPU went idle.
    Idle {
        /// When it happened.
        at: Time,
        /// The CPU that ran out of work.
        cpu: CpuId,
    },
    /// A task exited.
    Exit {
        /// When it happened.
        at: Time,
        /// The exiting task.
        tid: Tid,
    },
    /// A CPU was hotplugged off or back on by the fault harness.
    Hotplug {
        /// When it happened.
        at: Time,
        /// The affected CPU.
        cpu: CpuId,
        /// `true` = came online, `false` = went offline.
        online: bool,
    },
    /// The fault harness spuriously woke a sleeping task.
    SpuriousWake {
        /// When it happened.
        at: Time,
        /// The victim task.
        tid: Tid,
    },
    /// The running task on `cpu` was marked for preemption.
    Preempt {
        /// When it happened.
        at: Time,
        /// The CPU whose current task will be rescheduled.
        cpu: CpuId,
        /// The task losing the CPU.
        victim: Tid,
        /// The enqueued task that triggered the preemption (`None` for
        /// tick-driven preemptions).
        by: Option<Tid>,
        /// Why the scheduling class asked for it.
        cause: PreemptCause,
    },
    /// A task was dispatched on a different CPU than it last ran on.
    Migrate {
        /// When it happened (dispatch time on the new CPU).
        at: Time,
        /// The migrating task.
        tid: Tid,
        /// Where it last ran.
        from: CpuId,
        /// Where it is running now.
        to: CpuId,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Time {
        match *self {
            TraceEvent::Switch { at, .. }
            | TraceEvent::Wakeup { at, .. }
            | TraceEvent::Idle { at, .. }
            | TraceEvent::Exit { at, .. }
            | TraceEvent::Hotplug { at, .. }
            | TraceEvent::SpuriousWake { at, .. }
            | TraceEvent::Preempt { at, .. }
            | TraceEvent::Migrate { at, .. } => at,
        }
    }

    /// The primary task involved, if any.
    pub fn tid(&self) -> Option<Tid> {
        match *self {
            TraceEvent::Switch { to, .. } => Some(to),
            TraceEvent::Wakeup { tid, .. }
            | TraceEvent::Exit { tid, .. }
            | TraceEvent::SpuriousWake { tid, .. }
            | TraceEvent::Migrate { tid, .. } => Some(tid),
            TraceEvent::Preempt { victim, .. } => Some(victim),
            TraceEvent::Idle { .. } | TraceEvent::Hotplug { .. } => None,
        }
    }
}

/// Observer of trace events as they are recorded.
///
/// Installed with [`crate::Kernel::set_trace_sink`]; the kernel calls
/// [`TraceSink::event`] for every event *in addition to* appending it to
/// the flight-recorder buffer (if one is configured). `tasks` is the live
/// task table at event time, so sinks can resolve names and per-task state
/// without keeping their own copies. Sinks must not assume events arrive
/// at distinct timestamps.
pub trait TraceSink {
    /// Observe one event.
    fn event(&mut self, ev: &TraceEvent, tasks: &TaskTable);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let e = TraceEvent::Wakeup {
            at: Time(5),
            tid: Tid(3),
            cpu: CpuId(1),
            waker: None,
        };
        assert_eq!(e.at(), Time(5));
        assert_eq!(e.tid(), Some(Tid(3)));
        let idle = TraceEvent::Idle {
            at: Time(9),
            cpu: CpuId(0),
        };
        assert_eq!(idle.tid(), None);
    }
}
