//! Edge cases of `kernel::sync` under injected spurious wakeups.
//!
//! The POSIX condvar contract the kernel implements: a spuriously woken
//! blocked task *retries* its operation, so no lock acquisition, semaphore
//! permit, queue slot, or queue value is ever lost or duplicated — even
//! under a storm of spurious wakeups, jittered ticks, and hotplug. All
//! tests run with SchedSan strict checking on, so any structural damage
//! the faults cause is reported at the event that introduced it.

use kernel::{
    Action, AppSpec, CheckMode, FaultPlan, Kernel, Script, SimConfig, SimpleRR, ThreadSpec,
};
use simcore::{Dur, Time};
use topology::Topology;

/// A strict-mode kernel with an aggressive spurious-wakeup storm.
fn stormy_kernel(topo: Topology, seed: u64) -> Kernel {
    let mut cfg = SimConfig::with_seed(seed);
    cfg.check = CheckMode::Strict;
    cfg.trace_capacity = 128;
    cfg.faults = FaultPlan {
        // Well below the tick period: most blocked tasks get poked many
        // times per sleep.
        spurious_wake_period: Some(Dur::micros(200)),
        tick_jitter: Dur::micros(100),
        missed_tick_pct: 10,
        ..FaultPlan::default()
    };
    let sched = Box::new(SimpleRR::new(&topo));
    Kernel::new(topo, cfg, sched)
}

/// Barrier release ordering: every party completes every round exactly
/// once; a spurious wake between a party's arrival and the barrier's
/// release must not let it skip a round or arrive twice in one generation.
#[test]
fn barrier_rounds_survive_spurious_wakes() {
    let parties = 4;
    let rounds = 10u64;
    let mut k = stormy_kernel(Topology::flat(2), 11);
    let b = k.new_barrier(parties);
    let threads = (0..parties)
        .map(|i| {
            let mut steps = Vec::new();
            for r in 0..rounds {
                // Skewed run times so parties arrive in different orders
                // each round.
                steps.push(Action::Run(Dur::micros(300 + 137 * (i as u64 + r))));
                steps.push(Action::BarrierWait(b));
                steps.push(Action::CountOps(1));
            }
            ThreadSpec::new(format!("party{i}"), Box::new(Script::new(steps)))
        })
        .collect();
    let app = k.queue_app(Time::ZERO, AppSpec::new("gang", threads));
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(30))
        .expect("no invariant violations");
    assert!(done, "barrier gang must terminate");
    assert_eq!(k.app(app).ops, parties as u64 * rounds);
    assert!(k.counters().spurious_wakes > 0, "storm did not fire");
}

/// Semaphore wake-with-value: a spuriously woken `SemWait`er retries and
/// must not consume a permit that was never posted. Every post is consumed
/// exactly once.
#[test]
fn semaphore_permits_conserved_under_spurious_wakes() {
    let permits = 20u64;
    let mut k = stormy_kernel(Topology::flat(2), 12);
    let s = k.new_sem(0);
    let mut post = Vec::new();
    let mut wait = Vec::new();
    for _ in 0..permits {
        // The poster sleeps between posts so the waiter is blocked (and
        // thus a spurious-wake target) most of the time.
        post.push(Action::Sleep(Dur::micros(700)));
        post.push(Action::SemPost(s));
        wait.push(Action::SemWait(s));
        wait.push(Action::CountOps(1));
    }
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "pingpong",
            vec![
                ThreadSpec::new("poster", Box::new(Script::new(post))),
                ThreadSpec::new("waiter", Box::new(Script::new(wait))),
            ],
        ),
    );
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(30))
        .expect("no invariant violations");
    assert!(done, "ping-pong must terminate: every post consumed");
    assert_eq!(k.app(app).ops, permits);
    assert!(k.counters().spurious_wakes > 0, "storm did not fire");
}

/// Bounded-queue wake storm: capacity-1 queue, one producer, several
/// consumers, constant spurious wakeups on both the full (`QueuePut`) and
/// empty (`QueueGet`) sides. Each value must be delivered exactly once —
/// the consumers sum the values they receive, so a lost or duplicated
/// delivery shifts the total.
#[test]
fn bounded_queue_delivers_each_value_once_under_wake_storm() {
    let consumers = 4u64;
    let per = 16u64;
    let total = consumers * per;
    let mut k = stormy_kernel(Topology::flat(4), 13);
    let q = k.new_queue(1);
    let mut threads = Vec::new();
    let mut put = Vec::new();
    for v in 1..=total {
        put.push(Action::Run(Dur::micros(150)));
        put.push(Action::QueuePut(q, v));
    }
    threads.push(ThreadSpec::new("producer", Box::new(Script::new(put))));
    for i in 0..consumers {
        let mut left = per;
        let mut work = false;
        threads.push(ThreadSpec::new(
            format!("consumer{i}"),
            kernel::from_fn(move |ctx| {
                // After a completed QueueGet the popped value arrives in
                // ctx.value; fold it into the app's op count, then chew on
                // it for a while (keeping the others blocked long enough
                // for the wake storm to hit them).
                if let Some(v) = ctx.value.take() {
                    work = true;
                    return Action::CountOps(v);
                }
                if work {
                    work = false;
                    return Action::Run(Dur::micros(400));
                }
                if left == 0 {
                    return Action::Exit;
                }
                left -= 1;
                Action::QueueGet(q)
            }),
        ));
    }
    let app = k.queue_app(Time::ZERO, AppSpec::new("pipeline", threads));
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(30))
        .expect("no invariant violations");
    assert!(done, "pipeline must drain");
    // Sum 1..=total: any lost/duplicated value breaks the identity.
    assert_eq!(k.app(app).ops, total * (total + 1) / 2);
    assert!(k.counters().spurious_wakes > 0, "storm did not fire");
}

/// Mutex handoff: a spurious wake aimed at a task that was *just* granted
/// the lock by an unlocking owner must be suppressed (the waiter is no
/// longer removable from the wait list), never producing two owners.
/// Strict checking plus termination proves no acquisition was lost.
#[test]
fn mutex_handoff_survives_spurious_wakes() {
    let mut k = stormy_kernel(Topology::flat(2), 14);
    let m = k.new_mutex();
    let threads = (0..3)
        .map(|i| {
            let mut steps = Vec::new();
            for _ in 0..15 {
                steps.push(Action::MutexLock(m));
                steps.push(Action::Run(Dur::micros(400)));
                steps.push(Action::MutexUnlock(m));
                steps.push(Action::CountOps(1));
            }
            ThreadSpec::new(format!("locker{i}"), Box::new(Script::new(steps)))
        })
        .collect();
    let app = k.queue_app(Time::ZERO, AppSpec::new("lockers", threads));
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(30))
        .expect("no invariant violations");
    assert!(done, "lockers must terminate: no acquisition lost");
    assert_eq!(k.app(app).ops, 3 * 15);
}
