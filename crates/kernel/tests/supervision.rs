//! SchedGuard integration tests: budgets, the no-progress watchdog, and
//! cooperative cancellation, exercised against the reference round-robin
//! class so they are independent of CFS/ULE.

use kernel::{
    cpu_hog, from_fn, Action, AppSpec, BudgetKind, CancelToken, Kernel, RunBudget, SimConfig,
    SimError, SimpleRR, ThreadSpec,
};
use simcore::{Dur, Time};
use topology::Topology;

fn mk_kernel(topo: Topology, cfg: SimConfig) -> Kernel {
    let sched = Box::new(SimpleRR::new(&topo));
    Kernel::new(topo, cfg, sched)
}

/// A thread that sleeps for zero time forever: every wakeup immediately
/// re-blocks at the same instant, producing an infinite same-time event
/// chain (TimerWake → Resched → dispatch → Sleep(0) → ...). Simulated
/// time never advances — the classic livelock the stall watchdog exists
/// for.
fn zero_sleep_looper() -> ThreadSpec {
    ThreadSpec::new("zero-sleeper", from_fn(|_| Action::Sleep(Dur::ZERO)))
}

#[test]
fn zero_sleep_loop_trips_stall_watchdog() {
    let mut k = mk_kernel(Topology::flat(2), SimConfig::frictionless(1));
    k.set_watchdog(2_000, 0);
    k.queue_app(
        Time::ZERO,
        AppSpec::new("livelock", vec![zero_sleep_looper()]),
    );
    let err = k
        .try_run_until(Time::ZERO + Dur::secs(1))
        .expect_err("watchdog must abort the stalled chain");
    match &err {
        SimError::Livelock { detail, window, .. } => {
            assert!(detail.contains("stalled"), "{detail}");
            assert!(!window.is_empty(), "livelock report must carry the window");
            // The stalled chain is made of timer wakes and reschedules.
            assert!(
                window
                    .iter()
                    .any(|l| l.contains("timer-wake") || l.contains("resched")),
                "{window:?}"
            );
        }
        other => panic!("expected Livelock, got {other}"),
    }
    assert!(err.is_supervision());
    // Salvage: the aborted kernel's state is still readable.
    assert!(k.counters().events >= 2_000);
    assert_eq!(k.now(), Time::ZERO, "time never advanced");
}

#[test]
fn yield_forever_trips_pick_loop_guard() {
    // A behavior that yields forever wedges *inside* the pick loop: no
    // events are processed, so the event-level stall watchdog can never
    // fire — this is the guard on the loop itself.
    let mut k = mk_kernel(Topology::single_core(), SimConfig::frictionless(1));
    k.set_watchdog(5_000, 0);
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spinner",
            vec![ThreadSpec::new("yielder", from_fn(|_| Action::Yield))],
        ),
    );
    let err = k
        .try_run_until(Time::ZERO + Dur::secs(1))
        .expect_err("pick-loop guard must abort");
    match err {
        SimError::Livelock { detail, .. } => {
            assert!(detail.contains("pick loop"), "{detail}")
        }
        other => panic!("expected Livelock, got {other}"),
    }
}

#[test]
fn budget_max_events_aborts_and_salvage_is_deterministic() {
    let run = || {
        let mut cfg = SimConfig::frictionless(7);
        cfg.budget = RunBudget {
            max_events: Some(500),
            ..Default::default()
        };
        let mut k = mk_kernel(Topology::flat(2), cfg);
        k.queue_app(
            Time::ZERO,
            AppSpec::new(
                "hogs",
                vec![
                    ThreadSpec::new("a", cpu_hog(Dur::secs(1), Dur::micros(100))),
                    ThreadSpec::new("b", cpu_hog(Dur::secs(1), Dur::micros(100))),
                ],
            ),
        );
        let err = k
            .try_run_until_apps_done(Time::ZERO + Dur::secs(10))
            .expect_err("budget must trip");
        (err, k.counters().events, k.now(), k.decision_digest())
    };
    let (err1, events1, now1, digest1) = run();
    let (err2, events2, now2, digest2) = run();
    match err1 {
        SimError::BudgetExceeded {
            kind: BudgetKind::Events,
            limit: 500,
            ..
        } => {}
        ref other => panic!("expected BudgetExceeded(events), got {other}"),
    }
    // The abort point and everything salvaged at it replay bit-identically.
    assert_eq!(err1, err2);
    assert_eq!(events1, events2);
    assert_eq!(now1, now2);
    assert_eq!(digest1, digest2);
    assert_eq!(events1, 501, "trips on the first event past the limit");
}

#[test]
fn budget_max_sim_time_aborts() {
    let mut cfg = SimConfig::frictionless(7);
    cfg.budget.max_sim_time = Some(Dur::millis(10));
    let mut k = mk_kernel(Topology::single_core(), cfg);
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new("h", cpu_hog(Dur::secs(1), Dur::millis(1)))],
        ),
    );
    let err = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(10))
        .expect_err("time budget must trip");
    assert!(
        matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::SimTime,
                ..
            }
        ),
        "{err}"
    );
    assert!(k.now() >= Time::ZERO + Dur::millis(10));
}

#[test]
fn budget_max_live_tasks_stops_a_fork_storm() {
    let mut cfg = SimConfig::frictionless(7);
    cfg.budget.max_live_tasks = Some(8);
    let mut k = mk_kernel(Topology::flat(2), cfg);
    // A forker that spawns a long-lived child at every step.
    let forker = from_fn(|_| {
        Action::Spawn(ThreadSpec::new("child", cpu_hog(Dur::secs(10), Dur::millis(1))).detached())
    });
    k.queue_app(
        Time::ZERO,
        AppSpec::new("storm", vec![ThreadSpec::new("forker", forker)]),
    );
    let err = k
        .try_run_until(Time::ZERO + Dur::secs(1))
        .expect_err("live-task budget must trip");
    assert!(
        matches!(
            err,
            SimError::BudgetExceeded {
                kind: BudgetKind::LiveTasks,
                limit: 8,
                ..
            }
        ),
        "{err}"
    );
    assert_eq!(k.live_tasks(), 9, "aborted on the task past the cap");
}

#[test]
fn cancel_token_aborts_mid_run() {
    let mut k = mk_kernel(Topology::single_core(), SimConfig::frictionless(1));
    let token = CancelToken::new();
    token.cancel();
    k.set_cancel_token(token);
    // Enough events (>4096) to guarantee the amortized poll runs.
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new("h", cpu_hog(Dur::secs(1), Dur::micros(50)))],
        ),
    );
    let err = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(10))
        .expect_err("cancelled token must abort");
    assert!(matches!(err, SimError::Cancelled { .. }), "{err}");
    assert!(err.is_supervision());
}

#[test]
fn generous_supervision_leaves_digest_untouched() {
    let run = |budget: RunBudget| {
        let mut cfg = SimConfig::with_seed(3);
        cfg.budget = budget;
        let mut k = mk_kernel(Topology::flat(4), cfg);
        k.queue_app(
            Time::ZERO,
            AppSpec::new(
                "mix",
                vec![
                    ThreadSpec::new("a", cpu_hog(Dur::millis(80), Dur::millis(3))),
                    ThreadSpec::new("b", cpu_hog(Dur::millis(60), Dur::millis(2))),
                    ThreadSpec::new("c", cpu_hog(Dur::millis(40), Dur::millis(1))),
                ],
            ),
        );
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
        (k.decision_digest(), k.counters().events)
    };
    let (unsupervised, ev1) = run(RunBudget::default());
    let (supervised, ev2) = run(RunBudget {
        max_events: Some(u64::MAX / 2),
        max_sim_time: Some(Dur::secs(3600)),
        max_queue_depth: Some(1 << 30),
        max_live_tasks: Some(1 << 20),
    });
    assert_eq!(
        unsupervised, supervised,
        "an active-but-untripped budget must not perturb decisions"
    );
    assert_eq!(ev1, ev2);
}
