//! SchedSan end-to-end: a buggy scheduler is caught by the invariant
//! checker at the event that corrupts state, surfaces as a `SimError`
//! (no panic), and yields an actionable crash report. Also pins down the
//! bounded-starvation check and clean strict-mode runs under hotplug.

use kernel::{cpu_hog, AppSpec, CheckMode, FaultPlan, Kernel, SimConfig, SimError, ThreadSpec};
use sched_api::{
    DequeueKind, EnqueueKind, Preempt, PreemptCause, Scheduler, SelectStats, TaskSnapshot,
    TaskTable, Tid, WakeKind,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

/// A single-queue FIFO that silently *drops* the Nth enqueue: the task
/// stays Runnable in the kernel's eyes but sits in no runqueue — the
/// classic lost-task bug SchedSan's conservation sweep exists to catch.
struct LossySched {
    queue: Vec<Tid>,
    curr: Option<Tid>,
    enqueues: u32,
    drop_nth: u32,
}

impl LossySched {
    fn new(drop_nth: u32) -> LossySched {
        LossySched {
            queue: Vec::new(),
            curr: None,
            enqueues: 0,
            drop_nth,
        }
    }
}

impl Scheduler for LossySched {
    fn name(&self) -> &'static str {
        "lossy"
    }
    fn select_task_rq(
        &mut self,
        _tasks: &TaskTable,
        _tid: Tid,
        _kind: WakeKind,
        _waking_cpu: CpuId,
        _now: Time,
        _stats: &mut SelectStats,
    ) -> CpuId {
        CpuId(0)
    }
    fn enqueue_task(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CpuId,
        tid: Tid,
        _kind: EnqueueKind,
        _now: Time,
    ) -> Preempt {
        self.enqueues += 1;
        if self.enqueues != self.drop_nth {
            self.queue.push(tid);
        }
        Preempt::No
    }
    fn dequeue_task(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CpuId,
        tid: Tid,
        _kind: DequeueKind,
        _now: Time,
    ) {
        if self.curr == Some(tid) {
            self.curr = None;
        } else {
            self.queue.retain(|&t| t != tid);
        }
    }
    fn yield_task(&mut self, _tasks: &mut TaskTable, _cpu: CpuId, _now: Time) {
        if let Some(c) = self.curr.take() {
            self.queue.push(c);
        }
    }
    fn pick_next_task(&mut self, _tasks: &mut TaskTable, _cpu: CpuId, _now: Time) -> Option<Tid> {
        if self.queue.is_empty() {
            return None;
        }
        let next = self.queue.remove(0);
        self.curr = Some(next);
        Some(next)
    }
    fn put_prev_task(&mut self, _tasks: &mut TaskTable, _cpu: CpuId, tid: Tid, _now: Time) {
        self.curr = None;
        self.queue.push(tid);
    }
    fn task_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CpuId,
        _curr: Tid,
        _now: Time,
    ) -> Preempt {
        if self.queue.is_empty() {
            Preempt::No
        } else {
            Preempt::Yes(PreemptCause::SliceExpired)
        }
    }
    fn task_fork(&mut self, _tasks: &TaskTable, _child: Tid, _parent: Option<Tid>, _now: Time) {}
    fn task_dead(&mut self, _tasks: &TaskTable, _tid: Tid, _now: Time) {}
    fn balance_tick(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CpuId,
        _now: Time,
        _targets: &mut Vec<CpuId>,
    ) {
    }
    fn idle_balance(
        &mut self,
        _tasks: &mut TaskTable,
        _cpu: CpuId,
        _now: Time,
        _stats: &mut SelectStats,
    ) -> bool {
        false
    }
    fn nr_queued(&self, _cpu: CpuId) -> usize {
        self.queue.len() + usize::from(self.curr.is_some())
    }
    fn queued_tids_into(&self, _cpu: CpuId, out: &mut Vec<Tid>) {
        out.extend(self.queue.iter().copied());
    }
    fn snapshot(&self, _tasks: &TaskTable, _tid: Tid) -> TaskSnapshot {
        TaskSnapshot::default()
    }
}

fn strict_cfg(seed: u64) -> SimConfig {
    let mut cfg = SimConfig::with_seed(seed);
    cfg.check = CheckMode::Strict;
    cfg.trace_capacity = 64;
    cfg
}

fn sleepy_app(n: usize) -> AppSpec {
    AppSpec::new(
        "sleepy",
        (0..n)
            .map(|i| {
                let mut run = true;
                ThreadSpec::new(
                    format!("t{i}"),
                    kernel::from_fn(move |_ctx| {
                        // Alternate run/sleep forever: the wakeup enqueue
                        // traffic is what trips the lossy scheduler.
                        run = !run;
                        if run {
                            kernel::Action::Run(Dur::micros(500))
                        } else {
                            kernel::Action::Sleep(Dur::micros(800))
                        }
                    }),
                )
            })
            .collect(),
    )
}

/// The lost task is reported as a structured error, not a panic, and the
/// crash report carries everything a bug report needs.
#[test]
fn lost_task_is_caught_with_crash_report() {
    let topo = Topology::single_core();
    // Drop the 20th enqueue: the run has real history by then, so the
    // crash report's trace tail has content.
    let mut k = Kernel::new(topo, strict_cfg(99), Box::new(LossySched::new(20)));
    k.queue_app(Time::ZERO, sleepy_app(4));
    let err = k
        .try_run_until(Time::ZERO + Dur::secs(1))
        .expect_err("SchedSan must catch the dropped enqueue");
    let msg = err.to_string();
    assert!(
        msg.contains("lost task") || msg.contains("runqueue"),
        "unexpected error: {msg}"
    );

    let report = k.crash_report(&err);
    assert!(report.contains("SchedSan crash report"));
    assert!(report.contains(&msg), "report repeats the error");
    assert!(report.contains("scheduler: lossy"));
    assert!(report.contains("seed:      99"), "seed is the replay key");
    assert!(report.contains("per-CPU state:"));
    assert!(report.contains("live tasks:"));
    assert!(report.contains("trace tail"), "flight recorder included");
}

/// Without strict mode the same bug silently degrades instead of erroring:
/// SchedSan's job is detection, the kernel itself stays permissive.
#[test]
fn checks_off_means_no_error() {
    let topo = Topology::single_core();
    let mut cfg = strict_cfg(99);
    cfg.check = CheckMode::Off;
    let mut k = Kernel::new(topo, cfg, Box::new(LossySched::new(20)));
    k.queue_app(Time::ZERO, sleepy_app(4));
    assert!(k.try_run_until(Time::ZERO + Dur::secs(1)).is_ok());
}

/// Bounded starvation: a scheduler that keeps a runnable task queued
/// forever trips the starvation check once the configured limit passes.
#[test]
fn starvation_limit_is_enforced() {
    // LossySched with drop_nth = 0 never drops, but its FIFO + the
    // always-preempt tick gives round-robin; to starve, pin the limit
    // below the natural wait of the last of many tasks on one core.
    let topo = Topology::single_core();
    let mut cfg = strict_cfg(7);
    cfg.starvation_limit = Dur::micros(50);
    let mut k = Kernel::new(topo, cfg, Box::new(LossySched::new(0)));
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hogs",
            (0..8)
                .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::secs(2), Dur::millis(5))))
                .collect(),
        ),
    );
    let err = k
        .try_run_until(Time::ZERO + Dur::secs(1))
        .expect_err("an 8-deep queue cannot meet a 50us latency bound");
    assert!(
        matches!(&err, SimError::Invariant { detail, .. } if detail.contains("runnable-but-unscheduled")),
        "unexpected error: {err}"
    );
}

/// Clean strict-mode run under the full fault storm (spurious wakes,
/// jitter, hotplug) for the reference scheduler: faults must perturb, not
/// corrupt.
#[test]
fn reference_scheduler_clean_under_fault_storm() {
    let topo = Topology::flat(4);
    let mut cfg = strict_cfg(21);
    cfg.faults = FaultPlan {
        spurious_wake_period: Some(Dur::micros(300)),
        tick_jitter: Dur::micros(200),
        missed_tick_pct: 15,
        hotplug_period: Some(Dur::millis(3)),
        hotplug_down: Dur::millis(1),
    };
    let sched = Box::new(kernel::SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, cfg, sched);
    let mut threads: Vec<ThreadSpec> = (0..6)
        .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::millis(40), Dur::millis(1))))
        .collect();
    // Sleepers give the spurious-wake injector targets.
    threads.extend((0..3).map(|i| {
        let mut left = 60u32;
        let mut run = true;
        ThreadSpec::new(
            format!("s{i}"),
            kernel::from_fn(move |_ctx| {
                run = !run;
                if run {
                    kernel::Action::Run(Dur::micros(200))
                } else {
                    if left == 0 {
                        return kernel::Action::Exit;
                    }
                    left -= 1;
                    kernel::Action::Sleep(Dur::micros(900))
                }
            }),
        )
    }));
    k.queue_app(Time::ZERO, AppSpec::new("mix", threads));
    let done = k
        .try_run_until_apps_done(Time::ZERO + Dur::secs(10))
        .expect("faults must never corrupt scheduler state");
    assert!(done, "workload finishes despite hotplug");
    assert!(k.counters().hotplug_events > 0, "hotplug fired");
    assert!(k.counters().spurious_wakes > 0, "spurious wakes fired");
}
