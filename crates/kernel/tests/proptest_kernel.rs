//! Property tests of the simulated kernel: conservation of work and
//! determinism under randomized workloads.

use kernel::{from_fn, Action, AppSpec, Kernel, SimConfig, SimpleRR, ThreadSpec};
use proptest::prelude::*;
use simcore::{Dur, Time};
use topology::Topology;

/// Build a randomized run/sleep workload from a spec vector.
fn random_app(spec: &[(u16, u16, u16)]) -> AppSpec {
    AppSpec::new(
        "random",
        spec.iter()
            .enumerate()
            .map(|(i, &(run_us, sleep_us, reps))| {
                let mut left = reps as u32 + 1;
                let mut phase = false;
                ThreadSpec::new(
                    format!("r{i}"),
                    from_fn(move |_ctx| {
                        phase = !phase;
                        if phase {
                            Action::Run(Dur::micros(run_us as u64 + 1))
                        } else {
                            if left == 0 {
                                return Action::Exit;
                            }
                            left -= 1;
                            Action::Sleep(Dur::micros(sleep_us as u64 + 1))
                        }
                    }),
                )
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work conservation: total CPU work performed never exceeds
    /// cores × elapsed time, and equals the work demanded when the app
    /// completes on an un-contended machine.
    #[test]
    fn work_conservation(spec in prop::collection::vec((1u16..2000, 1u16..2000, 1u16..20), 1..12)) {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(1), sched);
        let app = k.queue_app(Time::ZERO, random_app(&spec));
        let done = k.run_until_apps_done(Time::ZERO + Dur::secs(60));
        prop_assert!(done, "random app must terminate");
        let total_work: u64 = k
            .app_tasks(app)
            .iter()
            .map(|&t| k.task_runtime(t).as_nanos())
            .sum();
        // Each thread alternates Run/Sleep and exits at the sleep step once
        // its budget drains: it executes `reps + 2` run segments.
        let demanded: u64 = spec
            .iter()
            .map(|&(r, _s, reps)| (r as u64 + 1) * 1000 * (reps as u64 + 2))
            .sum();
        prop_assert_eq!(total_work, demanded, "work performed == work demanded");
        let capacity = 2 * k.now().as_nanos();
        prop_assert!(total_work <= capacity, "can't do more work than 2 cores provide");
    }

    /// Determinism: the same randomized workload with the same seed yields
    /// the same decision digest.
    #[test]
    fn deterministic_digest(spec in prop::collection::vec((1u16..500, 1u16..500, 1u16..10), 1..8),
                            seed: u64) {
        let run = |seed| {
            let topo = Topology::flat(2);
            let sched = Box::new(SimpleRR::new(&topo));
            let mut k = Kernel::new(topo, SimConfig::with_seed(seed), sched);
            k.queue_app(Time::ZERO, random_app(&spec));
            k.run_until(Time::ZERO + Dur::millis(200));
            k.decision_digest()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Queued-task accounting is consistent: the scheduler's per-cpu counts
    /// sum to the number of runnable/running tasks.
    #[test]
    fn queue_accounting(spec in prop::collection::vec((1u16..3000, 1u16..300, 1u16..10), 1..16),
                        sample_ms in 1u64..100) {
        let topo = Topology::flat(4);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(1), sched);
        let app = k.queue_app(Time::ZERO, random_app(&spec));
        k.run_until(Time::ZERO + Dur::millis(sample_ms));
        let queued: usize = (0..4).map(|c| k.nr_queued(topology::CpuId(c))).sum();
        let active = k
            .app_tasks(app)
            .iter()
            .filter(|&&t| k.task(t).is_active())
            .count();
        prop_assert_eq!(queued, active, "scheduler accounting must match task states");
    }
}
