//! Integration tests of the simulated kernel, using the reference
//! round-robin scheduling class (so they are independent of CFS/ULE).

use kernel::{
    cpu_hog, from_fn, spinner, Action, AppSpec, Kernel, Script, SimConfig, SimpleRR, ThreadSpec,
};
use simcore::{Dur, Time};
use topology::{CpuId, Topology};

fn mk_kernel(topo: Topology, cfg: SimConfig) -> Kernel {
    let sched = Box::new(SimpleRR::new(&topo));
    Kernel::new(topo, cfg, sched)
}

fn frictionless(topo: Topology) -> Kernel {
    mk_kernel(topo, SimConfig::frictionless(1))
}

#[test]
fn single_hog_runs_to_completion() {
    let mut k = frictionless(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hog",
            vec![ThreadSpec::new(
                "hog",
                cpu_hog(Dur::millis(50), Dur::millis(5)),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
    let stats = k.app(app);
    let elapsed = stats.elapsed().expect("finished");
    assert_eq!(elapsed, Dur::millis(50), "frictionless run is exact");
}

#[test]
fn two_hogs_share_one_core_fairly() {
    let mut k = frictionless(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "hogs",
            vec![
                ThreadSpec::new("a", cpu_hog(Dur::millis(100), Dur::millis(50))),
                ThreadSpec::new("b", cpu_hog(Dur::millis(100), Dur::millis(50))),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
    // Serial work is 200ms; round robin means neither finishes much before
    // the other, so the app takes the full 200ms.
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(200));
    // Round-robin slices of 10ms should have preempted the 50ms chunks.
    assert!(k.counters().preemptions > 0, "expected RR preemptions");
}

#[test]
fn sleep_then_run_takes_wall_time() {
    let mut k = frictionless(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "sleeper",
            vec![ThreadSpec::new(
                "s",
                Box::new(Script::new(vec![
                    Action::Run(Dur::millis(1)),
                    Action::Sleep(Dur::millis(5)),
                    Action::Run(Dur::millis(1)),
                ])),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(7));
}

#[test]
fn sleeping_thread_frees_the_core() {
    // One sleeper + one hog on one core: hog runs while sleeper sleeps, so
    // total elapsed ≈ max(hog work, sleeper pattern), not the sum.
    let mut k = frictionless(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "mix",
            vec![
                ThreadSpec::new(
                    "sleeper",
                    Box::new(Script::new(vec![
                        Action::Sleep(Dur::millis(50)),
                        Action::Run(Dur::millis(1)),
                    ])),
                ),
                ThreadSpec::new("hog", cpu_hog(Dur::millis(40), Dur::millis(5))),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    let elapsed = k.app(app).elapsed().unwrap();
    assert!(
        elapsed <= Dur::millis(60),
        "hog should run during the sleep, got {elapsed}"
    );
}

#[test]
fn mutex_serialises_critical_sections() {
    let topo = Topology::flat(2);
    let mut k = frictionless(topo);
    let m = k.new_mutex();
    let worker = |mutex| {
        Box::new(Script::new(vec![
            Action::MutexLock(mutex),
            Action::Run(Dur::millis(10)),
            Action::MutexUnlock(mutex),
        ]))
    };
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "locked",
            vec![
                ThreadSpec::new("w1", worker(m)),
                ThreadSpec::new("w2", worker(m)),
                ThreadSpec::new("w3", worker(m)),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    // Three 10ms critical sections must serialise even on 2 CPUs.
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(30));
}

#[test]
fn queue_producer_consumer() {
    let mut k = frictionless(Topology::flat(2));
    let q = k.new_queue(4);
    let producer = from_fn({
        let mut sent = 0u64;
        move |_ctx| {
            if sent == 20 {
                return Action::Exit;
            }
            sent += 1;
            Action::QueuePut(q, sent)
        }
    });
    let consumer = from_fn({
        let mut got = 0u64;
        let mut asked = false;
        move |ctx| {
            if let Some(v) = ctx.value {
                assert_eq!(v, got + 1, "FIFO order");
                got += 1;
                asked = false;
                if got == 20 {
                    return Action::Exit;
                }
            }
            if asked {
                panic!("QueueGet returned without a value");
            }
            asked = true;
            Action::QueueGet(q)
        }
    });
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "pipe",
            vec![
                ThreadSpec::new("prod", producer),
                ThreadSpec::new("cons", consumer),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert!(k.app(app).finished.is_some());
}

#[test]
fn barrier_joins_all_threads() {
    let mut k = frictionless(Topology::flat(4));
    let b = k.new_barrier(4);
    let threads = (0..4)
        .map(|i| {
            ThreadSpec::new(
                format!("t{i}"),
                Box::new(Script::new(vec![
                    Action::Run(Dur::millis(1 + i as u64 * 5)), // staggered arrival
                    Action::BarrierWait(b),
                    Action::Run(Dur::millis(1)),
                ])),
            )
        })
        .collect();
    let app = k.queue_app(Time::ZERO, AppSpec::new("bar", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    // Slowest arrival is at 16ms; everyone then runs 1ms more.
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(17));
}

#[test]
fn spin_barrier_releases_spinners_without_sleep() {
    let mut k = frictionless(Topology::flat(2));
    let b = k.new_barrier(2);
    let spin_then = Box::new(Script::new(vec![
        Action::BarrierWaitSpin(b, Dur::millis(100)),
        Action::Run(Dur::millis(1)),
    ]));
    let late = Box::new(Script::new(vec![
        Action::Run(Dur::millis(10)),
        Action::BarrierWait(b),
        Action::Run(Dur::millis(1)),
    ]));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin",
            vec![
                ThreadSpec::new("spinner", spin_then),
                ThreadSpec::new("late", late),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    // Spinner burns CPU for 10ms (within its 100ms budget), is released,
    // then both run 1ms: finish at 11ms.
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(11));
    // The spinner's spin time counts as runtime.
    let tids = k.app_tasks(app);
    let spinner_rt = k.task_runtime(tids[0]);
    assert!(
        spinner_rt >= Dur::millis(10),
        "spin burns CPU, got {spinner_rt}"
    );
}

#[test]
fn spin_barrier_times_out_into_sleep() {
    let mut k = frictionless(Topology::flat(2));
    let b = k.new_barrier(2);
    let spin_then = Box::new(Script::new(vec![
        Action::BarrierWaitSpin(b, Dur::millis(5)),
        Action::Run(Dur::millis(1)),
    ]));
    let late = Box::new(Script::new(vec![
        Action::Run(Dur::millis(50)),
        Action::BarrierWait(b),
        Action::Run(Dur::millis(1)),
    ]));
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "spin-timeout",
            vec![
                ThreadSpec::new("spinner", spin_then),
                ThreadSpec::new("late", late),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert_eq!(k.app(app).elapsed().unwrap(), Dur::millis(51));
    // The spinner burned only its 5ms budget, then slept.
    let tids = k.app_tasks(app);
    let spinner_rt = k.task_runtime(tids[0]);
    assert_eq!(spinner_rt, Dur::millis(6)); // 5ms spin + 1ms run
}

#[test]
fn idle_stealing_spreads_load() {
    let mut k = frictionless(Topology::flat(4));
    let threads = (0..4)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(100), Dur::millis(10))))
        .collect();
    let app = k.queue_app(Time::ZERO, AppSpec::new("hogs", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
    // Least-loaded placement should spread 4 hogs over 4 cores: total time
    // ≈ 100ms, far below the serial 400ms.
    let elapsed = k.app(app).elapsed().unwrap();
    assert!(elapsed <= Dur::millis(150), "not parallel: {elapsed}");
}

#[test]
fn pinned_tasks_stay_until_unpinned() {
    let mut k = frictionless(Topology::flat(2));
    let threads = (0..2)
        .map(|i| ThreadSpec::new(format!("s{i}"), spinner(Dur::millis(5))).pinned(vec![CpuId(0)]))
        .collect();
    let app = k.queue_app(Time::ZERO, AppSpec::new("pinned", threads));
    k.run_until(Time::ZERO + Dur::millis(100));
    assert_eq!(k.nr_queued(CpuId(0)), 2, "both pinned to cpu0");
    assert_eq!(k.nr_queued(CpuId(1)), 0);

    k.queue_unpin(k.now(), app);
    k.run_until(k.now() + Dur::millis(100));
    assert_eq!(k.nr_queued(CpuId(0)), 1, "one stolen away after unpin");
    assert_eq!(k.nr_queued(CpuId(1)), 1);
}

#[test]
fn ops_and_latency_recorded() {
    let mut k = frictionless(Topology::single_core());
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "db",
            vec![ThreadSpec::new(
                "w",
                Box::new(Script::new(vec![
                    Action::Run(Dur::millis(2)),
                    Action::CountOps(3),
                    Action::RecordLatency(Dur::millis(10)),
                    Action::RecordLatency(Dur::millis(20)),
                ])),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    let a = k.app(app);
    assert_eq!(a.ops, 3);
    assert_eq!(a.avg_latency(), Some(Dur::millis(15)));
    assert_eq!(a.lat_max, Dur::millis(20));
}

#[test]
fn spawned_children_join_the_app() {
    let mut k = frictionless(Topology::flat(2));
    let master = from_fn({
        let mut spawned = 0;
        move |_ctx| {
            if spawned < 3 {
                spawned += 1;
                Action::Spawn(ThreadSpec::new(
                    format!("child{spawned}"),
                    cpu_hog(Dur::millis(5), Dur::millis(5)),
                ))
            } else {
                Action::Exit
            }
        }
    });
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new("forky", vec![ThreadSpec::new("master", master)]),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert_eq!(k.app(app).spawned, 4);
    assert_eq!(k.app_tasks(app).len(), 4);
}

#[test]
fn deterministic_digest_for_same_seed() {
    let run = |seed| {
        let topo = Topology::flat(4);
        let mut k = mk_kernel(topo, SimConfig::with_seed(seed));
        let threads = (0..8)
            .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(37), Dur::millis(7))))
            .collect();
        k.queue_app(Time::ZERO, AppSpec::new("hogs", threads));
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
        k.decision_digest()
    };
    assert_eq!(run(123), run(123), "same seed, same decisions");
}

#[test]
fn overhead_is_charged_for_context_switches() {
    let topo = Topology::single_core();
    let mut cfg = SimConfig::frictionless(1);
    cfg.ctx_switch_cost = Dur::micros(100);
    let mut k = mk_kernel(topo, cfg);
    let app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "two",
            vec![
                ThreadSpec::new("a", cpu_hog(Dur::millis(50), Dur::millis(50))),
                ThreadSpec::new("b", cpu_hog(Dur::millis(50), Dur::millis(50))),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
    // Work is 100ms; context switches (every 10ms slice) add measurable time.
    let elapsed = k.app(app).elapsed().unwrap();
    assert!(elapsed > Dur::millis(100), "overhead missing: {elapsed}");
    assert!(k.cpu_stats(CpuId(0)).overhead > Dur::ZERO);
}

#[test]
fn staggered_app_start_times() {
    let mut k = frictionless(Topology::single_core());
    let a = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "first",
            vec![ThreadSpec::new(
                "a",
                cpu_hog(Dur::millis(10), Dur::millis(10)),
            )],
        ),
    );
    let b = k.queue_app(
        Time::ZERO + Dur::secs(1),
        AppSpec::new(
            "second",
            vec![ThreadSpec::new(
                "b",
                cpu_hog(Dur::millis(10), Dur::millis(10)),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
    assert_eq!(k.app(a).started, Some(Time::ZERO));
    assert_eq!(k.app(b).started, Some(Time::ZERO + Dur::secs(1)));
    assert!(k.app(b).finished.unwrap() > k.app(a).finished.unwrap());
}
