//! Tests of the flight-recorder trace.

use kernel::{cpu_hog, AppSpec, Kernel, Script, SimConfig, SimpleRR, ThreadSpec, TraceEvent};
use simcore::{Dur, Time};
use topology::Topology;

fn traced_kernel() -> Kernel {
    let topo = Topology::single_core();
    let mut cfg = SimConfig::frictionless(1);
    cfg.trace_capacity = 10_000;
    let sched = Box::new(SimpleRR::new(&topo));
    Kernel::new(topo, cfg, sched)
}

#[test]
fn trace_records_switches_wakeups_and_exits() {
    let mut k = traced_kernel();
    let _app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "t",
            vec![
                ThreadSpec::new(
                    "sleeper",
                    Box::new(Script::new(vec![
                        kernel::Action::Run(Dur::millis(1)),
                        kernel::Action::Sleep(Dur::millis(5)),
                        kernel::Action::Run(Dur::millis(1)),
                    ])),
                ),
                ThreadSpec::new("hog", cpu_hog(Dur::millis(10), Dur::millis(10))),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    let events: Vec<_> = k.trace().iter().cloned().collect();
    assert!(!events.is_empty());

    let switches = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Switch { .. }))
        .count();
    let wakeups = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Wakeup { .. }))
        .count();
    let exits = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Exit { .. }))
        .count();
    let idles = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Idle { .. }))
        .count();
    assert!(switches >= 3, "sleeper/hog alternation: {switches}");
    assert_eq!(wakeups, 1, "one timer wakeup");
    assert_eq!(exits, 2, "both threads exit");
    assert!(idles >= 1, "the core idles at the end");

    // Timestamps are non-decreasing.
    let mut last = Time::ZERO;
    for e in &events {
        assert!(e.at() >= last, "trace must be time-ordered");
        last = e.at();
    }
}

#[test]
fn trace_disabled_by_default() {
    let topo = Topology::single_core();
    let sched = Box::new(SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, SimConfig::frictionless(1), sched);
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "t",
            vec![ThreadSpec::new(
                "h",
                cpu_hog(Dur::millis(5), Dur::millis(5)),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert!(k.trace().is_empty(), "tracing must be opt-in");
    // With tracing off the kernel never even builds the trace records, so
    // nothing is counted as dropped either: the recorder is zero-cost.
    assert_eq!(
        k.trace().dropped(),
        0,
        "disabled tracing must not construct events at all"
    );
}

#[test]
fn trace_is_bounded() {
    let topo = Topology::single_core();
    let mut cfg = SimConfig::frictionless(1);
    cfg.trace_capacity = 8;
    let sched = Box::new(SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, cfg, sched);
    let threads = (0..4)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(50), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("many", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    assert!(k.trace().len() <= 8, "flight recorder stays bounded");
    assert!(k.trace().dropped() > 0, "older events were evicted");
}
