//! Tests of the flight-recorder trace and the streaming sink (SchedScope).

use std::cell::RefCell;
use std::rc::Rc;

use kernel::{
    cpu_hog, AppSpec, Kernel, Script, SimConfig, SimpleRR, ThreadSpec, TraceEvent, TraceSink,
};
use sched_api::{PreemptCause, TaskTable};
use simcore::{Dur, Time};
use topology::Topology;

/// Test double: a [`TraceSink`] that copies every event it observes.
struct Recording(Rc<RefCell<Vec<TraceEvent>>>);

impl TraceSink for Recording {
    fn event(&mut self, ev: &TraceEvent, _tasks: &TaskTable) {
        self.0.borrow_mut().push(*ev);
    }
}

fn traced_kernel() -> Kernel {
    let topo = Topology::single_core();
    let mut cfg = SimConfig::frictionless(1);
    cfg.trace_capacity = 10_000;
    let sched = Box::new(SimpleRR::new(&topo));
    Kernel::new(topo, cfg, sched)
}

#[test]
fn trace_records_switches_wakeups_and_exits() {
    let mut k = traced_kernel();
    let _app = k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "t",
            vec![
                ThreadSpec::new(
                    "sleeper",
                    Box::new(Script::new(vec![
                        kernel::Action::Run(Dur::millis(1)),
                        kernel::Action::Sleep(Dur::millis(5)),
                        kernel::Action::Run(Dur::millis(1)),
                    ])),
                ),
                ThreadSpec::new("hog", cpu_hog(Dur::millis(10), Dur::millis(10))),
            ],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    let events: Vec<_> = k.trace().iter().cloned().collect();
    assert!(!events.is_empty());

    let switches = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Switch { .. }))
        .count();
    let wakeups = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Wakeup { .. }))
        .count();
    let exits = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Exit { .. }))
        .count();
    let idles = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Idle { .. }))
        .count();
    assert!(switches >= 3, "sleeper/hog alternation: {switches}");
    assert_eq!(wakeups, 1, "one timer wakeup");
    assert_eq!(exits, 2, "both threads exit");
    assert!(idles >= 1, "the core idles at the end");

    // Timestamps are non-decreasing.
    let mut last = Time::ZERO;
    for e in &events {
        assert!(e.at() >= last, "trace must be time-ordered");
        last = e.at();
    }
}

#[test]
fn trace_disabled_by_default() {
    let topo = Topology::single_core();
    let sched = Box::new(SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, SimConfig::frictionless(1), sched);
    k.queue_app(
        Time::ZERO,
        AppSpec::new(
            "t",
            vec![ThreadSpec::new(
                "h",
                cpu_hog(Dur::millis(5), Dur::millis(5)),
            )],
        ),
    );
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert!(k.trace().is_empty(), "tracing must be opt-in");
    // With tracing off the kernel never even builds the trace records, so
    // nothing is counted as dropped either: the recorder is zero-cost.
    assert_eq!(
        k.trace().dropped(),
        0,
        "disabled tracing must not construct events at all"
    );
}

#[test]
fn streaming_sink_sees_every_buffered_event() {
    let mut k = traced_kernel();
    let seen = Rc::new(RefCell::new(Vec::new()));
    k.set_trace_sink(Box::new(Recording(Rc::clone(&seen))));
    let threads = (0..3)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(20), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    assert_eq!(k.trace().dropped(), 0, "capacity covers the whole run");
    let buffered: Vec<TraceEvent> = k.trace().iter().cloned().collect();
    assert!(!buffered.is_empty());
    assert_eq!(
        *seen.borrow(),
        buffered,
        "the sink must observe exactly the flight recorder's stream"
    );
}

#[test]
fn sink_streams_without_any_buffer() {
    // trace_capacity = 0: the flight recorder is off, yet an installed
    // sink still receives the full event stream — the unbounded-run
    // export mode. Removing the sink turns tracing back off.
    let topo = Topology::single_core();
    let sched = Box::new(SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, SimConfig::frictionless(1), sched);
    let seen = Rc::new(RefCell::new(Vec::new()));
    k.set_trace_sink(Box::new(Recording(Rc::clone(&seen))));
    let threads = (0..2)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(10), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(1)));
    assert!(k.trace().is_empty(), "no buffer was configured");
    let streamed = seen.borrow().len();
    assert!(streamed > 0, "sink must receive events with no buffer");
    assert!(k.take_trace_sink().is_some());
    let mut k2 = k;
    k2.queue_app(
        k2.now(),
        AppSpec::new(
            "more",
            vec![ThreadSpec::new(
                "h",
                cpu_hog(Dur::millis(5), Dur::millis(5)),
            )],
        ),
    );
    assert!(k2.run_until_apps_done(k2.now() + Dur::secs(1)));
    assert_eq!(
        seen.borrow().len(),
        streamed,
        "after take_trace_sink, tracing is off again"
    );
}

#[test]
fn preemptions_are_cause_tagged_and_slices_match_switches() {
    // Two hogs on one core: SimpleRR expires slices, so every preemption
    // is tick-driven and tagged `SliceExpired`, and the per-cause split
    // must add up to the total.
    let mut k = traced_kernel();
    let threads = (0..2)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(30), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    let c = k.counters();
    assert!(c.tick_preemptions > 0, "slice expiry must preempt");
    assert_eq!(
        c.preemptions,
        c.tick_preemptions + c.wakeup_preemptions,
        "cause split must cover all preemptions"
    );
    let mut preempts = 0;
    let mut switches = 0;
    for e in k.trace().iter() {
        match e {
            TraceEvent::Preempt { cause, by, .. } => {
                preempts += 1;
                assert_eq!(*cause, PreemptCause::SliceExpired);
                assert!(by.is_none(), "tick preemptions have no preemptor task");
            }
            TraceEvent::Switch { .. } => switches += 1,
            _ => {}
        }
    }
    assert_eq!(preempts, c.preemptions, "every preemption is traced");
    assert_eq!(
        switches, c.ctx_switches,
        "Switch events mirror the ctx-switch counter exactly"
    );
}

#[test]
fn dispatch_latency_histograms_populate() {
    let mut k = traced_kernel();
    let threads = (0..2)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(20), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    let rd = k.run_delay().summary();
    let wl = k.wakeup_latency().summary();
    assert!(rd.count > 0, "every dispatch records a run delay");
    assert!(
        wl.count <= rd.count,
        "wakeup latency samples are a subset of run delays"
    );
    assert!(rd.max_ms >= rd.p99_ms && rd.p99_ms >= rd.p50_ms);
}

#[test]
fn trace_is_bounded() {
    let topo = Topology::single_core();
    let mut cfg = SimConfig::frictionless(1);
    cfg.trace_capacity = 8;
    let sched = Box::new(SimpleRR::new(&topo));
    let mut k = Kernel::new(topo, cfg, sched);
    let threads = (0..4)
        .map(|i| ThreadSpec::new(format!("h{i}"), cpu_hog(Dur::millis(50), Dur::millis(5))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("many", threads));
    assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(2)));
    assert!(k.trace().len() <= 8, "flight recorder stays bounded");
    assert!(k.trace().dropped() > 0, "older events were evicted");
}
