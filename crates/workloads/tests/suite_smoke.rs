//! Smoke tests: every suite entry must build, run to completion, and
//! produce a positive performance number under *both* real schedulers.

use cfs::Cfs;
use kernel::{Kernel, SimConfig};
use simcore::{Dur, Time};
use topology::Topology;
use ule::Ule;
use workloads::{multicore_extra, suite, Metric, P};

fn run_entry_smoke(entry: &workloads::Entry, use_ule: bool) {
    let topo = Topology::flat(4);
    let sched: Box<dyn sched_api::Scheduler> = if use_ule {
        Box::new(Ule::new(&topo))
    } else {
        Box::new(Cfs::new(&topo))
    };
    let mut k = Kernel::new(topo, SimConfig::with_seed(11), sched);
    let p = P::scaled(4, 0.01);
    let spec = (entry.build)(&mut k, &p);
    let app = k.queue_app(Time::ZERO, spec);
    let done = k.run_until_apps_done(Time::ZERO + Dur::secs(400));
    assert!(
        done,
        "{} did not complete under {}",
        entry.name,
        if use_ule { "ULE" } else { "CFS" }
    );
    let a = k.app(app);
    match entry.metric {
        Metric::Ops => assert!(a.ops > 0, "{} produced no ops", entry.name),
        Metric::InvTime => assert!(
            a.elapsed().unwrap() > Dur::ZERO,
            "{} has zero elapsed time",
            entry.name
        ),
    }
}

#[test]
fn every_suite_entry_completes_under_cfs() {
    for entry in suite() {
        run_entry_smoke(&entry, false);
    }
}

#[test]
fn every_suite_entry_completes_under_ule() {
    for entry in suite() {
        run_entry_smoke(&entry, true);
    }
}

#[test]
fn hackbench_entries_complete_under_both() {
    for entry in multicore_extra() {
        run_entry_smoke(&entry, false);
        run_entry_smoke(&entry, true);
    }
}

/// The per-thread counts the paper describes: NAS/PARSEC spawn one worker
/// per core; apache runs 100 servers + ab; c-ray spawns 512 renderers.
#[test]
fn thread_counts_match_paper_descriptions() {
    let topo = Topology::flat(4);
    let mut k = Kernel::new(
        topo.clone(),
        SimConfig::with_seed(1),
        Box::new(Cfs::new(&topo)),
    );
    let p = P::scaled(4, 0.01);

    let all = suite();
    let nas = all.iter().find(|e| e.name == "MG").unwrap();
    assert_eq!((nas.build)(&mut k, &p).threads.len(), 4, "MG: 1/core");

    let apache = all.iter().find(|e| e.name == "Apache").unwrap();
    assert_eq!(
        (apache.build)(&mut k, &p).threads.len(),
        101,
        "apache: 100 httpd + ab"
    );

    let sysbench = all.iter().find(|e| e.name == "Sysbench").unwrap();
    assert_eq!(
        (sysbench.build)(&mut k, &p).threads.len(),
        1,
        "sysbench: master forks its 80 workers at runtime"
    );
}
