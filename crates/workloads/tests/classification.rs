//! ULE-classification assertions per workload: the paper's per-application
//! analyses all hinge on *which* threads ULE deems interactive. These tests
//! pin that mapping down for the key workloads.

use kernel::{Kernel, SimConfig};
use simcore::{Dur, Time};
use topology::Topology;
use ule::Ule;
use workloads::{sysbench::SysbenchCfg, P};

fn ule_kernel(cores: u32) -> Kernel {
    let topo = Topology::flat(cores);
    Kernel::new(
        topo.clone(),
        SimConfig::with_seed(5),
        Box::new(Ule::new(&topo)),
    )
}

#[test]
fn fibo_is_batch_sysbench_workers_are_interactive() {
    let mut k = ule_kernel(1);
    let fibo = k.queue_app(Time::ZERO, workloads::synthetic::fibo(Dur::secs(30)));
    let spec = workloads::sysbench::sysbench(
        &mut k,
        SysbenchCfg {
            threads: 20,
            total_tx: 50_000,
            ..Default::default()
        },
    );
    let db = k.queue_app(Time::ZERO, spec);
    k.run_until(Time::ZERO + Dur::secs(4));

    let fibo_tid = k.app_tasks(fibo)[0];
    assert_eq!(k.snapshot(fibo_tid).interactive, Some(false), "fibo: batch");
    assert!(k.snapshot(fibo_tid).ule_penalty.unwrap() >= 90);

    let workers: Vec<_> = k.app_tasks(db).into_iter().skip(1).collect();
    let interactive = workers
        .iter()
        .filter(|&&t| k.snapshot(t).interactive == Some(true))
        .count();
    assert!(
        interactive * 10 >= workers.len() * 9,
        "db workers interactive: {interactive}/{}",
        workers.len()
    );
}

#[test]
fn scimark_helpers_are_interactive_compute_is_batch() {
    let mut k = ule_kernel(1);
    let p = P::scaled(1, 0.2);
    let spec = workloads::phoronix::SCIMARK_BUILDERS[0](&mut k, &p);
    let app = k.queue_app(Time::ZERO, spec);
    k.run_until(Time::ZERO + Dur::secs(3));
    let tasks = k.app_tasks(app);
    // Thread 0 is the compute kernel; the rest are JVM service threads.
    assert_eq!(
        k.snapshot(tasks[0]).interactive,
        Some(false),
        "compute thread is batch"
    );
    for &h in &tasks[1..] {
        assert_eq!(
            k.snapshot(h).interactive,
            Some(true),
            "JVM service threads are interactive"
        );
    }
}

#[test]
fn nas_threads_turn_batch_after_startup() {
    // §5.2: "the scientific applications we tested are not impacted by
    // starvation, because their threads never sleep. After a short
    // initialization period all threads are considered as background".
    let mut k = ule_kernel(4);
    let p = P::scaled(4, 0.3);
    let spec = workloads::nas::ep(&mut k, &p);
    let app = k.queue_app(Time::ZERO, spec);
    // Mid-computation (EP phases are seconds long), before any thread exits.
    k.run_until(Time::ZERO + Dur::millis(1200));
    for &t in &k.app_tasks(app) {
        assert_eq!(k.snapshot(t).interactive, Some(false), "EP threads: batch");
    }
}

#[test]
fn apache_server_threads_are_interactive() {
    let mut k = ule_kernel(1);
    let p = P::scaled(1, 0.2);
    let spec = workloads::apache::apache(&mut k, &p);
    let app = k.queue_app(Time::ZERO, spec);
    // Mid-benchmark, while the server threads are alive.
    k.run_until(Time::ZERO + Dur::millis(200));
    let tasks = k.app_tasks(app);
    let live: Vec<_> = tasks
        .iter()
        .copied()
        .filter(|&t| k.task(t).state != sched_api::TaskState::Dead)
        .collect();
    let interactive = live
        .iter()
        .filter(|&&t| k.snapshot(t).interactive == Some(true))
        .count();
    assert!(
        interactive * 10 >= live.len() * 9,
        "httpd + ab are interactive: {interactive}/{}",
        live.len()
    );
}

#[test]
fn hackbench_threads_are_interactive() {
    let mut k = ule_kernel(4);
    let spec = workloads::synthetic::hackbench(&mut k, 2, 2_000);
    let app = k.queue_app(Time::ZERO, spec);
    k.run_until(Time::ZERO + Dur::millis(500));
    let tasks = k.app_tasks(app);
    let live: Vec<_> = tasks
        .iter()
        .filter(|&&t| k.task(t).state != sched_api::TaskState::Dead)
        .collect();
    let interactive = live
        .iter()
        .filter(|&&&t| k.snapshot(t).interactive == Some(true))
        .count();
    assert!(
        interactive * 2 >= live.len(),
        "pipe-bound threads lean interactive: {interactive}/{}",
        live.len()
    );
}
