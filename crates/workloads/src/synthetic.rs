//! Synthetic workloads: fibo, spinner storms (Figure 6) and hackbench.

use kernel::{cpu_hog, from_fn, spinner, Action, AppSpec, Kernel, ThreadSpec};
use simcore::Dur;
use topology::CpuId;

use crate::P;

/// fibo: "a synthetic application computing Fibonacci numbers" — one
/// CPU-bound thread that never sleeps. `work` is its total CPU demand.
pub fn fibo(work: Dur) -> AppSpec {
    AppSpec::new(
        "fibo",
        vec![ThreadSpec::new("fibo", cpu_hog(work, Dur::millis(5)))],
    )
}

/// The fibo instance used in the Figure 5/8 suite (§5.3 sizing).
pub fn fibo_suite(_k: &mut Kernel, p: &P) -> AppSpec {
    fibo(p.work(Dur::secs(30)))
}

/// The Figure 6 workload: `n` spinning threads (infinite empty loops)
/// pinned to core 0 until a `taskset` unpins them.
pub fn pinned_spinners(n: usize) -> AppSpec {
    AppSpec::new(
        "spinners",
        (0..n)
            .map(|i| {
                ThreadSpec::new(format!("spin{i}"), spinner(Dur::millis(4))).pinned(vec![CpuId(0)])
            })
            .collect(),
    )
    .daemon()
}

/// hackbench: "creates a large number of threads that run for a short
/// amount of time and exchange data using pipes". `groups` of 20 senders +
/// 20 receivers each; every sender sends `msgs` messages into the group's
/// pipe and every receiver drains its share.
pub fn hackbench(k: &mut Kernel, groups: usize, msgs: u64) -> AppSpec {
    const SENDERS: usize = 20;
    const RECEIVERS: usize = 20;
    let mut threads = Vec::with_capacity(groups * (SENDERS + RECEIVERS));
    for g in 0..groups {
        let q = k.new_queue(400);
        for s in 0..SENDERS {
            threads.push(ThreadSpec::new(
                format!("hb-send-{g}-{s}"),
                from_fn({
                    let mut sent = 0u64;
                    let mut phase = false;
                    move |_ctx| {
                        if sent == msgs {
                            return Action::Exit;
                        }
                        phase = !phase;
                        if phase {
                            Action::Run(Dur::micros(5))
                        } else {
                            sent += 1;
                            Action::QueuePut(q, sent)
                        }
                    }
                }),
            ));
        }
        let quota = msgs * SENDERS as u64 / RECEIVERS as u64;
        for r in 0..RECEIVERS {
            threads.push(ThreadSpec::new(
                format!("hb-recv-{g}-{r}"),
                from_fn({
                    let mut got = 0u64;
                    let mut pending = false;
                    move |ctx| {
                        if pending && ctx.value.is_some() {
                            pending = false;
                            got += 1;
                            return Action::Run(Dur::micros(5));
                        }
                        if got == quota {
                            return Action::Exit;
                        }
                        pending = true;
                        Action::QueueGet(q)
                    }
                }),
            ));
        }
    }
    AppSpec::new(format!("hackbench-{groups}"), threads)
}

/// Figure 8's `Hackb-800`: 800 groups ≈ 32 000 threads. Scaling shrinks
/// the number of groups, not the per-pipe message count (fewer groups is
/// the same benchmark on a smaller machine; fewer messages degenerates it).
pub fn hackbench_800(k: &mut Kernel, p: &P) -> AppSpec {
    hackbench(k, p.count(800) as usize, 120)
}

/// Figure 8's `Hackb-10`: 10 groups = 400 threads.
pub fn hackbench_10(k: &mut Kernel, _p: &P) -> AppSpec {
    hackbench(k, 10, 150)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn hackbench_completes_and_counts() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let spec = hackbench(&mut k, 2, 10);
        assert_eq!(spec.threads.len(), 80);
        let app = k.queue_app(Time::ZERO, spec);
        assert!(
            k.run_until_apps_done(Time::ZERO + Dur::secs(30)),
            "hackbench must drain"
        );
        assert!(k.app(app).finished.is_some());
    }

    #[test]
    fn fibo_is_single_threaded() {
        let spec = fibo(Dur::secs(1));
        assert_eq!(spec.threads.len(), 1);
    }
}
