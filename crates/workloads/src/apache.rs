//! The apache benchmark: httpd (100 server threads) driven by `ab`, a
//! single-threaded load injector (§5.3).
//!
//! "ab starts by sending 100 requests to the httpd server, and then waits
//! for the server to answer. When ab is woken up, it checks which requests
//! have been processed and sends new requests to the server. Since ab is
//! single-threaded, all requests are sent sequentially. In ULE, ab is able
//! to send as many new requests as it has received responses. In CFS,
//! every request sent by ab wakes up a httpd thread, which preempts ab."

use kernel::{Action, AppSpec, Behavior, Ctx, Kernel, QueueId, ThreadSpec};
use simcore::{Dur, Time};

use crate::P;

/// Apache sizing.
#[derive(Debug, Clone)]
pub struct ApacheCfg {
    /// httpd worker threads (100 in the paper).
    pub server_threads: usize,
    /// Total requests ab issues.
    pub requests: u64,
    /// Outstanding-request window (ab's concurrency, 100 in the paper).
    pub window: u64,
    /// Service CPU per request.
    pub service: Dur,
    /// ab CPU per response processed.
    pub ab_cpu: Dur,
}

impl Default for ApacheCfg {
    fn default() -> Self {
        ApacheCfg {
            server_threads: 100,
            requests: 20_000,
            window: 100,
            service: Dur::micros(100),
            ab_cpu: Dur::micros(30),
        }
    }
}

const STOP: u64 = u64::MAX;

/// One httpd worker: blocks on the request queue, serves, responds.
struct Httpd {
    req: QueueId,
    resp: QueueId,
    service: Dur,
    state: u8, // 0 = want request, 1 = got one (serve), 2 = respond
    current: u64,
}

impl Behavior for Httpd {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            0 => {
                self.state = 1;
                Action::QueueGet(self.req)
            }
            1 => {
                let v = ctx.value.expect("request token");
                if v == STOP {
                    return Action::Exit;
                }
                self.current = v;
                self.state = 2;
                Action::Run(self.service)
            }
            _ => {
                self.state = 0;
                Action::QueuePut(self.resp, self.current)
            }
        }
    }
}

/// The ab load injector.
struct Ab {
    req: QueueId,
    resp: QueueId,
    cfg: ApacheCfg,
    sent: u64,
    received: u64,
    stops_sent: usize,
    state: u8, // 0 seed window, 1 wait response, 2 process, 3 send next, 4 stop
    issue_times: std::collections::VecDeque<Time>,
    sent_at: Vec<Time>,
}

impl Behavior for Ab {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        loop {
            match self.state {
                // Seed the initial window of 100 requests.
                0 => {
                    if self.sent < self.cfg.window.min(self.cfg.requests) {
                        self.sent += 1;
                        self.sent_at.push(ctx.now);
                        return Action::QueuePut(self.req, self.sent - 1);
                    }
                    self.state = 1;
                }
                // Wait for a response.
                1 => {
                    if self.received == self.cfg.requests {
                        self.state = 4;
                        continue;
                    }
                    self.state = 2;
                    return Action::QueueGet(self.resp);
                }
                // Process the response: account latency + burn parse CPU.
                2 => {
                    let id = ctx.value.expect("response token") as usize;
                    self.received += 1;
                    self.issue_times.push_back(self.sent_at[id]);
                    self.state = 3;
                    let lat = ctx.now.saturating_since(self.sent_at[id]);
                    return Action::RecordLatency(lat);
                }
                3 => {
                    self.state = 5;
                    return Action::CountOps(1);
                }
                5 => {
                    self.state = 6;
                    return Action::Run(self.cfg.ab_cpu);
                }
                // Send a replacement request, then wait again.
                6 => {
                    self.state = 1;
                    if self.sent < self.cfg.requests {
                        self.sent += 1;
                        self.sent_at.push(ctx.now);
                        return Action::QueuePut(self.req, self.sent - 1);
                    }
                }
                // Shut the server down.
                4 => {
                    if self.stops_sent < self.cfg.server_threads {
                        self.stops_sent += 1;
                        return Action::QueuePut(self.req, STOP);
                    }
                    return Action::Exit;
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Build the apache benchmark (httpd + ab in one reported application, as
/// in the paper's figures).
pub fn apache_cfg(k: &mut Kernel, cfg: ApacheCfg) -> AppSpec {
    let req = k.new_queue(cfg.requests as usize + cfg.server_threads + 1);
    let resp = k.new_queue(cfg.requests as usize + 1);
    let mut threads: Vec<ThreadSpec> = (0..cfg.server_threads)
        .map(|i| {
            ThreadSpec::new(
                format!("httpd-{i}"),
                Box::new(Httpd {
                    req,
                    resp,
                    service: cfg.service,
                    state: 0,
                    current: 0,
                }) as Box<dyn Behavior>,
            )
            // Server daemons mostly sleep waiting for requests.
            .with_history(Dur::ZERO, Dur::secs(2))
        })
        .collect();
    let n = cfg.requests as usize;
    threads.push(
        ThreadSpec::new(
            "ab",
            Box::new(Ab {
                req,
                resp,
                cfg,
                sent: 0,
                received: 0,
                stops_sent: 0,
                state: 0,
                issue_times: std::collections::VecDeque::new(),
                sent_at: Vec::with_capacity(n),
            }) as Box<dyn Behavior>,
        )
        .with_history(Dur::ZERO, Dur::secs(2)),
    );
    AppSpec::new("apache", threads)
}

/// Suite instance.
pub fn apache(k: &mut Kernel, p: &P) -> AppSpec {
    apache_cfg(
        k,
        ApacheCfg {
            requests: p.count(20_000),
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn apache_serves_all_requests() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let spec = apache_cfg(
            &mut k,
            ApacheCfg {
                server_threads: 8,
                requests: 300,
                window: 20,
                ..Default::default()
            },
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(60)));
        let a = k.app(app);
        assert_eq!(a.ops, 300);
        assert_eq!(a.lat_count, 300);
        assert!(a.avg_latency().unwrap() > Dur::ZERO);
    }
}
