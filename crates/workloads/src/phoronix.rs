//! The 16 Phoronix applications (§4.2): compilation, compression, image
//! processing, scientific kernels, cryptography and the c-ray renderer.

use kernel::{
    cpu_hog, from_fn, Action, AppSpec, Behavior, Ctx, Kernel, QueueId, SemId, ThreadSpec,
};
use simcore::Dur;

use crate::P;

const STOP: u64 = u64::MAX;

// ---------------------------------------------------------------------
// Compilation: a queue of compile jobs drained by one worker per core.
// ---------------------------------------------------------------------

struct BuildWorker {
    jobs: QueueId,
    job_cpu: Dur,
    io: Dur,
    state: u8,
    cur: Dur,
}

impl Behavior for BuildWorker {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            0 => {
                self.state = 1;
                Action::QueueGet(self.jobs)
            }
            1 => {
                let v = ctx.value.expect("job token");
                if v == STOP {
                    return Action::Exit;
                }
                // Compile jobs vary widely in size (±50%).
                let base = self.job_cpu.as_nanos();
                self.cur = Dur(ctx.rng.gen_range(base / 2, base * 3 / 2));
                self.state = 2;
                Action::Run(self.cur)
            }
            _ => {
                self.state = 0;
                // Write the object file.
                Action::Sleep(self.io)
            }
        }
    }
}

fn build_app(
    k: &mut Kernel,
    name: &'static str,
    jobs: u64,
    job_cpu: Dur,
    io: Dur,
    workers: usize,
) -> AppSpec {
    let q = k.new_queue(jobs as usize + workers + 1);
    let mut threads = vec![ThreadSpec::new(
        format!("{name}-make"),
        from_fn({
            let mut sent = 0u64;
            let total = jobs + workers as u64; // jobs + stop pills
            move |_ctx| {
                if sent == total {
                    return Action::Exit;
                }
                sent += 1;
                let tok = if sent > jobs { STOP } else { sent };
                Action::QueuePut(q, tok)
            }
        }),
    )];
    for i in 0..workers {
        threads.push(ThreadSpec::new(
            format!("{name}-cc{i}"),
            Box::new(BuildWorker {
                jobs: q,
                job_cpu,
                io,
                state: 0,
                cur: Dur::ZERO,
            }) as Box<dyn Behavior>,
        ));
    }
    AppSpec::new(name, threads)
}

/// build-apache: medium-size C project.
pub fn build_apache(k: &mut Kernel, p: &P) -> AppSpec {
    build_app(
        k,
        "build-apache",
        p.count(400),
        Dur::millis(60),
        Dur::millis(2),
        p.ncores,
    )
}

/// build-php: larger project, smaller average translation units.
pub fn build_php(k: &mut Kernel, p: &P) -> AppSpec {
    build_app(
        k,
        "build-php",
        p.count(800),
        Dur::millis(40),
        Dur::millis(2),
        p.ncores,
    )
}

// ---------------------------------------------------------------------
// Compression
// ---------------------------------------------------------------------

/// 7zip: parallel compression, one worker per core over a block queue.
pub fn sevenzip(k: &mut Kernel, p: &P) -> AppSpec {
    build_app(
        k,
        "7zip",
        p.count(1200),
        Dur::millis(15),
        Dur::micros(300),
        p.ncores,
    )
}

/// gzip: single-threaded streaming compression with read I/O.
pub fn gzip(_k: &mut Kernel, p: &P) -> AppSpec {
    let chunks = p.count(4000);
    AppSpec::new(
        "gzip",
        vec![ThreadSpec::new(
            "gzip",
            from_fn({
                let mut done = 0u64;
                let mut phase = false;
                move |_ctx| {
                    if done == chunks {
                        return Action::Exit;
                    }
                    phase = !phase;
                    if phase {
                        Action::Run(Dur::millis(3))
                    } else {
                        done += 1;
                        Action::Sleep(Dur::micros(300))
                    }
                }
            }),
        )],
    )
}

// ---------------------------------------------------------------------
// c-ray (§6.2, Figure 7): 512 threads woken through a cascade.
// ---------------------------------------------------------------------

/// c-ray configuration.
#[derive(Debug, Clone)]
pub struct CrayCfg {
    /// Rendering threads (512 in the paper).
    pub threads: usize,
    /// CPU work per thread.
    pub work: Dur,
    /// Master CPU burned per thread created (drives the §5.2-style
    /// interactivity split among the children).
    pub spawn_cost: Dur,
}

impl Default for CrayCfg {
    fn default() -> Self {
        CrayCfg {
            threads: 512,
            work: Dur::millis(120),
            spawn_cost: Dur::millis(4),
        }
    }
}

/// Build c-ray: the master forks all threads (burning CPU in between, so
/// children inherit increasing penalties), then kicks a cascade where
/// thread i wakes thread i+1; each thread then renders its scanlines.
pub fn cray(k: &mut Kernel, cfg: CrayCfg) -> AppSpec {
    let sems: Vec<SemId> = (0..cfg.threads).map(|_| k.new_sem(0)).collect();
    let master = from_fn({
        let sems = sems.clone();
        let cfg = cfg.clone();
        let mut spawned = 0usize;
        let mut ran = false;
        move |_ctx| {
            if spawned == cfg.threads {
                // Kick the cascade.
                spawned += 1;
                return Action::SemPost(sems[0]);
            }
            if spawned > cfg.threads {
                return Action::Exit;
            }
            if !ran {
                ran = true;
                return Action::Run(cfg.spawn_cost);
            }
            ran = false;
            let i = spawned;
            spawned += 1;
            let wait = sems[i];
            let next = sems.get(i + 1).copied();
            let work = cfg.work;
            let renderer = from_fn({
                let mut state = 0u8;
                move |_ctx| {
                    state += 1;
                    match (state, next) {
                        // Per-thread startup (stack setup, scene copy):
                        // a short run that also spreads fork placement.
                        (1, _) => Action::Run(Dur::micros(200)),
                        // Cascading barrier: wait to be woken...
                        (2, _) => Action::SemWait(wait),
                        // ...wake the next thread...
                        (3, Some(n)) => Action::SemPost(n),
                        (3, None) => Action::Run(work),
                        // ...then render.
                        (4, Some(_)) => Action::Run(work),
                        _ => Action::Exit,
                    }
                }
            });
            Action::Spawn(ThreadSpec::new(format!("cray-{i}"), renderer))
        }
    });
    AppSpec::new(
        "c-ray",
        // The master is forked from a shell with a modest sleep history, so
        // its penalty crosses the threshold partway through thread
        // creation (the §5.2 mechanism driving Figure 7).
        vec![ThreadSpec::new("cray-master", master).with_history(Dur::ZERO, Dur::millis(2200))],
    )
}

/// Suite instance of c-ray (512 threads, per-thread work scaled).
pub fn cray_default(k: &mut Kernel, p: &P) -> AppSpec {
    cray(
        k,
        CrayCfg {
            threads: 512,
            work: p.work(Dur::millis(120)),
            ..Default::default()
        },
    )
}

// ---------------------------------------------------------------------
// Single-threaded image/scientific kernels
// ---------------------------------------------------------------------

/// dcraw: single-threaded RAW photo decoding.
pub fn dcraw(_k: &mut Kernel, p: &P) -> AppSpec {
    AppSpec::new(
        "dcraw",
        vec![ThreadSpec::new(
            "dcraw",
            cpu_hog(p.work(Dur::secs(25)), Dur::millis(5)),
        )],
    )
}

/// himeno: single-threaded memory-bound pressure solver.
pub fn himeno(_k: &mut Kernel, p: &P) -> AppSpec {
    AppSpec::new(
        "himeno",
        vec![ThreadSpec::new(
            "himeno",
            cpu_hog(p.work(Dur::secs(30)), Dur::millis(5)),
        )],
    )
}

/// hmmer: single-threaded profile HMM search.
pub fn hmmer(_k: &mut Kernel, p: &P) -> AppSpec {
    AppSpec::new(
        "hmmer",
        vec![ThreadSpec::new(
            "hmmer",
            cpu_hog(p.work(Dur::secs(20)), Dur::millis(5)),
        )],
    )
}

// ---------------------------------------------------------------------
// scimark2: a single Java compute thread plus JVM service threads
// (§5.3): "the compute thread can be delayed, because Java system threads
// are considered interactive and get priority over the computation
// thread."
// ---------------------------------------------------------------------

fn scimark(k: &mut Kernel, p: &P, variant: usize) -> AppSpec {
    let _ = k;
    // Variants: the six scimark sub-kernels stress the JVM differently;
    // (helpers, burst ms, sleep ms) per service thread. JVM service work
    // (GC, JIT compilation) comes in multi-millisecond bursts separated by
    // longer idle spans, so the threads classify interactive under ULE
    // (they sleep ≈70% of the time) while demanding more than a fair CFS
    // share in aggregate.
    const VARIANTS: [(usize, u64, u64); 6] = [
        (3, 60, 200),  // (1) composite: light GC
        (3, 80, 200),  // (2) FFT: moderate allocation
        (3, 90, 210),  // (3) Jacobi SOR: heavy GC pressure
        (3, 100, 230), // (4) Monte Carlo: heaviest service activity
        (3, 75, 210),  // (5) sparse matmult
        (3, 65, 190),  // (6) dense LU
    ];
    let (helpers, run_ms, sleep_ms) = VARIANTS[variant - 1];
    let mut threads = vec![ThreadSpec::new(
        format!("scimark{variant}-compute"),
        cpu_hog(p.work(Dur::secs(20)), Dur::millis(5)),
    )];
    for h in 0..helpers {
        threads.push(
            ThreadSpec::new(
                format!("scimark{variant}-jvm{h}"),
                from_fn({
                    let mut phase = false;
                    move |ctx| {
                        phase = !phase;
                        if phase {
                            let r = ctx.rng.gen_range(run_ms * 4 / 5, run_ms * 6 / 5);
                            Action::Run(Dur::millis(r))
                        } else {
                            let s = ctx.rng.gen_range(sleep_ms * 4 / 5, sleep_ms * 6 / 5);
                            Action::Sleep(Dur::millis(s))
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(2))
            .detached(),
        );
    }
    AppSpec::new(format!("scimark2-({variant})"), threads)
}

macro_rules! scimark_builder {
    ($f:ident, $v:expr) => {
        /// One of the six scimark2 sub-benchmarks.
        pub fn $f(k: &mut Kernel, p: &P) -> AppSpec {
            scimark(k, p, $v)
        }
    };
}
scimark_builder!(scimark1, 1);
scimark_builder!(scimark2, 2);
scimark_builder!(scimark3, 3);
scimark_builder!(scimark4, 4);
scimark_builder!(scimark5, 5);
scimark_builder!(scimark6, 6);

/// The six scimark builders.
pub const SCIMARK_BUILDERS: [fn(&mut Kernel, &P) -> AppSpec; 6] =
    [scimark1, scimark2, scimark3, scimark4, scimark5, scimark6];

// ---------------------------------------------------------------------
// john-the-ripper: embarrassingly parallel password cracking.
// ---------------------------------------------------------------------

fn john(_k: &mut Kernel, p: &P, variant: usize) -> AppSpec {
    // Variants are the three hash formats with different kernel sizes.
    let chunk = [Dur::millis(8), Dur::millis(3), Dur::millis(15)][variant - 1];
    let total = p.work(Dur::secs(18));
    AppSpec::new(
        format!("john-({variant})"),
        (0..p.ncores)
            .map(|i| {
                ThreadSpec::new(
                    format!("john{variant}-{i}"),
                    cpu_hog(Dur(total.as_nanos() / p.ncores as u64), chunk),
                )
            })
            .collect(),
    )
}

macro_rules! john_builder {
    ($f:ident, $v:expr) => {
        /// One of the three john-the-ripper hash formats.
        pub fn $f(k: &mut Kernel, p: &P) -> AppSpec {
            john(k, p, $v)
        }
    };
}
john_builder!(john1, 1);
john_builder!(john2, 2);
john_builder!(john3, 3);

/// The three john builders.
pub const JOHN_BUILDERS: [fn(&mut Kernel, &P) -> AppSpec; 3] = [john1, john2, john3];

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    fn mk(cores: u32) -> Kernel {
        let topo = Topology::flat(cores);
        let sched = Box::new(SimpleRR::new(&topo));
        Kernel::new(topo, SimConfig::frictionless(3), sched)
    }

    #[test]
    fn build_app_drains_all_jobs() {
        let mut k = mk(2);
        let p = P::scaled(2, 0.05);
        let spec = build_apache(&mut k, &p);
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(120)));
        assert!(k.app(app).finished.is_some());
    }

    #[test]
    fn cray_cascade_completes() {
        let mut k = mk(2);
        let spec = cray(
            &mut k,
            CrayCfg {
                threads: 16,
                work: Dur::millis(5),
                spawn_cost: Dur::millis(1),
            },
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(30)));
        assert_eq!(k.app(app).spawned, 17);
    }

    #[test]
    fn scimark_compute_finishes_despite_detached_helpers() {
        let mut k = mk(1);
        let p = P::scaled(1, 0.01);
        let spec = scimark1(&mut k, &p);
        let app = k.queue_app(Time::ZERO, spec);
        assert!(
            k.run_until_apps_done(Time::ZERO + Dur::secs(60)),
            "detached JVM helpers must not block completion"
        );
        assert!(k.app(app).finished.is_some());
    }
}
