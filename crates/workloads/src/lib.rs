//! Behaviour models of the paper's benchmark suite (§4.2).
//!
//! "We use 37 applications ranging from scientific HPC applications to
//! databases": fibo and hackbench (synthetic), 16 Phoronix applications,
//! the NAS parallel benchmarks, the PARSEC suite, and sysbench/MySQL and
//! RocksDB as database workloads.
//!
//! Each application is modelled by the run/sleep/synchronisation structure
//! the paper uses to explain its behaviour — e.g. sysbench threads "mostly
//! wait for incoming requests, or for data stored on disk", NAS MG "waits
//! on a spin-barrier for 100 ms and then sleeps", ab sends requests in
//! windows of 100 — so the scheduler-induced effects (starvation,
//! misplacement, preemption costs) *emerge* from the model rather than
//! being scripted.
//!
//! The [`suite`] registry lists every application of Figures 5 and 8 in the
//! paper's x-axis order; [`P`] scales work sizes so tests and Criterion
//! benches can run shortened versions of the same models.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apache;
pub mod nas;
pub mod noise;
pub mod parsec;
pub mod phoronix;
pub mod rocksdb;
pub mod synthetic;
pub mod sysbench;

use kernel::{AppSpec, Kernel};
use simcore::Dur;

/// Workload sizing parameters.
#[derive(Debug, Clone, Copy)]
pub struct P {
    /// Number of cores of the machine under test (workloads that "spawn as
    /// many threads as there are cores" use this).
    pub ncores: usize,
    /// Scale factor on *work volumes* (iteration/transaction counts), not
    /// on per-operation timing — classification behaviour is preserved
    /// while total simulated time shrinks.
    pub scale: f64,
}

impl P {
    /// Full-size workload on `ncores`.
    pub fn full(ncores: usize) -> P {
        P { ncores, scale: 1.0 }
    }

    /// Scaled-down workload (for tests/benches).
    pub fn scaled(ncores: usize, scale: f64) -> P {
        P { ncores, scale }
    }

    /// Scale a count, keeping it at least 1.
    pub fn count(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }

    /// Scale a duration that represents total work volume.
    pub fn work(&self, base: Dur) -> Dur {
        Dur(((base.as_nanos() as f64 * self.scale).round() as u64).max(1))
    }
}

/// How an application's "performance" is measured (§5.3): "for database
/// workloads and NAS applications, we compare the number of operations per
/// second, and for the other applications we compare 1/execution time".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Operations per second over the app's lifetime.
    Ops,
    /// Inverse of the completion time.
    InvTime,
}

/// One entry of the benchmark suite.
pub struct Entry {
    /// Display name, matching the paper's figure labels.
    pub name: &'static str,
    /// Performance metric.
    pub metric: Metric,
    /// Builder: creates sync objects on the kernel and returns the app.
    pub build: fn(&mut Kernel, &P) -> AppSpec,
}

/// The Figure 5 / Figure 8 suite, in the paper's x-axis order.
pub fn suite() -> Vec<Entry> {
    let mut v = vec![
        Entry {
            name: "Build-apache",
            metric: Metric::InvTime,
            build: phoronix::build_apache,
        },
        Entry {
            name: "Build-php",
            metric: Metric::InvTime,
            build: phoronix::build_php,
        },
        Entry {
            name: "7zip",
            metric: Metric::InvTime,
            build: phoronix::sevenzip,
        },
        Entry {
            name: "Gzip",
            metric: Metric::InvTime,
            build: phoronix::gzip,
        },
        Entry {
            name: "C-Ray",
            metric: Metric::InvTime,
            build: phoronix::cray_default,
        },
        Entry {
            name: "DCraw",
            metric: Metric::InvTime,
            build: phoronix::dcraw,
        },
        Entry {
            name: "himeno",
            metric: Metric::InvTime,
            build: phoronix::himeno,
        },
        Entry {
            name: "hmmer",
            metric: Metric::InvTime,
            build: phoronix::hmmer,
        },
    ];
    for i in 1..=6 {
        v.push(Entry {
            name: Box::leak(format!("scimark2-({i})").into_boxed_str()),
            metric: Metric::InvTime,
            build: phoronix::SCIMARK_BUILDERS[i - 1],
        });
    }
    for i in 1..=3 {
        v.push(Entry {
            name: Box::leak(format!("john-({i})").into_boxed_str()),
            metric: Metric::InvTime,
            build: phoronix::JOHN_BUILDERS[i - 1],
        });
    }
    v.push(Entry {
        name: "Apache",
        metric: Metric::Ops,
        build: apache::apache,
    });
    for (name, build) in nas::ALL {
        v.push(Entry {
            name,
            metric: Metric::Ops,
            build: *build,
        });
    }
    v.push(Entry {
        name: "Sysbench",
        metric: Metric::Ops,
        build: sysbench::sysbench_default,
    });
    v.push(Entry {
        name: "Rocksdb",
        metric: Metric::Ops,
        build: rocksdb::rocksdb,
    });
    for (name, build) in parsec::ALL {
        v.push(Entry {
            name,
            metric: Metric::InvTime,
            build: *build,
        });
    }
    v
}

/// The extra multicore-only entries of Figure 8.
pub fn multicore_extra() -> Vec<Entry> {
    vec![
        Entry {
            name: "Hackb-800",
            metric: Metric::InvTime,
            build: synthetic::hackbench_800,
        },
        Entry {
            name: "Hackb-10",
            metric: Metric::InvTime,
            build: synthetic::hackbench_10,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_papers_applications() {
        let s = suite();
        let names: Vec<&str> = s.iter().map(|e| e.name).collect();
        // 18 phoronix bars (8 + 6 scimark + 3 john + Apache) + 10 NAS +
        // 2 DB + 12 PARSEC = 42 bars (scimark and john each contribute
        // multiple variants of one app, matching the paper's Figure 5
        // x-axis over its "37 applications").
        assert_eq!(s.len(), 42, "{names:?}");
        for expected in [
            "Build-apache",
            "C-Ray",
            "scimark2-(1)",
            "john-(3)",
            "Apache",
            "MG",
            "EP",
            "Sysbench",
            "Rocksdb",
            "blackscholes",
            "ferret",
            "x264",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn scaling_helpers() {
        let p = P::scaled(4, 0.1);
        assert_eq!(p.count(100), 10);
        assert_eq!(p.count(1), 1);
        assert_eq!(p.work(Dur::secs(10)), Dur::secs(1));
    }
}
