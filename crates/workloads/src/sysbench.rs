//! The sysbench/MySQL OLTP read-write model (§5.1, §5.2, Figures 1–4).
//!
//! Structure encoded from the paper:
//!
//! * The master thread is forked from `bash`, which mostly sleeps, so it
//!   starts interactive; it then initialises data and spawns workers
//!   *without sleeping*, so its penalty rises while it forks — early
//!   workers inherit an interactive history, late ones a batch history
//!   (§5.2, Figures 3/4).
//! * Worker threads process transactions in a closed loop; each
//!   transaction takes a lock (MySQL lock contention, §6.4), burns a
//!   little CPU and waits for "data stored on disk", so workers sleep more
//!   than they run and classify interactive (§5.1).

use kernel::{from_fn, Action, AppSpec, Behavior, Ctx, Kernel, MutexId, ThreadSpec};
use simcore::{Dur, Time};

use crate::P;

/// Sysbench sizing.
#[derive(Debug, Clone)]
pub struct SysbenchCfg {
    /// Worker threads (80 in §5.1, 128 in §5.2).
    pub threads: usize,
    /// Total transactions shared by all workers (a global pool, as
    /// sysbench's fixed event budget; workers exit when it drains).
    pub total_tx: u64,
    /// Number of database locks.
    pub locks: usize,
    /// CPU inside the critical section.
    pub crit: Dur,
    /// CPU outside the critical section (query processing).
    pub think: Dur,
    /// Disk/network wait per transaction (voluntary sleep).
    pub io: Dur,
    /// Master CPU burned per worker spawned (data initialisation).
    pub init_per_thread: Dur,
}

impl Default for SysbenchCfg {
    fn default() -> Self {
        SysbenchCfg {
            threads: 80,
            total_tx: 40_000,
            locks: 8,
            crit: Dur::micros(30),
            think: Dur::micros(470),
            io: Dur::micros(1500),
            init_per_thread: Dur::millis(32),
        }
    }
}

enum Step {
    /// Wait at the start gate until the master created every thread (as
    /// sysbench does: all threads are created, then the run begins).
    Gate,
    Begin,
    /// Pool-take result pending.
    Claimed,
    Crit,
    Unlock,
    Think,
    Io,
    Account,
    Latency,
}

/// One OLTP worker: a closed transaction loop over the shared budget.
struct Worker {
    cfg: SysbenchCfg,
    locks: Vec<MutexId>,
    gate: kernel::SemId,
    pool: kernel::PoolId,
    step: Step,
    tx_start: Time,
    lock: usize,
}

impl Behavior for Worker {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.step {
            Step::Gate => {
                self.step = Step::Begin;
                Action::SemWait(self.gate)
            }
            Step::Begin => {
                // Claim one transaction from the shared budget.
                self.step = Step::Claimed;
                Action::PoolTake(self.pool)
            }
            Step::Claimed => {
                if ctx.value != Some(1) {
                    return Action::Exit; // budget drained
                }
                self.tx_start = ctx.now;
                self.step = Step::Think;
                // Row processing happens first, while already on CPU...
                Action::Run(self.cfg.think)
            }
            Step::Think => {
                // ...then the short index latch is taken hot.
                self.lock = ctx.rng.gen_below(self.locks.len() as u64) as usize;
                self.step = Step::Crit;
                Action::MutexLock(self.locks[self.lock])
            }
            Step::Crit => {
                self.step = Step::Unlock;
                Action::Run(self.cfg.crit)
            }
            Step::Unlock => {
                self.step = Step::Io;
                Action::MutexUnlock(self.locks[self.lock])
            }
            Step::Io => {
                self.step = Step::Account;
                // "waiting for data stored on disk": jittered ±25%.
                let base = self.cfg.io.as_nanos();
                let jit = ctx.rng.gen_range(base * 3 / 4, base * 5 / 4);
                Action::Sleep(Dur(jit))
            }
            Step::Account => {
                self.step = Step::Latency;
                Action::CountOps(1)
            }
            Step::Latency => {
                self.step = Step::Begin;
                Action::RecordLatency(ctx.now.saturating_since(self.tx_start))
            }
        }
    }
}

/// Build a sysbench app.
pub fn sysbench(k: &mut Kernel, cfg: SysbenchCfg) -> AppSpec {
    let locks: Vec<MutexId> = (0..cfg.locks).map(|_| k.new_mutex()).collect();
    let gate = k.new_sem(0);
    let pool = k.new_pool(cfg.total_tx);
    let master = from_fn({
        let cfg = cfg.clone();
        let locks = locks.clone();
        let mut spawned = 0usize;
        let mut released = 0usize;
        let mut init_done = false;
        move |_ctx| {
            if spawned == cfg.threads {
                // All created: open the start gate, then exit.
                if released < cfg.threads {
                    released += 1;
                    return Action::SemPost(gate);
                }
                return Action::Exit;
            }
            // Initialise this worker's table shard (pure CPU, no sleep —
            // the master's penalty rises while it forks), then spawn it.
            if !init_done {
                init_done = true;
                return Action::Run(cfg.init_per_thread);
            }
            init_done = false;
            spawned += 1;
            let w = Box::new(Worker {
                cfg: cfg.clone(),
                locks: locks.clone(),
                gate,
                pool,
                step: Step::Gate,
                tx_start: Time::ZERO,
                lock: 0,
            });
            Action::Spawn(ThreadSpec::new(format!("sb-worker-{spawned}"), w))
        }
    });
    AppSpec::new(
        "sysbench",
        vec![
            // "the master thread is created with the interactivity penalty
            // of the bash process from which it was forked. Since bash
            // mostly sleeps, sysbench is created as an interactive process."
            ThreadSpec::new("sb-master", master).with_history(Dur::ZERO, Dur::secs(4)),
        ],
    )
}

/// The suite instance (80 workers, as in §5.1).
pub fn sysbench_default(k: &mut Kernel, p: &P) -> AppSpec {
    sysbench(
        k,
        SysbenchCfg {
            threads: 80,
            total_tx: p.count(40_000),
            ..Default::default()
        },
    )
}

/// The §5.2 instance: 128 workers on one core (Figures 3/4).
pub fn sysbench_128(k: &mut Kernel, p: &P) -> AppSpec {
    sysbench(
        k,
        SysbenchCfg {
            threads: 128,
            total_tx: p.count(64_000),
            ..Default::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn sysbench_runs_to_completion_and_counts_tx() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let spec = sysbench(
            &mut k,
            SysbenchCfg {
                threads: 4,
                total_tx: 100,
                ..Default::default()
            },
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(60)));
        let a = k.app(app);
        assert_eq!(a.ops, 100, "the shared budget of 100 tx");
        assert_eq!(a.lat_count, 100);
        assert!(a.avg_latency().unwrap() >= Dur::micros(1500));
        assert_eq!(a.spawned, 5, "master + 4 workers");
    }

    #[test]
    fn workers_sleep_more_than_they_run() {
        // The per-transaction structure (0.5 ms CPU, ~1.5 ms sleep) is what
        // classifies workers interactive under ULE.
        let cfg = SysbenchCfg::default();
        let cpu = cfg.crit + cfg.think;
        assert!(cfg.io.as_nanos() * 2 >= cpu.as_nanos() * 5, "io >> cpu");
    }
}
