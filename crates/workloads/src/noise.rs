//! Background kernel-thread noise.
//!
//! §6.3 attributes MG's 73 % slowdown under CFS to the scheduler reacting
//! "to micro changes in the load of cores (e.g., due to a kernel thread
//! waking up)". This daemon app reproduces that environment: one per-core
//! pinned thread that wakes every ~10 ms and burns ~100 µs, exactly the
//! kind of short-lived load spike that perturbs CFS's placement while ULE
//! (which only counts runnable threads and trusts affinity) ignores it.

use kernel::{from_fn, Action, AppSpec, Kernel, ThreadSpec};
use simcore::Dur;
use topology::CpuId;

use crate::P;

/// Build the per-core kernel-noise daemon app.
pub fn kernel_noise(_k: &mut Kernel, p: &P) -> AppSpec {
    AppSpec::new(
        "kworkers",
        (0..p.ncores)
            .map(|c| {
                ThreadSpec::new(
                    format!("kworker/{c}"),
                    from_fn({
                        let mut phase = false;
                        move |ctx| {
                            phase = !phase;
                            if phase {
                                let s = ctx.rng.gen_range(9_000, 15_000);
                                Action::Sleep(Dur::micros(s))
                            } else {
                                let r = ctx.rng.gen_range(500, 1_200);
                                Action::Run(Dur::micros(r))
                            }
                        }
                    }),
                )
                .pinned(vec![CpuId(c as u32)])
                .with_history(Dur::ZERO, Dur::secs(2))
            })
            .collect(),
    )
    .daemon()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn noise_is_a_daemon_and_stays_pinned() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let p = P::full(2);
        let spec = kernel_noise(&mut k, &p);
        assert!(spec.daemon);
        assert_eq!(spec.threads.len(), 2);
        let _app = k.queue_app(Time::ZERO, spec);
        k.run_until(Time::ZERO + Dur::millis(100));
        assert!(
            k.all_apps_done(),
            "daemon apps never block completion tracking"
        );
    }
}
