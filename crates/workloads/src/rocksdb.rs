//! RocksDB read-write workload (§4.2): reader and writer threads with
//! mixed sleep patterns plus background compaction bursts — chosen by the
//! paper precisely "to schedule threads with different behaviors".

use kernel::{from_fn, Action, AppSpec, Kernel, ThreadSpec};
use simcore::Dur;

use crate::P;

/// Build the RocksDB model: `2·ncores` readers, `ncores/2` writers and two
/// detached compaction threads.
pub fn rocksdb(_k: &mut Kernel, p: &P) -> AppSpec {
    let mut threads = Vec::new();
    let per_reader_ops = p.count(4000);
    for i in 0..(p.ncores * 2) {
        threads.push(
            ThreadSpec::new(
                format!("rocksdb-get-{i}"),
                from_fn({
                    let mut done = 0u64;
                    let mut state = 0u8;
                    move |ctx| match state {
                        0 => {
                            if done == per_reader_ops {
                                return Action::Exit;
                            }
                            state = 1;
                            Action::Run(Dur::micros(20))
                        }
                        1 => {
                            done += 1;
                            state = if ctx.rng.gen_bool(0.25) { 2 } else { 3 };
                            Action::CountOps(1)
                        }
                        2 => {
                            // Block-cache miss: wait for the read.
                            state = 0;
                            Action::Sleep(Dur::micros(400))
                        }
                        _ => {
                            state = 0;
                            // Cache hit: continue immediately (tiny yield
                            // keeps the loop from being a pure spin).
                            Action::Run(Dur::micros(5))
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(1)),
        );
    }
    let per_writer_ops = p.count(2000);
    for i in 0..(p.ncores / 2).max(1) {
        threads.push(
            ThreadSpec::new(
                format!("rocksdb-put-{i}"),
                from_fn({
                    let mut done = 0u64;
                    let mut state = 0u8;
                    move |_ctx| match state {
                        0 => {
                            if done == per_writer_ops {
                                return Action::Exit;
                            }
                            state = 1;
                            Action::Run(Dur::micros(40))
                        }
                        1 => {
                            done += 1;
                            state = 2;
                            Action::CountOps(1)
                        }
                        _ => {
                            // WAL fsync.
                            state = 0;
                            Action::Sleep(Dur::micros(800))
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(1)),
        );
    }
    for i in 0..2 {
        threads.push(
            ThreadSpec::new(
                format!("rocksdb-compact-{i}"),
                from_fn({
                    let mut phase = false;
                    move |ctx| {
                        phase = !phase;
                        if phase {
                            let s = ctx.rng.gen_range(200, 400);
                            Action::Sleep(Dur::millis(s))
                        } else {
                            Action::Run(Dur::millis(150))
                        }
                    }
                }),
            )
            .with_history(Dur::ZERO, Dur::secs(1))
            .detached(),
        );
    }
    AppSpec::new("rocksdb", threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn rocksdb_counts_ops_and_finishes() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let p = P::scaled(2, 0.02);
        let spec = rocksdb(&mut k, &p);
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(120)));
        let a = k.app(app);
        // 4 readers × 80 + 1 writer × 40 ops.
        assert_eq!(a.ops, 4 * 80 + 40);
    }
}
