//! The NAS parallel benchmarks (§4.2, §6.3): iterative barrier-synchronised
//! HPC kernels, one thread per core.
//!
//! "MG spawns as many threads as there are cores in the machine, and all
//! threads perform the same computations. When a thread has finished its
//! computation, it waits on a spin-barrier for 100ms and then sleeps if
//! some threads are still computing."

use kernel::{Action, AppSpec, BarrierId, Behavior, Ctx, Kernel, ThreadSpec};
use simcore::{Dur, Time};

use crate::P;

/// How threads wait at the end of an iteration.
#[derive(Debug, Clone, Copy)]
pub enum BarrierKind {
    /// Block (sleep) immediately.
    Block,
    /// Spin for the given budget, then sleep (MG-style).
    Spin(Dur),
}

/// Parameters of one NAS kernel model.
#[derive(Debug, Clone)]
pub struct NasCfg {
    /// Benchmark name (BT, CG, ...).
    pub name: &'static str,
    /// Iterations (each counted as one operation for the ops/s metric).
    pub iters: u64,
    /// Compute phase per iteration per thread.
    pub phase: Dur,
    /// Per-thread phase jitter in percent (load imbalance).
    pub jitter_pct: u64,
    /// Barrier style.
    pub barrier: BarrierKind,
    /// Extra I/O sleep per iteration (DC writes its data cube to disk).
    pub io: Option<Dur>,
    /// Per-thread, per-iteration probability (per mille) of a straggler
    /// phase (serial sections / cache conflicts), and its length factor.
    /// A straggler pushes the other threads past the spin budget, forcing
    /// a sleep + wake-placement round — the moments where CFS sometimes
    /// doubles threads up (§6.3).
    pub straggle_permille: u64,
    /// Length multiplier (×10) of a straggler phase (22 = 2.2×).
    pub straggle_factor_x10: u64,
}

struct NasWorker {
    cfg: NasCfg,
    barrier: BarrierId,
    iter: u64,
    state: u8, // 0 compute, 1 barrier, 2 io, 3 count
}

impl Behavior for NasWorker {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            0 => {
                if self.iter == self.cfg.iters {
                    return Action::Exit;
                }
                self.state = 1;
                let base = self.cfg.phase.as_nanos();
                let j = base * self.cfg.jitter_pct / 100;
                let mut d = if j > 0 {
                    ctx.rng.gen_range(base - j, base + j)
                } else {
                    base
                };
                if self.cfg.straggle_permille > 0
                    && ctx.rng.gen_below(1000) < self.cfg.straggle_permille
                {
                    d = d * self.cfg.straggle_factor_x10 / 10;
                }
                Action::Run(Dur(d))
            }
            1 => {
                self.state = 2;
                match self.cfg.barrier {
                    BarrierKind::Block => Action::BarrierWait(self.barrier),
                    BarrierKind::Spin(budget) => Action::BarrierWaitSpin(self.barrier, budget),
                }
            }
            2 => {
                self.state = 3;
                match self.cfg.io {
                    Some(io) => Action::Sleep(io),
                    None => {
                        self.state = 0;
                        self.iter += 1;
                        Action::CountOps(1)
                    }
                }
            }
            _ => {
                self.state = 0;
                self.iter += 1;
                Action::CountOps(1)
            }
        }
    }
}

/// Build one NAS kernel with `ncores` threads ("as many threads as there
/// are cores").
pub fn nas_app(k: &mut Kernel, cfg: NasCfg, threads: usize) -> AppSpec {
    let barrier = k.new_barrier(threads);
    AppSpec::new(
        cfg.name,
        (0..threads)
            .map(|i| {
                ThreadSpec::new(
                    format!("{}-{i}", cfg.name),
                    Box::new(NasWorker {
                        cfg: cfg.clone(),
                        barrier,
                        iter: 0,
                        state: 0,
                    }) as Box<dyn Behavior>,
                )
            })
            .collect(),
    )
}

macro_rules! nas_builder {
    ($fn_name:ident, $name:literal, $iters:expr, $phase:expr, $jit:expr, $bar:expr, $io:expr, $strag:expr) => {
        /// Suite builder for the homonymous NAS kernel.
        pub fn $fn_name(k: &mut Kernel, p: &P) -> AppSpec {
            nas_app(
                k,
                NasCfg {
                    name: $name,
                    iters: p.count($iters),
                    phase: $phase,
                    jitter_pct: $jit,
                    barrier: $bar,
                    io: $io,
                    straggle_permille: $strag,
                    straggle_factor_x10: 22,
                },
                p.ncores,
            )
        }
    };
}

nas_builder!(
    bt,
    "BT",
    60,
    Dur::millis(40),
    5,
    BarrierKind::Block,
    None,
    0
);
nas_builder!(
    cg,
    "CG",
    75,
    Dur::millis(15),
    10,
    BarrierKind::Block,
    None,
    0
);
nas_builder!(
    dc,
    "DC",
    30,
    Dur::millis(20),
    10,
    BarrierKind::Block,
    Some(Dur::millis(10)),
    0
);
nas_builder!(ep, "EP", 4, Dur::secs(2), 2, BarrierKind::Block, None, 0);
nas_builder!(
    ft,
    "FT",
    40,
    Dur::millis(110),
    6,
    BarrierKind::Spin(Dur::millis(100)),
    None,
    6
);
nas_builder!(
    is,
    "IS",
    150,
    Dur::millis(4),
    15,
    BarrierKind::Block,
    None,
    0
);
nas_builder!(
    lu,
    "LU",
    100,
    Dur::millis(20),
    8,
    BarrierKind::Block,
    None,
    0
);
nas_builder!(
    mg,
    "MG",
    80,
    Dur::millis(120),
    5,
    BarrierKind::Spin(Dur::millis(100)),
    None,
    8
);
nas_builder!(
    sp,
    "SP",
    80,
    Dur::millis(25),
    8,
    BarrierKind::Block,
    None,
    0
);
nas_builder!(
    ua,
    "UA",
    60,
    Dur::millis(115),
    8,
    BarrierKind::Spin(Dur::millis(100)),
    None,
    5
);

/// Builder function type shared by the suite registries.
pub type Builder = fn(&mut Kernel, &P) -> AppSpec;

/// All NAS builders in the paper's figure order.
pub const ALL: &[(&str, Builder)] = &[
    ("BT", bt),
    ("CG", cg),
    ("DC", dc),
    ("EP", ep),
    ("FT", ft),
    ("IS", is),
    ("LU", lu),
    ("MG", mg),
    ("SP", sp),
    ("UA", ua),
];

/// Keep a dummy use of `Time` (behaviour context signatures).
const _: fn(Time) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn mg_completes_with_spin_barriers() {
        let topo = Topology::flat(4);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let spec = nas_app(
            &mut k,
            NasCfg {
                name: "MG",
                iters: 10,
                phase: Dur::millis(5),
                jitter_pct: 5,
                barrier: BarrierKind::Spin(Dur::millis(100)),
                io: None,
                straggle_permille: 0,
                straggle_factor_x10: 22,
            },
            4,
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
        assert_eq!(k.app(app).ops, 40, "4 threads × 10 iterations");
        // Balanced phases within spin budget: total ≈ iters × phase.
        let elapsed = k.app(app).elapsed().unwrap();
        assert!(
            elapsed < Dur::millis(120),
            "spin barrier avoids sleeps: {elapsed}"
        );
    }

    #[test]
    fn dc_sleeps_for_io() {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        let mut k = Kernel::new(topo, SimConfig::frictionless(3), sched);
        let spec = nas_app(
            &mut k,
            NasCfg {
                name: "DC",
                iters: 5,
                phase: Dur::millis(2),
                jitter_pct: 0,
                barrier: BarrierKind::Block,
                io: Some(Dur::millis(10)),
                straggle_permille: 0,
                straggle_factor_x10: 22,
            },
            2,
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(10)));
        let elapsed = k.app(app).elapsed().unwrap();
        assert!(elapsed >= Dur::millis(60), "io sleeps dominate: {elapsed}");
    }
}
