//! The PARSEC benchmark suite models (§4.2): data-parallel kernels,
//! pipeline servers and lock-heavy applications.
//!
//! Two structural archetypes cover the suite:
//!
//! * [`data_parallel`] — `n` workers iterate phases of jittered CPU chunks
//!   separated by barriers, optionally contending on locks (fluidanimate's
//!   grid locks, canneal's element locks).
//! * [`pipeline`] — stages connected by bounded queues; stage threads sleep
//!   on their input queue, which is why ULE classifies ferret as
//!   interactive in the §6.4 multi-application experiment.

use kernel::{Action, AppSpec, Behavior, Ctx, Kernel, MutexId, QueueId, ThreadSpec};
use simcore::Dur;

use crate::P;

/// Data-parallel app configuration.
#[derive(Debug, Clone)]
pub struct DataParCfg {
    /// App name.
    pub name: &'static str,
    /// Barrier-separated phases.
    pub phases: u64,
    /// CPU chunks per worker per phase.
    pub chunks: u64,
    /// Chunk duration.
    pub chunk: Dur,
    /// Chunk jitter in percent (load imbalance between workers).
    pub jitter_pct: u64,
    /// Optional lock contention: (number of locks, critical-section CPU).
    pub locks: Option<(usize, Dur)>,
    /// Whether phases end with a barrier (false = fully independent).
    pub barrier: bool,
}

struct DataParWorker {
    cfg: DataParCfg,
    barrier: Option<kernel::BarrierId>,
    locks: Vec<MutexId>,
    phase: u64,
    chunk: u64,
    state: u8, // 0 = maybe lock, 1 = run, 2 = unlock, 3 = barrier
    lock: usize,
}

impl Behavior for DataParWorker {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        loop {
            match self.state {
                0 => {
                    if self.phase == self.cfg.phases {
                        return Action::Exit;
                    }
                    if self.chunk == self.cfg.chunks {
                        self.chunk = 0;
                        self.phase += 1;
                        self.state = 3;
                        continue;
                    }
                    if !self.locks.is_empty() {
                        self.lock = ctx.rng.gen_below(self.locks.len() as u64) as usize;
                        self.state = 1;
                        return Action::MutexLock(self.locks[self.lock]);
                    }
                    self.state = 2;
                    continue;
                }
                1 => {
                    // Critical section while holding the lock.
                    self.state = 4;
                    let crit = self.cfg.locks.expect("locked").1;
                    return Action::Run(crit);
                }
                4 => {
                    self.state = 2;
                    return Action::MutexUnlock(self.locks[self.lock]);
                }
                2 => {
                    self.chunk += 1;
                    self.state = 0;
                    let base = self.cfg.chunk.as_nanos();
                    let j = base * self.cfg.jitter_pct / 100;
                    let d = if j > 0 {
                        ctx.rng.gen_range(base.saturating_sub(j).max(1), base + j)
                    } else {
                        base
                    };
                    return Action::Run(Dur(d));
                }
                3 => {
                    self.state = 0;
                    match self.barrier {
                        Some(b) if self.phase < self.cfg.phases => {
                            return Action::BarrierWait(b);
                        }
                        Some(b) => return Action::BarrierWait(b),
                        None => continue,
                    }
                }
                _ => unreachable!(),
            }
        }
    }
}

/// Build a data-parallel app with one worker per core.
pub fn data_parallel(k: &mut Kernel, cfg: DataParCfg, workers: usize) -> AppSpec {
    let barrier = if cfg.barrier {
        Some(k.new_barrier(workers))
    } else {
        None
    };
    let locks: Vec<MutexId> = match cfg.locks {
        Some((n, _)) => (0..n).map(|_| k.new_mutex()).collect(),
        None => Vec::new(),
    };
    AppSpec::new(
        cfg.name,
        (0..workers)
            .map(|i| {
                ThreadSpec::new(
                    format!("{}-{i}", cfg.name),
                    Box::new(DataParWorker {
                        cfg: cfg.clone(),
                        barrier,
                        locks: locks.clone(),
                        phase: 0,
                        chunk: 0,
                        state: 0,
                        lock: 0,
                    }) as Box<dyn Behavior>,
                )
            })
            .collect(),
    )
}

/// A pipeline stage description.
#[derive(Debug, Clone, Copy)]
pub struct Stage {
    /// Worker threads in this stage.
    pub threads: usize,
    /// CPU per item.
    pub service: Dur,
    /// Voluntary per-item wait (index/disk reads), which keeps the stage's
    /// threads classified interactive under ULE regardless of backlog.
    pub think: Dur,
}

struct StageWorker {
    input: QueueId,
    output: Option<QueueId>,
    service: Dur,
    think: Dur,
    quota: u64,
    done: u64,
    state: u8, // 0 get, 1 run, 2 think, 3 put
    item: u64,
    count_ops: bool,
}

impl Behavior for StageWorker {
    fn next(&mut self, ctx: &mut Ctx<'_>) -> Action {
        match self.state {
            0 => {
                if self.done == self.quota {
                    return Action::Exit;
                }
                self.state = 1;
                Action::QueueGet(self.input)
            }
            1 => {
                self.item = ctx.value.expect("pipeline item");
                self.state = 2;
                Action::Run(self.service)
            }
            2 => {
                self.state = 3;
                if self.think.is_zero() {
                    return self.next(ctx);
                }
                let base = self.think.as_nanos();
                let d = ctx.rng.gen_range(base * 4 / 5, base * 6 / 5);
                Action::Sleep(Dur(d))
            }
            3 => {
                self.done += 1;
                self.state = 0;
                match self.output {
                    Some(out) => Action::QueuePut(out, self.item),
                    None if self.count_ops => Action::CountOps(1),
                    None => {
                        // Tail without accounting: loop back immediately.
                        self.next(ctx)
                    }
                }
            }
            _ => unreachable!(),
        }
    }
}

struct Source {
    output: QueueId,
    items: u64,
    sent: u64,
    gen_cpu: Dur,
    /// Items emitted per input-read burst; the source sleeps between
    /// bursts (reading from disk), keeping it interactive under ULE.
    burst: u64,
    in_burst: u64,
    state: u8,
}

impl Behavior for Source {
    fn next(&mut self, _ctx: &mut Ctx<'_>) -> Action {
        if self.sent == self.items {
            return Action::Exit;
        }
        match self.state {
            0 => {
                self.state = 1;
                self.in_burst = 0;
                Action::Run(Dur(self.gen_cpu.as_nanos() * self.burst))
            }
            _ => {
                if self.in_burst == self.burst {
                    self.state = 0;
                    // Disk read for the next burst of inputs.
                    return Action::Sleep(Dur(self.gen_cpu.as_nanos() * self.burst * 2));
                }
                self.in_burst += 1;
                self.sent += 1;
                Action::QueuePut(self.output, self.sent)
            }
        }
    }
}

/// Build a pipeline app: a source feeding `stages`, the last stage counts
/// completed items as operations.
pub fn pipeline(
    k: &mut Kernel,
    name: &'static str,
    gen_cpu: Dur,
    stages: &[Stage],
    items: u64,
) -> AppSpec {
    let queues: Vec<QueueId> = (0..stages.len()).map(|_| k.new_queue(256)).collect();
    let mut threads = vec![ThreadSpec::new(
        format!("{name}-src"),
        Box::new(Source {
            output: queues[0],
            items,
            sent: 0,
            gen_cpu,
            burst: 32,
            in_burst: 0,
            state: 0,
        }) as Box<dyn Behavior>,
    )
    .with_history(Dur::ZERO, Dur::secs(1))];
    for (si, st) in stages.iter().enumerate() {
        let input = queues[si];
        let output = queues.get(si + 1).copied();
        let is_last = si == stages.len() - 1;
        // Split the item quota across the stage's workers.
        let base = items / st.threads as u64;
        let rem = items % st.threads as u64;
        for w in 0..st.threads {
            let quota = base + u64::from((w as u64) < rem);
            threads.push(
                ThreadSpec::new(
                    format!("{name}-s{si}w{w}"),
                    Box::new(StageWorker {
                        input,
                        output,
                        service: st.service,
                        think: st.think,
                        quota,
                        done: 0,
                        state: 0,
                        item: 0,
                        count_ops: is_last,
                    }) as Box<dyn Behavior>,
                )
                // Stage workers block on their queues most of the time.
                .with_history(Dur::ZERO, Dur::secs(1)),
            );
        }
    }
    AppSpec::new(name, threads)
}

// ---------------------------------------------------------------------
// Suite builders
// ---------------------------------------------------------------------

macro_rules! datapar_builder {
    ($f:ident, $name:literal, $phases:expr, $chunks:expr, $chunk:expr, $jit:expr, $locks:expr, $barrier:expr) => {
        /// Suite builder for the homonymous PARSEC app.
        pub fn $f(k: &mut Kernel, p: &P) -> AppSpec {
            data_parallel(
                k,
                DataParCfg {
                    name: $name,
                    phases: p.count($phases),
                    chunks: $chunks,
                    chunk: $chunk,
                    jitter_pct: $jit,
                    locks: $locks,
                    barrier: $barrier,
                },
                p.ncores,
            )
        }
    };
}

datapar_builder!(
    blackscholes,
    "blackscholes",
    5,
    10,
    Dur::millis(30),
    10,
    None,
    true
);
datapar_builder!(
    canneal,
    "canneal",
    40,
    200,
    Dur::micros(40),
    10,
    Some((128, Dur::micros(10))),
    false
);
datapar_builder!(facesim, "facesim", 40, 5, Dur::millis(15), 25, None, true);
datapar_builder!(
    fluidanimate,
    "fluidanimate",
    50,
    20,
    Dur::micros(400),
    10,
    Some((64, Dur::micros(20))),
    true
);
datapar_builder!(freqmine, "freqmine", 8, 8, Dur::millis(25), 35, None, true);
datapar_builder!(
    streamcluster,
    "streamcluster",
    100,
    10,
    Dur::micros(400),
    10,
    None,
    true
);
datapar_builder!(
    swaptions,
    "swaptions",
    1,
    6,
    Dur::millis(250),
    5,
    None,
    false
);

/// raytrace: a tile queue consumed by workers (dynamic load balancing).
pub fn raytrace(k: &mut Kernel, p: &P) -> AppSpec {
    let tiles = p.count(600);
    pipeline(
        k,
        "raytrace",
        Dur::micros(10),
        &[Stage {
            threads: p.ncores,
            service: Dur::millis(5),
            think: Dur::ZERO,
        }],
        tiles,
    )
}

/// ferret: the 4-stage similarity-search pipeline the paper co-schedules
/// with blackscholes in §6.4. Each parallel stage is over-provisioned
/// (ncores threads per stage, as PARSEC runs it), so individual threads
/// spend most of their time sleeping on the stage queues (duty ≈ 30%) and
/// classify interactive under ULE, while the pipeline as a whole keeps
/// nearly every core busy — which is why ULE starves a co-scheduled batch
/// application while ferret itself is barely impacted.
pub fn ferret(k: &mut Kernel, p: &P) -> AppSpec {
    let items = p.count(60_000);
    pipeline(
        k,
        "ferret",
        Dur::micros(8),
        &[
            Stage {
                threads: (3 * p.ncores).max(2),
                service: Dur::micros(250),
                think: Dur::micros(550),
            },
            Stage {
                threads: (3 * p.ncores).max(2),
                service: Dur::micros(250),
                think: Dur::micros(550),
            },
            Stage {
                threads: 4,
                service: Dur::micros(10),
                think: Dur::micros(40),
            },
        ],
        items,
    )
}

/// bodytrack: per-frame pipeline with a parallel middle stage.
pub fn bodytrack(k: &mut Kernel, p: &P) -> AppSpec {
    pipeline(
        k,
        "bodytrack",
        Dur::micros(50),
        &[
            Stage {
                threads: 1,
                service: Dur::micros(120),
                think: Dur::ZERO,
            },
            Stage {
                threads: p.ncores,
                service: Dur::micros(900),
                think: Dur::ZERO,
            },
            Stage {
                threads: 1,
                service: Dur::micros(120),
                think: Dur::ZERO,
            },
        ],
        p.count(3000),
    )
}

/// vips: image-processing pipeline.
pub fn vips(k: &mut Kernel, p: &P) -> AppSpec {
    pipeline(
        k,
        "vips",
        Dur::micros(40),
        &[
            Stage {
                threads: 1,
                service: Dur::micros(100),
                think: Dur::ZERO,
            },
            Stage {
                threads: p.ncores,
                service: Dur::micros(600),
                think: Dur::ZERO,
            },
            Stage {
                threads: 1,
                service: Dur::micros(100),
                think: Dur::ZERO,
            },
        ],
        p.count(3000),
    )
}

/// x264: video encoding pipeline with heavier per-frame work.
pub fn x264(k: &mut Kernel, p: &P) -> AppSpec {
    pipeline(
        k,
        "x264",
        Dur::micros(40),
        &[
            Stage {
                threads: 1,
                service: Dur::micros(80),
                think: Dur::ZERO,
            },
            Stage {
                threads: p.ncores,
                service: Dur::millis(2),
                think: Dur::ZERO,
            },
            Stage {
                threads: 1,
                service: Dur::micros(150),
                think: Dur::ZERO,
            },
        ],
        p.count(1000),
    )
}

/// All PARSEC builders in the paper's figure order.
pub const ALL: &[(&str, crate::nas::Builder)] = &[
    ("blackscholes", blackscholes),
    ("bodytrack", bodytrack),
    ("canneal", canneal),
    ("facesim", facesim),
    ("ferret", ferret),
    ("fluidanimate", fluidanimate),
    ("freqmine", freqmine),
    ("raytrace", raytrace),
    ("streamcluster", streamcluster),
    ("swaptions", swaptions),
    ("vips", vips),
    ("x264", x264),
];

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    fn mk() -> Kernel {
        let topo = Topology::flat(2);
        let sched = Box::new(SimpleRR::new(&topo));
        Kernel::new(topo, SimConfig::frictionless(3), sched)
    }

    #[test]
    fn pipeline_processes_every_item() {
        let mut k = mk();
        let spec = pipeline(
            &mut k,
            "test-pipe",
            Dur::micros(5),
            &[
                Stage {
                    threads: 2,
                    service: Dur::micros(50),
                    think: Dur::ZERO,
                },
                Stage {
                    threads: 1,
                    service: Dur::micros(20),
                    think: Dur::ZERO,
                },
            ],
            101, // odd count exercises quota remainders
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(30)));
        assert_eq!(k.app(app).ops, 101);
    }

    #[test]
    fn data_parallel_with_locks_completes() {
        let mut k = mk();
        let spec = data_parallel(
            &mut k,
            DataParCfg {
                name: "mini-fluid",
                phases: 3,
                chunks: 5,
                chunk: Dur::micros(200),
                jitter_pct: 10,
                locks: Some((4, Dur::micros(20))),
                barrier: true,
            },
            2,
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(30)));
        assert!(k.app(app).finished.is_some());
    }

    #[test]
    fn data_parallel_without_barrier_completes() {
        let mut k = mk();
        let spec = data_parallel(
            &mut k,
            DataParCfg {
                name: "mini-swaptions",
                phases: 1,
                chunks: 3,
                chunk: Dur::millis(1),
                jitter_pct: 5,
                locks: None,
                barrier: false,
            },
            2,
        );
        let app = k.queue_app(Time::ZERO, spec);
        assert!(k.run_until_apps_done(Time::ZERO + Dur::secs(30)));
        assert!(k.app(app).finished.is_some());
    }
}
