//! SchedGuard end-to-end: panic isolation in the worker pool, partial
//! results that stay deterministic whatever the pool size, and the chaos
//! campaign's no-job-loss contract — all from the experiments layer, the
//! way `battle` drives it.

use std::path::PathBuf;

use experiments::{chaos, runner, scenarios, RunCfg};
use scenario::Scenario;

/// A scenario whose `[budget]` table guarantees a mid-run abort.
const BUDGETED: &str = r#"
name = "budgeted"
[topology]
preset = "flat-4"
[[phase]]
kind = "cpu-hogs"
count = { base = 6, min = 6 }
work = { base_s = 0.5, scaled = false }
[budget]
max_events = 3000
[run]
horizon = { base_s = 5.0, scaled = false }
"#;

fn budgeted_corpus() -> Vec<(PathBuf, Scenario)> {
    vec![(
        PathBuf::from("inline-budgeted.toml"),
        Scenario::from_toml(BUDGETED).expect("scenario parses"),
    )]
}

/// The same workload without a `[budget]` table — the chaos campaign
/// imposes its own plans, so its control run must be unsupervised.
const UNBUDGETED: &str = r#"
name = "tiny"
[topology]
preset = "flat-4"
[[phase]]
kind = "cpu-hogs"
count = { base = 6, min = 6 }
work = { base_s = 0.2, scaled = false }
[run]
horizon = { base_s = 5.0, scaled = false }
"#;

fn unbudgeted_corpus() -> Vec<(PathBuf, Scenario)> {
    vec![(
        PathBuf::from("inline-tiny.toml"),
        Scenario::from_toml(UNBUDGETED).expect("scenario parses"),
    )]
}

/// One panicking job must not take down its siblings, the pool, or the
/// process — and must come back labelled as a panic, not vanish.
#[test]
fn runner_survives_panicking_job() {
    let outcomes = runner::par_map_supervised(vec![1u64, 2, 3, 4], |i| {
        if i == 3 {
            panic!("injected panic in job {i}");
        }
        i * 10
    });
    assert_eq!(outcomes.len(), 4, "no job slot may be lost");
    let done: Vec<Option<u64>> = outcomes
        .iter()
        .map(|o| match o {
            runner::JobOutcome::Done(v) => Some(*v),
            runner::JobOutcome::Panicked(_) => None,
        })
        .collect();
    assert_eq!(done, vec![Some(10), Some(20), None, Some(40)]);
    assert!(
        outcomes[2]
            .panic_message()
            .is_some_and(|m| m.contains("injected panic in job 3")),
        "the panicking slot must carry its message: {:?}",
        outcomes[2].panic_message()
    );
}

/// A budget-killed scenario run salvages a partial result whose digest
/// and event count are identical whatever `--threads` says: the abort
/// point is simulated-deterministic, and the pool size only changes which
/// wall-clock order jobs run in, never what any job computes.
#[test]
fn budget_killed_partial_digest_is_thread_count_invariant() {
    let corpus = budgeted_corpus();
    let cfg = RunCfg {
        scale: 1.0,
        seed: 42,
    };
    let digests_at = |threads: usize| -> Vec<(String, u64, u64, bool)> {
        runner::set_threads(threads);
        let reports = scenarios::run_all(&corpus, &cfg, None, None, None);
        assert_eq!(reports.len(), 1);
        reports[0]
            .runs
            .iter()
            .map(|r| {
                (
                    r.sched.name().to_string(),
                    r.digest,
                    r.counters.events,
                    r.partial,
                )
            })
            .collect()
    };
    let serial = digests_at(1);
    let pooled = digests_at(4);
    assert_eq!(serial, pooled, "pool size must not perturb salvage");
    assert!(
        serial.iter().all(|&(_, _, _, partial)| partial),
        "the 3000-event budget must trip every run: {serial:?}"
    );
    // And the partial abort is reported as a failure line, so a budget
    // trip cannot silently pass a scenario.
    runner::set_threads(4);
    let reports = scenarios::run_all(&corpus, &cfg, None, None, None);
    assert!(
        reports[0].failures.iter().any(|f| f.contains("partial")),
        "partial runs must fail the report: {:?}",
        reports[0].failures
    );
}

/// The chaos smoke the CI step mirrors: a full sweep over an in-memory
/// corpus completes in one process with every job classified, at least
/// one case in every outcome class, and zero digest mismatches.
#[test]
fn chaos_campaign_smoke() {
    let r = chaos::run(&unbudgeted_corpus(), &chaos::ChaosCfg::default());
    assert!(chaos::passed(&r), "{}", chaos::report(&r));
    assert!(r.counts.completed >= 1, "{}", chaos::report(&r));
    assert!(r.counts.budget_killed >= 1, "{}", chaos::report(&r));
    assert!(r.counts.livelocked >= 1, "{}", chaos::report(&r));
    assert!(r.counts.cancelled >= 1, "{}", chaos::report(&r));
    assert!(r.counts.panicked >= 1, "{}", chaos::report(&r));
    assert!(r.counts.crashed >= 1, "{}", chaos::report(&r));
    assert_eq!(r.process_failures, 0);
    assert_eq!(r.digest_mismatches, 0);
}
