//! SchedScope end-to-end: trace export round-trips through the JSON
//! parser, slice accounting matches the kernel's counters, per-CPU tracks
//! never overlap, the apache preemption-attribution claim holds, and the
//! `bench` latency probe separates the schedulers the way §5.1 says.

use experiments::{bench, scope, RunCfg, Sched};
use serde_json::Value;

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(name)
}

/// Parse an exported trace file into its `traceEvents` array.
fn load_events(path: &std::path::Path) -> Vec<Value> {
    let text = std::fs::read_to_string(path).expect("trace file readable");
    let doc = serde_json::from_str(&text).expect("trace must be valid JSON");
    doc.get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("top-level traceEvents array")
        .to_vec()
}

/// Timestamp/duration in integer nanoseconds (the writer emits fixed
/// 3-decimal microseconds, so rounding is exact).
fn ns(v: &Value) -> u64 {
    (v.as_f64().expect("numeric ts/dur") * 1000.0).round() as u64
}

#[test]
fn fig7_streamed_trace_round_trips() {
    let out = tmp("schedscope-fig7.json");
    let run = scope::run_trace("fig7", &Sched::BOTH, &RunCfg::at_scale(0.05), &out, true)
        .expect("fig7 trace export");
    assert!(run.streamed);
    assert_eq!(run.reports.len(), 2);

    let events = load_events(&out);
    assert!(!events.is_empty(), "trace must contain events");

    for (i, report) in run.reports.iter().enumerate() {
        let pid = i as u64 + 1;
        // Streaming loses nothing, so the group's task slices mirror the
        // kernel's context-switch counter exactly.
        assert_eq!(report.trace_dropped, 0, "streaming never drops");
        let slices: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(pid)
            })
            .collect();
        assert_eq!(
            slices.len() as u64,
            report.obs.counters.ctx_switches,
            "{}: one slice per context switch",
            report.sched.name()
        );
        assert_eq!(slices.len() as u64, report.slices);

        // Per-CPU tracks must never overlap: sort each track's slices and
        // require end <= next start (in integer nanoseconds).
        let ncpu = 32; // opteron_6172
        for cpu in 0..ncpu {
            let mut spans: Vec<(u64, u64)> = slices
                .iter()
                .filter(|e| e.get("tid").and_then(|t| t.as_u64()) == Some(cpu))
                .map(|e| {
                    let start = ns(e.get("ts").unwrap());
                    (start, start + ns(e.get("dur").unwrap()))
                })
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "{} cpu{cpu}: slice [{}, {}] overlaps [{}, {}]",
                    report.sched.name(),
                    w[0].0,
                    w[0].1,
                    w[1].0,
                    w[1].1
                );
            }
        }
    }
    std::fs::remove_file(&out).ok();
}

#[test]
fn buffered_trace_exports_valid_json() {
    let out = tmp("schedscope-fig1-buffered.json");
    let run = scope::run_trace("fig1", &[Sched::Cfs], &RunCfg::at_scale(0.02), &out, false)
        .expect("fig1 buffered export");
    assert!(!run.streamed);
    let events = load_events(&out);
    assert!(!events.is_empty());
    // The run fits the 1M-event flight recorder, so buffered mode is
    // complete too and slice accounting still holds.
    let r = &run.reports[0];
    assert_eq!(r.trace_dropped, 0);
    let slices = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
        .count() as u64;
    assert_eq!(slices, r.obs.counters.ctx_switches);
    std::fs::remove_file(&out).ok();
}

#[test]
fn apache_preemption_attribution_matches_paper() {
    // §5.3: "every request handled by apache causes ab to be preempted"
    // on CFS (≈1 wakeup preemption per request), while ULE's disabled
    // full preemption keeps the count at zero.
    let out = tmp("schedscope-fig5.json");
    let run = scope::run_trace("fig5", &Sched::BOTH, &RunCfg::at_scale(0.05), &out, true)
        .expect("fig5 trace export");
    let cfs = &run.reports[0];
    let ule = &run.reports[1];
    assert_eq!(cfs.sched, Sched::Cfs);
    let cfs_ppo = cfs.preemptions_per_op.expect("apache counts requests");
    assert!(
        cfs_ppo > 0.5 && cfs_ppo < 2.0,
        "CFS should preempt ab about once per request, got {cfs_ppo:.2}"
    );
    assert_eq!(
        ule.obs.counters.wakeup_preemptions, 0,
        "ULE keeps full preemption disabled for timeshare tasks"
    );
    // Attribution: the heaviest preemptor pair on CFS is httpd → ab.
    let top = cfs
        .analysis
        .preempt_pairs
        .first()
        .expect("CFS has preemption pairs");
    assert_eq!((top.by.as_str(), top.victim.as_str()), ("httpd", "ab"));
    std::fs::remove_file(&out).ok();
}

#[test]
fn bench_latency_probe_separates_schedulers() {
    // §5.1 on the fig1 single-core mix: ULE's starvation of the batch
    // task produces a far worse worst-case run delay, while its
    // interactive handling keeps the p99 (sysbench workers) far below
    // CFS's fair-share queueing delay.
    let r = bench::run(&RunCfg::at_scale(0.05));
    assert_eq!(r.latency.len(), 2);
    let cfs = &r.latency[0];
    let ule = &r.latency[1];
    assert_eq!((cfs.sched.as_str(), ule.sched.as_str()), ("CFS", "ULE"));
    for p in &r.latency {
        assert!(p.run_delay.count > 0, "{}: probe recorded samples", p.sched);
        assert!(p.run_delay.max_ms >= p.run_delay.p99_ms);
        assert!(p.run_delay.p99_ms >= p.run_delay.p50_ms);
    }
    assert!(
        ule.run_delay.max_ms > cfs.run_delay.max_ms,
        "ULE's starvation tail must exceed CFS's: {} vs {}",
        ule.run_delay.max_ms,
        cfs.run_delay.max_ms
    );
    assert!(
        ule.wakeup_latency.p99_ms < cfs.wakeup_latency.p99_ms,
        "ULE's interactive p99 must undercut CFS's: {} vs {}",
        ule.wakeup_latency.p99_ms,
        cfs.wakeup_latency.p99_ms
    );
    // The throughput rows carry the same distributions for the bench
    // scenario itself.
    for b in &r.results {
        assert!(b.run_delay.count > 0);
        assert!(b.wakeup_latency.count <= b.run_delay.count);
    }
}
