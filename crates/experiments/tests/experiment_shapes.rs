//! Scaled-down runs of the experiment drivers asserting the paper's
//! qualitative shapes hold (the full-size runs live in the `battle` CLI;
//! these guard the reproduction in CI).
//!
//! Run with `--release` for speed; they stay within seconds each.

use experiments::{fig1, fig2, fig34, fig6, fig7, RunCfg};

fn cfg(scale: f64) -> RunCfg {
    RunCfg { scale, seed: 42 }
}

#[test]
fn fig1_shapes_hold_at_small_scale() {
    let fig = fig1::run_both(&cfg(0.1));
    let problems = fig1::validate(&fig);
    assert!(problems.is_empty(), "{problems:?}");
}

#[test]
fn fig2_shapes_hold_at_small_scale() {
    let ule = fig2::run(&cfg(0.1));
    let problems = fig2::validate(&ule);
    assert!(problems.is_empty(), "{problems:?}");
}

#[test]
fn fig34_shapes_hold_at_small_scale() {
    let f = fig34::run(&cfg(0.1));
    let problems = fig34::validate(&f);
    assert!(problems.is_empty(), "{problems:?}");
    // The split is close to the paper's 80/48 (it is scale-independent:
    // the master's spawn work is fixed).
    assert!(
        (70..=100).contains(&f.interactive_count),
        "split {}/{}",
        f.interactive_count,
        f.background_count
    );
}

#[test]
fn fig6_shapes_hold_at_small_scale() {
    let fig = fig6::run_both(&cfg(0.25));
    let nthreads = (512.0_f64 * 0.25).round() as u32;
    let problems = fig6::validate(&fig, nthreads, 32);
    assert!(problems.is_empty(), "{problems:?}");
}

#[test]
fn fig7_shapes_hold_at_small_scale() {
    let fig = fig7::run_both(&cfg(0.3));
    let problems = fig7::validate(&fig);
    assert!(problems.is_empty(), "{problems:?}");
}

#[test]
fn experiments_are_deterministic() {
    let a = fig1::run(experiments::Sched::Ule, &cfg(0.05));
    let b = fig1::run(experiments::Sched::Ule, &cfg(0.05));
    assert_eq!(a.sysbench_tx_per_s, b.sysbench_tx_per_s);
    assert_eq!(a.fibo_runtime_total_s, b.fibo_runtime_total_s);
    assert_eq!(a.fibo_penalty.points, b.fibo_penalty.points);
}
