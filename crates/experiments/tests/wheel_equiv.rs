//! Differential determinism across event-queue backends: every figure
//! scenario must produce a byte-identical decision digest (and event
//! count) whether the event core runs on the binary heap or the timer
//! wheel. This is the end-to-end counterpart of the op-level differential
//! test in `crates/simcore/tests/backend_equiv.rs`.

use std::sync::Mutex;

use experiments::{scope, RunCfg, Sched};
use simcore::{set_default_backend, Backend};

/// `set_default_backend` is process-global; serialize the tests that flip
/// it so parallel test threads never see each other's override.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

/// (decision digest, events handled) for one scenario run on `backend`.
fn digest_on(fig: &str, sched: Sched, cfg: &RunCfg, backend: Backend) -> (u64, u64) {
    set_default_backend(Some(backend));
    let (k, _) = scope::run_scenario(fig, sched, cfg, None, 0).expect("scenario runs");
    (k.decision_digest(), k.counters().events)
}

/// Run `fig` under both schedulers at two scales/seeds and insist the
/// heap and wheel backends agree exactly.
fn assert_backends_agree(fig: &str) {
    let _g = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let cfgs = [
        RunCfg {
            scale: 0.02,
            seed: 7,
        },
        RunCfg {
            scale: 0.04,
            seed: 11,
        },
    ];
    for cfg in &cfgs {
        for sched in Sched::BOTH {
            let heap = digest_on(fig, sched, cfg, Backend::Heap);
            let wheel = digest_on(fig, sched, cfg, Backend::Wheel);
            assert_eq!(
                heap, wheel,
                "{fig}/{sched:?} scale={} seed={}: backends disagree",
                cfg.scale, cfg.seed
            );
            assert!(heap.0 != 0 && heap.1 > 0, "degenerate run for {fig}");
        }
    }
    set_default_backend(None);
}

#[test]
fn fig1_digest_is_backend_independent() {
    assert_backends_agree("fig1");
}

#[test]
fn fig6_digest_is_backend_independent() {
    assert_backends_agree("fig6");
}

#[test]
fn fig7_digest_is_backend_independent() {
    assert_backends_agree("fig7");
}
