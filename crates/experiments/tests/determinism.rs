//! Cross-thread-count determinism: the runner's result-order guarantee
//! plus the simulator's own determinism mean every driver's output must be
//! byte-identical whatever `--threads` is set to.

use experiments::{fig5, make_kernel, runner, RunCfg, Sched};
use kernel::{cpu_hog, AppSpec, ThreadSpec};
use simcore::{Dur, Time};
use topology::Topology;

/// A deterministic digest for one busy-machine simulation.
fn digest_of(sched: Sched, seed: u64) -> (u64, u64) {
    let topo = Topology::core_i7_3770();
    let mut k = make_kernel(&topo, sched, seed);
    let threads = (0..16)
        .map(|i| ThreadSpec::new(format!("w{i}"), cpu_hog(Dur::millis(300), Dur::millis(4))))
        .collect();
    k.queue_app(Time::ZERO, AppSpec::new("busy", threads));
    k.run_until(Time::ZERO + Dur::secs(1));
    (k.decision_digest(), k.counters().events)
}

#[test]
fn decision_digest_is_identical_across_thread_counts() {
    // 8 simulations; run the batch once on 1 worker and once on 8.
    let jobs = |_: usize| {
        let mut v: Vec<Box<dyn FnOnce() -> (u64, u64) + Send>> = Vec::new();
        for seed in 0..4u64 {
            for sched in Sched::BOTH {
                v.push(Box::new(move || digest_of(sched, seed)));
            }
        }
        v
    };
    runner::set_threads(1);
    let seq = runner::run_all(jobs(0));
    runner::set_threads(8);
    let par = runner::run_all(jobs(0));
    runner::set_threads(0);
    assert_eq!(seq, par, "digests must not depend on the worker count");
    assert!(seq.iter().all(|&(d, e)| d != 0 && e > 0));
}

#[test]
fn fig5_json_is_byte_identical_across_thread_counts() {
    // A scaled-down fig5 sweep (the most parallel driver): its serialized
    // JSON — what `battle --json` writes — must not change with the pool
    // size.
    let cfg = RunCfg {
        scale: 0.02,
        seed: 7,
    };
    runner::set_threads(1);
    let seq = serde_json::to_string_pretty(&fig5::run(&cfg)).unwrap();
    runner::set_threads(8);
    let par = serde_json::to_string_pretty(&fig5::run(&cfg)).unwrap();
    runner::set_threads(0);
    assert!(!seq.is_empty());
    assert_eq!(
        seq, par,
        "fig5 JSON must be byte-identical for 1 vs 8 threads"
    );
}
