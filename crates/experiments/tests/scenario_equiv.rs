//! Scenario ↔ hardcoded-figure digest equivalence.
//!
//! The ported scenario files must reproduce their figure driver's
//! decision digest byte-for-byte at the golden gate's pinned scales.
//! This is the contract that lets `results/golden/sc-*.digest` stand in
//! for the figures: if a scenario port drifts (workload build order, stop
//! rule, horizon formula), it diverges here first, with the figure named.
//!
//! fig1 runs in every profile; fig6/fig7 cover tens of simulated seconds
//! on 32 cores and only run in release (`cargo test --release`, which is
//! what CI runs).

use experiments::{fig1, fig6, fig7, RunCfg, Sched};
use scenario::{EngineOpts, Scenario};

fn scenario_digest(path: &str, sched: Sched, scale: f64) -> u64 {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let src =
        std::fs::read_to_string(format!("{root}/{path}")).unwrap_or_else(|e| panic!("{path}: {e}"));
    let sc = Scenario::from_toml(&src).unwrap_or_else(|e| panic!("{path}: {e}"));
    let opts = EngineOpts {
        scale,
        ..EngineOpts::default()
    };
    scenario::run_sched(&sc, sched, &opts)
        .unwrap_or_else(|e| panic!("{path} [{}]: {e}", sched.name()))
        .run
        .digest
}

#[test]
fn fig1_scenario_matches_hardcoded_digest() {
    let cfg = RunCfg::at_scale(0.05);
    for sched in Sched::BOTH {
        let fig = fig1::run(sched, &cfg);
        let hard = fig.obs.expect("fig1 records obs").digest;
        let scen = scenario_digest("scenarios/fig1.toml", sched, cfg.scale);
        assert_eq!(
            scen,
            hard,
            "[{}] scenarios/fig1.toml diverged from battle fig1 at scale {}",
            sched.name(),
            cfg.scale
        );
    }
}

#[test]
fn fig6_scenario_matches_hardcoded_digest() {
    if cfg!(debug_assertions) {
        return; // ~60 simulated seconds on 32 cores: release-only.
    }
    let cfg = RunCfg::at_scale(0.02);
    for sched in Sched::BOTH {
        let hard = fig6::run(sched, &cfg).obs.digest;
        let scen = scenario_digest("scenarios/fig6.toml", sched, cfg.scale);
        assert_eq!(
            scen,
            hard,
            "[{}] scenarios/fig6.toml diverged from battle fig6 at scale {}",
            sched.name(),
            cfg.scale
        );
    }
}

#[test]
fn fig7_scenario_matches_hardcoded_digest() {
    if cfg!(debug_assertions) {
        return; // 512 threads over ~30 simulated seconds: release-only.
    }
    let cfg = RunCfg::at_scale(0.05);
    for sched in Sched::BOTH {
        let hard = fig7::run(sched, &cfg).obs.digest;
        let scen = scenario_digest("scenarios/fig7.toml", sched, cfg.scale);
        assert_eq!(
            scen,
            hard,
            "[{}] scenarios/fig7.toml diverged from battle fig7 at scale {}",
            sched.name(),
            cfg.scale
        );
    }
}

#[test]
fn scenario_library_parses_and_passes_asserts() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let dir = format!("{root}/scenarios");
    let mut paths: Vec<_> = std::fs::read_dir(&dir)
        .expect("scenarios/ exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 8,
        "scenario library should ship the 3 ported figures plus ≥5 new files, found {}",
        paths.len()
    );
    // The figure ports are covered by the digest-equivalence tests above
    // (they take tens of simulated seconds); here every *new* scenario
    // must run clean and hold its own assertions at the golden scale.
    let figs = ["fig1.toml", "fig6.toml", "fig7.toml"];
    for path in &paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(path).unwrap();
        let sc = Scenario::from_toml(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        if figs.contains(&name.as_str()) {
            continue;
        }
        let opts = EngineOpts {
            scale: 0.05,
            check: kernel::CheckMode::Strict,
            ..EngineOpts::default()
        };
        let mut runs = Vec::new();
        for &sched in &sc.scheds {
            let out = scenario::run_sched(&sc, sched, &opts)
                .unwrap_or_else(|e| panic!("{name} [{}]: {e}", sched.name()));
            runs.push(out.run);
        }
        let failures = scenario::failures(&sc, &runs);
        assert!(failures.is_empty(), "{name}: {failures:?}");
    }
}
