//! `battle tune` integration contracts:
//!
//! * the report is byte-identical across worker-pool sizes and the
//!   incumbent never loses to stock;
//! * the tuned construction path with *explicit default* parameters
//!   reproduces the committed golden digests byte-for-byte (hoisting the
//!   tunables changed nothing at stock settings);
//! * the committed `results/tuned/<sched>.toml` artifacts parse and every
//!   value sits inside its declared dimension bounds.

use eevdf::EevdfParams;
use experiments::{runner, tune};
use scenario::{EngineOpts, Scenario, Sched};
use sched_api::params::{ParamSpace, ParamVector};
use std::path::{Path, PathBuf};

const ROOT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");

fn load_scenarios(names: &[&str]) -> Vec<(PathBuf, Scenario)> {
    names
        .iter()
        .map(|n| {
            let p = format!("{ROOT}/scenarios/{n}.toml");
            let src = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
            (
                PathBuf::from(p.clone()),
                Scenario::from_toml(&src).unwrap_or_else(|e| panic!("{p}: {e}")),
            )
        })
        .collect()
}

#[test]
fn report_is_thread_count_independent_and_never_loses_to_stock() {
    let corpus = load_scenarios(&["fig1", "mixed-nice"]);
    let cfg = tune::TuneCfg {
        budget: 5,
        seed: 42,
        scale: 0.01,
        ..tune::TuneCfg::default()
    };
    runner::set_threads(1);
    let one = tune::run(&corpus, Sched::Eevdf, &cfg);
    runner::set_threads(4);
    let four = tune::run(&corpus, Sched::Eevdf, &cfg);
    runner::set_threads(0); // back to the default pool for sibling tests
    let j1 = serde_json::to_string_pretty(&one).unwrap();
    let j4 = serde_json::to_string_pretty(&four).unwrap();
    assert_eq!(j1, j4, "tune report depends on --threads");
    assert!(one.failures.is_empty(), "{:?}", one.failures);
    assert!(
        one.tuned_composite >= one.stock_composite,
        "incumbent ({}) lost to stock ({})",
        one.tuned_composite,
        one.stock_composite
    );
    // Evaluation #1 is always the stock vector, and best-so-far is
    // monotone from there.
    assert_eq!(one.trajectory[0].score, one.stock_composite);
    let mut best = f64::NEG_INFINITY;
    for t in &one.trajectory {
        assert!(t.best >= best);
        best = t.best;
    }
}

/// The golden line for `sched` in `results/golden/<stem>.digest`.
fn golden_digest(stem: &str, sched: Sched) -> String {
    let p = format!("{ROOT}/results/golden/{stem}.digest");
    let src = std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p}: {e}"));
    src.lines()
        .find_map(|l| l.strip_prefix(&format!("{} ", sched.flag_name())))
        .unwrap_or_else(|| panic!("{p}: no {} line", sched.flag_name()))
        .trim()
        .to_string()
}

#[test]
fn explicit_default_params_reproduce_golden_digests() {
    // The golden gate pins sc-fig1 at scale 0.05, seed 42, for cfs, ule
    // and eevdf. Running through the tuned construction path with each
    // scheduler's default vector must land on the very same digests:
    // hoisting EEVDF's slice/lag constants (and every other tunable) into
    // params changed nothing at stock settings.
    let corpus = load_scenarios(&["fig1"]);
    for sched in [Sched::Cfs, Sched::Ule, Sched::Eevdf] {
        let params = match sched {
            Sched::Eevdf => EevdfParams::default().to_vector(),
            _ => ParamVector::defaults(&scenario::param_dims(sched)),
        };
        let opts = EngineOpts {
            scale: 0.05,
            seed: 42,
            params: Some(params),
            ..EngineOpts::default()
        };
        let out = scenario::run_sched(&corpus[0].1, sched, &opts)
            .unwrap_or_else(|e| panic!("[{}] {e}", sched.name()));
        assert_eq!(
            out.run.digest_hex,
            golden_digest("sc-fig1", sched),
            "[{}] explicit default params diverged from the pinned golden digest",
            sched.name()
        );
    }
}

fn num(v: &serde::Value, key: &str) -> f64 {
    v.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .as_f64()
        .unwrap_or_else(|| panic!("{key} is not a number"))
}

#[test]
fn committed_tuned_artifacts_parse_and_stay_in_bounds() {
    for sched in Sched::TUNABLE {
        let p = format!("{ROOT}/results/tuned/{}.toml", sched.flag_name());
        assert!(
            Path::new(&p).exists(),
            "{p} missing — regenerate with `battle tune scenarios --write`"
        );
        let src = std::fs::read_to_string(&p).unwrap();
        let v = scenario::toml::parse(&src).unwrap_or_else(|e| panic!("{p}: {e}"));
        assert_eq!(
            v.get("sched").and_then(|s| s.as_str()),
            Some(sched.flag_name())
        );
        assert!(
            num(&v, "tuned_composite") >= num(&v, "stock_composite"),
            "{p}: tuned composite regressed stock"
        );
        let params = v
            .get("params")
            .unwrap_or_else(|| panic!("{p}: no [params]"));
        let dims = scenario::param_dims(sched);
        let mut raw = Vec::with_capacity(dims.len());
        for d in &dims {
            let x = num(params, d.name);
            assert!(
                x >= d.lo && x <= d.hi,
                "{p}: {} = {x} outside [{}, {}]",
                d.name,
                d.lo,
                d.hi
            );
            if d.scale.discrete() {
                assert_eq!(x, x.round(), "{p}: {} not integral", d.name);
            }
            raw.push(x);
        }
        // The committed vector is a fixed point of quantization: loading
        // it back yields exactly these values.
        let vec = ParamVector(raw.clone());
        assert_eq!(vec.quantized(&dims), vec, "{p}: values drift on reload");
    }
}

#[test]
fn tuned_toml_roundtrips_through_the_parser() {
    // Emission/parsing round-trip on a freshly built report, independent
    // of the committed artifacts.
    let corpus = load_scenarios(&["mixed-nice"]);
    let cfg = tune::TuneCfg {
        budget: 2,
        seed: 7,
        scale: 0.01,
        ..tune::TuneCfg::default()
    };
    let r = tune::run(&corpus, Sched::ScxVtime, &cfg);
    let toml = tune::tuned_toml(&r);
    let v = scenario::toml::parse(&toml).unwrap();
    let dims = scenario::param_dims(Sched::ScxVtime);
    let params = v.get("params").unwrap();
    for (i, d) in dims.iter().enumerate() {
        assert_eq!(num(params, d.name), r.incumbent.value(i, &dims));
    }
}
