//! Crash bundles: diagnostics written when SchedSan detects an invariant
//! violation.
//!
//! A violation surfaces as a [`kernel::SimError`] from `try_run_*`. Instead
//! of a bare panic message, the `battle` CLI degrades gracefully: it writes
//! a *crash bundle* under `results/crash/` — the full
//! [`kernel::Kernel::crash_report`] (error, seed, counters, per-CPU state,
//! live tasks, trace tail) plus a one-line replay command — prints where the
//! bundle went, and exits nonzero.

use std::path::PathBuf;

use kernel::{Kernel, SimError};

/// Everything needed to diagnose and replay one failed simulation.
#[derive(Debug, Clone)]
pub struct Crash {
    /// Short identifier, e.g. `"fibo-CFS"` or `"fuzz-0007-ULE"`.
    pub label: String,
    /// The violated invariant, rendered.
    pub error: String,
    /// The full diagnostic report (see [`Kernel::crash_report`]).
    pub report: String,
    /// Command line that reproduces the failure.
    pub replay: String,
}

impl Crash {
    /// Capture the kernel's post-mortem state for `err`.
    pub fn capture(k: &Kernel, err: &SimError, label: &str, replay: &str) -> Crash {
        Crash {
            label: label.to_string(),
            error: err.to_string(),
            report: k.crash_report(err),
            replay: replay.to_string(),
        }
    }

    /// Bundle for a job that panicked instead of returning. There is no
    /// kernel to post-mortem (the unwind tore it down), so the report is
    /// the panic message itself; the replay line is what matters.
    pub fn from_panic(label: &str, message: &str, replay: &str) -> Crash {
        Crash {
            label: label.to_string(),
            error: format!("panic: {message}"),
            report: format!(
                "panicked job (no kernel post-mortem available)\nlabel: {label}\npanic: {message}\n"
            ),
            replay: replay.to_string(),
        }
    }

    /// The bundle as written to disk.
    pub fn render(&self) -> String {
        format!("{}\nreplay: {}\n", self.report, self.replay)
    }

    /// Write the bundle to `results/crash/<label>.txt` (label sanitized),
    /// creating the directory as needed.
    pub fn write_bundle(&self) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results").join("crash");
        std::fs::create_dir_all(&dir)?;
        let safe: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{safe}.txt"));
        std::fs::write(&path, self.render())?;
        Ok(path)
    }

    /// Terminal failure path of the CLI: persist the bundle, print a
    /// summary, exit nonzero.
    pub fn bail(&self) -> ! {
        eprintln!(
            "scheduler invariant violated in {}: {}",
            self.label, self.error
        );
        match self.write_bundle() {
            Ok(p) => eprintln!("crash bundle written to {}", p.display()),
            Err(e) => {
                eprintln!(
                    "cannot write crash bundle: {e}; dumping to stderr\n{}",
                    self.render()
                );
            }
        }
        eprintln!("replay: {}", self.replay);
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel::{SimConfig, SimpleRR};
    use simcore::Time;
    use topology::Topology;

    #[test]
    fn capture_and_render_include_replay() {
        let topo = Topology::single_core();
        let k = Kernel::new(
            topo.clone(),
            SimConfig::with_seed(7),
            Box::new(SimpleRR::new(&topo)),
        );
        let err = SimError::Invariant {
            at: Time::ZERO,
            detail: "synthetic".into(),
        };
        let c = Crash::capture(&k, &err, "unit-test", "battle fuzz --seed 7 --cases 1");
        assert!(c.render().contains("synthetic"));
        assert!(c
            .render()
            .contains("replay: battle fuzz --seed 7 --cases 1"));
        assert!(c.render().contains("seed"));
    }
}
